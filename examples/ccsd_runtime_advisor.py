"""CCSD runtime advisor: pick a transfer-ordering strategy for a node budget.

This is the scenario the paper's introduction motivates: a runtime system sees
a window of independent tensor-contraction tasks (here, a simulated CCSD/Uracil
trace) and must decide in which order to fetch their inputs from the Global
Arrays space, given how much memory the node can dedicate to prefetched data.

The script sweeps node memory budgets, evaluates every heuristic per budget in
the batched mode a real runtime would use (Section 6.3), and prints a
recommendation table: the best strategy per budget and how much of the ideal
overlap it recovers.

Run with::

    python examples/ccsd_runtime_advisor.py [--budget-gb 2 3 4] [--batch 100]
"""

from __future__ import annotations

import argparse

from repro import solve
from repro.api import PAPER_FIGURE_ORDER
from repro.chemistry import ccsd_ensemble
from repro.core import omim
from repro.traces.stats import characterise_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--process", type=int, default=0, help="which per-process trace to study")
    parser.add_argument("--batch", type=int, default=100, help="scheduling window (tasks)")
    parser.add_argument(
        "--budget-gb",
        type=float,
        nargs="*",
        default=[2.0, 2.5, 3.0, 3.5],
        help="node memory budgets (GB) to evaluate",
    )
    args = parser.parse_args()

    trace = ccsd_ensemble(processes=150, traces=args.process + 1)[args.process]
    characteristics = characterise_trace(trace)
    print(f"CCSD trace {trace.label}: {len(trace)} tasks, "
          f"largest single-task footprint {trace.min_capacity_bytes / 1e9:.2f} GB")
    print("maximum hideable fraction of the sequential time: "
          f"{characteristics.max_overlap_fraction:.0%}\n")

    header = f"{'budget':>9} {'best strategy':>14} {'ratio to OMIM':>14} {'runner-up':>12}"
    print(header)
    print("-" * len(header))
    for budget_gb in args.budget_gb:
        capacity = budget_gb * 1e9
        if capacity < trace.min_capacity_bytes:
            print(f"{budget_gb:>7.1f}GB {'infeasible':>14} {'-':>14} {'-':>12}")
            continue
        instance = trace.to_instance(capacity)
        reference = omim(instance)
        scores = {}
        for name in PAPER_FIGURE_ORDER:
            result = solve(instance, method=name, batch_size=args.batch, reference=reference)
            scores[name] = result.ratio_to_optimal
        ranked = sorted(scores.items(), key=lambda item: item[1])
        (best, best_ratio), (second, _) = ranked[0], ranked[1]
        print(f"{budget_gb:>7.1f}GB {best:>14} {best_ratio:>14.3f} {second:>12}")

    print(
        "\nInterpretation: a ratio of 1.0 means the strategy hides as much "
        "communication as an unlimited-memory node could; larger budgets make "
        "the ordering decision progressively less critical."
    )


if __name__ == "__main__":
    main()
