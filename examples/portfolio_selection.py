"""Portfolio layer: featurize, select, race and cache solver runs.

Table 6 of the paper says no single heuristic dominates — each ordering wins
only in its favorable situation.  This example shows the subsystem that acts
on that finding: it featurizes instances from two very different regimes,
lets the Table 6 selector pick the matching heuristic, races a portfolio of
members for the virtual-best schedule, and serves a repeated solve from the
persistent result cache.

Run with::

    python examples/portfolio_selection.py
"""

from __future__ import annotations

import tempfile

from repro import solve
from repro.portfolio import CachedSolver, SelectingSolver, featurize
from repro.traces import regime_trace


def main() -> None:
    # 1. Two instances from opposite regimes: a compute-heavy stream with
    #    plenty of memory, and a heterogeneous CCSD-like mix under a tight
    #    capacity (1.25 x the largest single-task footprint).
    relaxed = regime_trace("compute-heavy", tasks=120, seed=7).to_instance()
    tight_trace = regime_trace("heterogeneous", tasks=120, seed=7)
    tight = tight_trace.to_instance(tight_trace.min_capacity_bytes * 1.25)

    # 2. Featurization: the deterministic vector the selectors act on.  The
    #    peak pressure compares the capacity against what the relaxed
    #    (infinite-memory) optimal schedule would need.
    for label, instance in (("compute-heavy/unconstrained", relaxed), ("ccsd-like/tight", tight)):
        features = featurize(instance)
        band = (
            "relaxed"
            if features.memory_relaxed
            else "tight" if features.memory_tight else "moderate"
        )
        print(
            f"{label:<28} peak pressure {features.peak_pressure:6.2f} ({band}); "
            f"{100 * features.compute_fraction:.0f}% compute-intensive tasks"
        )
    print()

    # 3. Table 6 selection: one featurization, one member run.  On the
    #    unconstrained compute-heavy stream the selector picks IOCMS, which
    #    Table 6 proves optimal there.
    for label, instance in (("compute-heavy", relaxed), ("ccsd-like", tight)):
        result = solve(instance, "portfolio.select")
        print(
            f"portfolio.select on {label:<14} ran {result.selected_solver:<6} "
            f"-> ratio to OMIM {result.ratio_to_optimal:.4f}"
        )
    print(f"  (choice without running: {SelectingSolver().choose(tight)})")
    print()

    # 4. Racing: run several members concurrently and keep the virtual best.
    #    Members that fall behind the incumbent are pruned mid-run, and the
    #    per-member attribution says who won and who was cut short.
    result = solve(tight, "portfolio.race", members=["OOSIM", "DOCCS", "LCMR", "OOMAMR"])
    print(f"portfolio.race winner: {result.selected_solver} (ratio {result.ratio_to_optimal:.4f})")

    # 5. Caching: repeated solves of the same canonical instance are served
    #    from a content-addressed on-disk store, byte-identical to the cold
    #    run.  Point `directory=` somewhere persistent in real deployments
    #    (default: ~/.cache/repro-dt, override with $REPRO_CACHE_DIR).
    with tempfile.TemporaryDirectory() as directory:
        cached = CachedSolver(inner="LCMR", directory=directory)
        cold = cached.schedule(tight)
        warm = cached.schedule(tight)
        assert cold == warm
        print(
            "portfolio.cached: cold then warm LCMR solve, "
            f"stats {cached.cache.stats()}, schedules byte-identical"
        )


if __name__ == "__main__":
    main()
