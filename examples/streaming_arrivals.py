"""Streaming arrivals: schedule a task stream that arrives over time.

The paper's model hands the scheduler every ready task up front; a real
runtime only sees tasks as the application submits them.  This example
generates a synthetic workload, stamps it with Poisson arrivals at a chosen
load, runs a few heuristics on the streaming runtime, and compares the four
execution modes (offline / barrier batches / pipelined batches / fully
online) on makespan and mean response time.

Run with::

    python examples/streaming_arrivals.py
"""

from __future__ import annotations

from repro import PoissonArrivals, solve
from repro.traces import synthetic_trace


def main() -> None:
    # 1. A mixed-intensity synthetic stream of 200 tasks, turned into a
    #    Problem DT instance at a tight memory capacity (1.25 x the largest
    #    single-task footprint).
    trace = synthetic_trace("mixed-intensity", tasks=200, seed=11)
    instance = trace.to_instance_with_factor(1.25)
    print(f"instance: {instance.name}, {len(instance)} tasks, capacity {instance.capacity:g}\n")

    # 2. An arrival process: Poisson submission at load 1.5 — the stream
    #    arrives half again as fast as the busiest resource can drain it, so
    #    a queue builds up and scheduling decisions matter.
    arrivals = PoissonArrivals(load=1.5)

    # 3. Stream a few heuristics.  solve(..., arrivals=...) stamps the
    #    release dates and runs the solver online: it re-ranks the ready set
    #    on every arrival and never sees a task before its release.
    print(f"{'heuristic':<8} {'makespan':>9} {'mean resp':>10} {'mean stretch':>13} {'avg queue':>10}")
    for heuristic in ("OS", "OOSIM", "LCMR", "OOMAMR"):
        result = solve(instance, heuristic, arrivals=arrivals, arrival_seed=3)
        online = result.online
        print(
            f"{heuristic:<8} {result.makespan:>9.2f} {online.mean_response_time:>10.2f} "
            f"{online.mean_stretch:>13.2f} {online.avg_queue_length:>10.1f}"
        )

    # 4. The four execution modes for one heuristic.  Batched modes window
    #    the stream (the paper's Section 6.3); the pipelined variant drops
    #    the drain barrier between batches.
    print("\nexecution modes (OOMAMR):")
    offline = solve(instance, "OOMAMR")
    barrier = solve(instance, "OOMAMR", batch_size=50)
    pipelined = solve(instance, "OOMAMR", batch_size=50, pipelined=True)
    online = solve(instance, "OOMAMR", arrivals=arrivals, arrival_seed=3)
    for label, result in (
        ("offline", offline),
        ("barrier batches", barrier),
        ("pipelined batches", pipelined),
        ("fully online", online),
    ):
        print(f"  {label:<18} makespan {result.makespan:>8.2f}")

    # 5. Event traces work in every mode; the arrival events mark when each
    #    task became visible to the scheduler.
    recorded = solve(instance, "LCMR", arrivals=arrivals, arrival_seed=3, record_events=True)
    arrivals_seen = sum(1 for e in recorded.trace if e.kind.value == "task_arrival")
    print(f"\nevent trace: {len(recorded.trace)} events, {arrivals_seen} arrivals recorded")


if __name__ == "__main__":
    main()
