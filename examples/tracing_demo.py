"""Tracing demo: profile a parallel sweep end to end and inspect the result.

Runs a small synthetic sweep on the process backend with tracing enabled,
writes a Chrome trace-event file (load it at ``chrome://tracing`` or
https://ui.perfetto.dev), and prints what the trace and the shared metrics
registry captured: span counts per operation, worker pids, kernel
profiling columns, and cache/merge counters.

A committed sample produced by this script (with ``--seed 7``) lives at
``examples/sample_trace.json``.

Run with::

    python examples/tracing_demo.py [--out trace.json] [--jobs 2]
"""

from __future__ import annotations

import argparse
import json
from collections import Counter

import repro.obs as obs
from repro import Study
from repro.obs.export import validate_chrome_trace
from repro.traces.generator import synthetic_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace.json", help="Chrome trace output path")
    parser.add_argument("--jobs", type=int, default=2, help="worker processes")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    args = parser.parse_args()

    results = (
        Study()
        .traces(synthetic_stream("balanced", processes=6, tasks_per_process=(30, 60), seed=args.seed))
        .capacities(1.25, 1.5)
        .solvers("LCMR", "MAMR")
        .parallel(args.jobs, backend="processes", chunk_size=2)
        .trace(args.out)
        .run()
    )

    payload = json.loads(open(args.out).read())
    info = validate_chrome_trace(payload)
    print(f"wrote {args.out}: {info['events']} events, {info['spans']} spans, "
          f"{info['pids']} pids, max depth {info['max_depth']}")
    print("open it at chrome://tracing or https://ui.perfetto.dev\n")

    names = Counter(e["name"] for e in payload["traceEvents"] if e["ph"] == "B")
    print(f"{'span':<20} {'count':>5}")
    for name, count in sorted(names.items()):
        print(f"{name:<20} {count:>5}")

    events = results.column("kernel_events")
    waits = results.column("memory_wait_s")
    print(f"\nkernel columns over {len(results)} result rows: "
          f"{sum(events)} events simulated, "
          f"{sum(waits):.1f}s total memory-stall time")

    merged = obs.REGISTRY.counter_total("sweep_jobs_merged_total")
    print(f"registry: {merged:.0f} jobs merged across {names['sweep.chunk']} chunks "
          "(worker-side spans and counters shipped back over the job wire)")


if __name__ == "__main__":
    main()
