"""Quickstart: schedule a handful of data transfers and compare solvers.

This example builds the paper's Table 3 instance (four tasks, memory capacity
6), runs every registered solver on it through the :func:`repro.solve` facade,
prints a Gantt chart of the best schedule, and shows how the ratio-to-optimal
metric is computed.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Instance, Task, available_solvers, omim, solve
from repro.viz import render_gantt


def main() -> None:
    # 1. Describe the ready tasks: communication time, computation time.  The
    #    memory a task pins (from the start of its transfer to the end of its
    #    computation) defaults to its communication volume, as in the paper.
    tasks = [
        Task.from_times("A", comm=3, comp=2),
        Task.from_times("B", comm=1, comp=3),
        Task.from_times("C", comm=4, comp=4),
        Task.from_times("D", comm=2, comp=1),
    ]
    instance = Instance(tasks, capacity=6, name="quickstart")

    # 2. The lower bound used throughout the paper: the optimal makespan with
    #    infinite memory (Johnson's algorithm).
    reference = omim(instance)
    print(f"instance with {len(instance)} tasks, capacity {instance.capacity:g}")
    print(f"optimal makespan with infinite memory (OMIM): {reference:g}\n")

    # 3. Run every registered solver (paper heuristics, the exact no-wait
    #    sequencer, the windowed MILPs) and rank them by makespan.  A custom
    #    strategy registered with @repro.register_solver would show up here
    #    automatically.
    results = []
    for name in available_solvers():
        result = solve(instance, method=name, reference=reference)
        results.append(result)
    results.sort(key=lambda r: (r.ratio_to_optimal, r.solver))

    print(f"{'solver':<10} {'category':<12} {'makespan':>9} {'ratio to OMIM':>14}")
    for result in results:
        print(
            f"{result.solver:<10} {result.category:<12} {result.makespan:>9.2f} "
            f"{result.ratio_to_optimal:>14.3f}"
        )

    # 4. Inspect the winning schedule.
    best = results[0]
    print(f"\nbest schedule ({best.solver}, ratio {best.ratio_to_optimal:.3f}):\n")
    print(render_gantt(best.schedule))


if __name__ == "__main__":
    main()
