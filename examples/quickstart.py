"""Quickstart: schedule a handful of data transfers and compare heuristics.

This example builds the paper's Table 3 instance (four tasks, memory capacity
6), runs every heuristic of the registry on it, prints a Gantt chart of the
best schedule, and shows how the ratio-to-optimal metric is computed.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Instance, Task, all_heuristics, omim
from repro.core import evaluate
from repro.viz import render_gantt


def main() -> None:
    # 1. Describe the ready tasks: communication time, computation time.  The
    #    memory a task pins (from the start of its transfer to the end of its
    #    computation) defaults to its communication volume, as in the paper.
    tasks = [
        Task.from_times("A", comm=3, comp=2),
        Task.from_times("B", comm=1, comp=3),
        Task.from_times("C", comm=4, comp=4),
        Task.from_times("D", comm=2, comp=1),
    ]
    instance = Instance(tasks, capacity=6, name="quickstart")

    # 2. The lower bound used throughout the paper: the optimal makespan with
    #    infinite memory (Johnson's algorithm).
    reference = omim(instance)
    print(f"instance with {len(instance)} tasks, capacity {instance.capacity:g}")
    print(f"optimal makespan with infinite memory (OMIM): {reference:g}\n")

    # 3. Run every heuristic and rank them by makespan.
    results = []
    for name, heuristic in all_heuristics().items():
        schedule = heuristic.schedule(instance)
        metrics = evaluate(schedule, instance, heuristic=name, reference=reference)
        results.append((metrics.ratio_to_optimal, name, schedule))
    results.sort(key=lambda item: (item[0], item[1]))

    print(f"{'heuristic':<10} {'makespan':>9} {'ratio to OMIM':>14} {'peak memory':>12}")
    for ratio, name, schedule in results:
        print(
            f"{name:<10} {schedule.makespan:>9.2f} {ratio:>14.3f} "
            f"{schedule.peak_memory():>12.1f}"
        )

    # 4. Inspect the winning schedule.
    best_ratio, best_name, best_schedule = results[0]
    print(f"\nbest schedule ({best_name}, ratio {best_ratio:.3f}):\n")
    print(render_gantt(best_schedule))


if __name__ == "__main__":
    main()
