"""Serving: talk to the ``repro serve`` daemon over HTTP.

This example is self-contained: it starts a daemon on a background thread
(the same server ``python -m repro serve`` runs), then walks through the
whole client surface —

1. check liveness with ``/healthz``;
2. schedule one instance with ``POST /solve`` (twice, to see the shared
   result cache attribute the second answer as a hit);
3. submit a background capacity sweep with ``POST /sweep`` and follow its
   progress live over the NDJSON event stream;
4. read the service metrics from ``/metricsz``.

Run with::

    python examples/serve_client.py

Against an already-running daemon, skip the ``ServerThread`` block and
point :class:`repro.serve.ServeClient` at its host and port.
"""

from __future__ import annotations

import tempfile

from repro import Instance, Task
from repro.serve import ServeClient, ServeError, ServerThread


def main() -> None:
    tasks = [
        Task.from_times("A", comm=3, comp=2),
        Task.from_times("B", comm=1, comp=3),
        Task.from_times("C", comm=4, comp=4),
        Task.from_times("D", comm=2, comp=1),
    ]
    instance = Instance(tasks, capacity=6, name="serve-example")

    with tempfile.TemporaryDirectory() as cache_dir, ServerThread(
        workers=2, cache_dir=cache_dir
    ) as live:
        client = ServeClient(live.host, live.port)

        # 1. Liveness.
        health = client.healthz()
        print(f"server {health['version']} is {health['status']} "
              f"({health['workers']} workers)\n")

        # 2. One instance, one solver.  The second call is answered from the
        #    shared result cache — same bytes, cache.hit flips to true.
        cold = client.solve(instance, solver="LCMR")
        warm = client.solve(instance, solver="LCMR")
        print(f"solve with {cold['solver']}: makespan {cold['makespan']:g}, "
              f"ratio to OMIM {cold['ratio_to_optimal']:.3f}")
        print(f"  first call:  cache hit = {cold['cache']['hit']}")
        print(f"  second call: cache hit = {warm['cache']['hit']} "
              f"(served from the shared cache)\n")

        # Errors come back structured: branch on error.code, not prose.
        try:
            client.solve(instance, solver="not-a-solver")
        except ServeError as error:
            print(f"structured rejection: HTTP {error.status}, "
                  f"code {error.code!r}\n")

        # 3. A background sweep: submit, then stream progress events until
        #    the job reaches a terminal state.
        job = client.submit_sweep(
            workload="balanced", traces=3, tasks=40,
            solvers=["LCMR", "OS", "MAMR"], capacities=[1.0, 2.0], steps=3,
        )
        print(f"submitted {job['job_id']}; streaming progress:")
        for event in client.stream(job["job_id"]):
            if event["event"] == "progress":
                print(f"  {event['completed']}/{event['total']} jobs done")
            elif event["event"] in ("done", "failed", "cancelled", "end"):
                print(f"  -> {event['event']}")

        final = client.job(job["job_id"])
        result = final["result"]
        print(f"\nsweep finished: {result['rows']} measurements, "
              f"best solver {result['best_solver']} "
              f"(mean ratios: " +
              ", ".join(f"{name} {value:.3f}"
                        for name, value in result["mean_ratio_to_optimal"].items())
              + ")\n")

        # 4. The live metrics the daemon exposes at /metricsz.
        metrics = client.metrics()
        gauges = metrics["gauges"]
        print(f"requests served: {metrics['requests_total']}, "
              f"solve p50 {metrics['latency']['solve']['p50_s'] * 1e3:.1f} ms, "
              f"cache hit rate {gauges['cache_hit_rate']:.0%}")
    print("\nserver drained and shut down cleanly")


if __name__ == "__main__":
    main()
