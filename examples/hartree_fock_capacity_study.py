"""Hartree–Fock capacity study (the workload behind Figures 9 and 10).

Simulates the HF (SiOSi, tile size 100) run on the Cascade-like machine model,
takes a couple of per-process traces, and studies how the memory capacity of
the target node changes the achievable communication/computation overlap:

* the workload characteristics of Figure 8 (sum comm / sum comp vs OMIM);
* the ratio-to-optimal of every heuristic for capacities mc .. 2 mc;
* the best variant of each heuristic category per capacity (Figure 10).

Run with::

    python examples/hartree_fock_capacity_study.py [--traces N] [--processes P]
"""

from __future__ import annotations

import argparse

from repro import Study
from repro.chemistry import hf_ensemble
from repro.experiments import best_variant_series
from repro.experiments.aggregate import summaries_by_capacity
from repro.traces.stats import characterise_ensemble, summarise
from repro.viz import render_series_table, render_summary_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=2, help="number of per-process traces to study")
    parser.add_argument("--processes", type=int, default=150, help="size of the simulated HF run")
    parser.add_argument(
        "--capacities",
        type=float,
        nargs="*",
        default=[1.0, 1.25, 1.5, 1.75, 2.0],
        help="memory capacities as multiples of mc",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker threads for the sweep (default: one per CPU)",
    )
    args = parser.parse_args()

    ensemble = hf_ensemble(processes=args.processes, traces=args.traces)
    print(f"simulated {len(ensemble)} HF traces "
          f"({min(ensemble.task_counts)}-{max(ensemble.task_counts)} tasks per process)\n")

    # Workload characteristics (Figure 8).
    characteristics = characterise_ensemble(ensemble)
    print(
        render_summary_table(
            {
                "sum comm": summarise(c.sum_comm_ratio for c in characteristics),
                "sum comp": summarise(c.sum_comp_ratio for c in characteristics),
                "max(sum comm, sum comp)": summarise(c.area_bound_ratio for c in characteristics),
                "sum comm + sum comp": summarise(c.sequential_ratio for c in characteristics),
            },
            title="HF workload characteristics (ratios to OMIM)",
        )
    )
    mc = summarise(c.min_capacity_bytes for c in characteristics)
    print(f"\nminimum workable capacity mc: median {mc.median / 1e3:.0f} KB\n")

    # Heuristic comparison across capacities (Figures 9 and 10), with the
    # per-trace jobs fanned out over a thread pool.
    records = (
        Study()
        .traces(ensemble)
        .capacities(*args.capacities)
        .parallel(args.jobs)
        .run()
    )
    for factor, groups in sorted(summaries_by_capacity(records).items()):
        print(render_summary_table(groups, title=f"capacity = {factor:g} mc"))
        print()
    print(
        render_series_table(
            best_variant_series(records),
            title="best variant of each category (Figure 10)",
            x_label="capacity (x mc)",
        )
    )


if __name__ == "__main__":
    main()
