"""Proposition 1 walk-through: when the two resources should disagree.

The paper proves that with a limited memory capacity, the optimal schedule may
need *different* task orders on the communication link and on the processing
unit (Proposition 1, Table 2, Figure 3).  This example reproduces that
phenomenon end to end on the paper's six-task instance:

* exhaustive search over same-order (permutation) schedules,
* exhaustive search over pairs of orders,
* the exact mixed-integer programme as an independent witness,

and prints the two Gantt charts side by side.

Run with::

    python examples/proposition1_orders.py [--skip-milp]
"""

from __future__ import annotations

import argparse

from repro.core import omim, proposition1_instance, validate_schedule
from repro.flowshop import best_permutation_schedule, best_schedule_allowing_reordering
from repro.milp import solve_exact
from repro.viz import render_gantt


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-milp", action="store_true", help="skip the exact MILP witness")
    args = parser.parse_args()

    instance = proposition1_instance()
    print(f"instance {instance.name}: {len(instance)} tasks, capacity {instance.capacity:g}")
    print(f"OMIM (no memory constraint): {omim(instance):g}\n")

    same_order_schedule, same_order = best_permutation_schedule(instance)
    free_schedule, free = best_schedule_allowing_reordering(instance)

    print(f"best schedule with identical orders on both resources: {same_order:g}")
    print(render_gantt(same_order_schedule))
    print()
    print(f"best schedule when the orders may differ: {free:g}")
    print(render_gantt(free_schedule))
    print()
    print(f"communication order: {free_schedule.communication_order()}")
    print(f"computation order:   {free_schedule.computation_order()}")
    assert validate_schedule(free_schedule, instance).is_feasible

    if not args.skip_milp:
        result = solve_exact(instance, time_limit=120)
        print(f"\nexact MILP optimum (independent witness): {result.makespan:g} "
              f"(optimal={result.optimal})")

    gain = (same_order - free) / same_order
    print(f"\nallowing the orders to differ improves the makespan by {gain:.1%}.")


if __name__ == "__main__":
    main()
