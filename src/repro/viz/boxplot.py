"""Text boxplots and result tables for the evaluation figures.

The paper's Figures 7, 9 and 11 are ratio-to-optimal boxplots, one box per
heuristic and one facet per memory capacity; Figures 10, 12 and 13 are line
plots of the best variant per category.  The experiment harness produces
distribution summaries; this module renders them as aligned text tables and
one-line horizontal boxplots so the benchmark output mirrors the figures.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..traces.stats import DistributionSummary

__all__ = ["render_box_line", "render_summary_table", "render_series_table"]


def render_box_line(
    summary: DistributionSummary,
    *,
    low: float,
    high: float,
    width: int = 40,
) -> str:
    """One-line ASCII boxplot of ``summary`` scaled to the range [low, high]."""
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    if high <= low:
        return "·" * width
    span = high - low

    def col(value: float) -> int:
        clamped = min(max(value, low), high)
        return int(round((clamped - low) / span * (width - 1)))

    cells = [" "] * width
    lo, q1, med, q3, hi = (
        col(summary.minimum),
        col(summary.first_quartile),
        col(summary.median),
        col(summary.third_quartile),
        col(summary.maximum),
    )
    for position in range(lo, hi + 1):
        cells[position] = "-"
    for position in range(q1, q3 + 1):
        cells[position] = "="
    cells[lo] = "|"
    cells[hi] = "|"
    cells[med] = "#"
    return "".join(cells)


def render_summary_table(
    groups: Mapping[str, DistributionSummary],
    *,
    title: str = "",
    value_label: str = "ratio to optimal",
    boxes: bool = True,
) -> str:
    """Table of five-number summaries (one row per heuristic), with ASCII boxes."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not groups:
        lines.append("(no data)")
        return "\n".join(lines)

    low = min(summary.minimum for summary in groups.values())
    high = max(summary.maximum for summary in groups.values())
    name_width = max(len(name) for name in groups) + 1
    header = (
        f"{'heuristic':<{name_width}} {'min':>8} {'q1':>8} {'median':>8} "
        f"{'q3':>8} {'max':>8} {'mean':>8} {'n':>5}"
    )
    if boxes:
        header += "  distribution"
    lines.append(f"[{value_label}]")
    lines.append(header)
    for name, summary in groups.items():
        row = (
            f"{name:<{name_width}} {summary.minimum:>8.4f} {summary.first_quartile:>8.4f} "
            f"{summary.median:>8.4f} {summary.third_quartile:>8.4f} {summary.maximum:>8.4f} "
            f"{summary.mean:>8.4f} {summary.count:>5d}"
        )
        if boxes:
            row += "  " + render_box_line(summary, low=low, high=high)
        lines.append(row)
    return "\n".join(lines)


def render_series_table(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    x_label: str = "capacity",
    y_label: str = "median ratio to optimal",
    x_format: str = "{:.3g}",
) -> str:
    """Table of per-capacity series (Figures 10/12/13 style): one column per series."""
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    if not series:
        lines.append("(no data)")
        return "\n".join(lines)
    xs = sorted({x for points in series.values() for x, _ in points})
    names = list(series)
    lines.append(f"[{y_label}]")
    header = f"{x_label:>14} " + " ".join(f"{name:>12}" for name in names)
    lines.append(header)
    lookup = {name: dict(points) for name, points in series.items()}
    for x in xs:
        cells = []
        for name in names:
            value = lookup[name].get(x)
            cells.append(f"{value:>12.4f}" if value is not None else f"{'-':>12}")
        lines.append(f"{x_format.format(x):>14} " + " ".join(cells))
    return "\n".join(lines)
