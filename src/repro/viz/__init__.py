"""Plain-text visualisation: Gantt charts and boxplot/series tables."""

from .boxplot import render_box_line, render_series_table, render_summary_table
from .gantt import GanttOptions, render_event_log, render_gantt

__all__ = [
    "GanttOptions",
    "render_box_line",
    "render_event_log",
    "render_gantt",
    "render_series_table",
    "render_summary_table",
]
