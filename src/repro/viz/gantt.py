"""ASCII Gantt charts for schedules (Figures 2-6 of the paper).

The paper illustrates every heuristic family with small two-row Gantt charts:
one row for the communication link, one for the processing unit.  This module
renders the same view in plain text so the examples and benchmark logs can
show schedules without any plotting dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.schedule import Schedule

__all__ = ["render_gantt", "GanttOptions"]


@dataclass(frozen=True)
class GanttOptions:
    """Rendering options for :func:`render_gantt`."""

    width: int = 78
    show_memory: bool = True
    label_width: int = 14

    def __post_init__(self) -> None:
        if self.width < 20:
            raise ValueError("width must be at least 20 columns")
        if self.label_width < 4:
            raise ValueError("label width must be at least 4 columns")


def _lane(
    segments: list[tuple[float, float, str]],
    makespan: float,
    columns: int,
) -> str:
    """Render one resource lane: segments are (start, end, label)."""
    lane = [" "] * columns
    for start, end, label in segments:
        if end <= start:
            continue
        left = int(round(start / makespan * (columns - 1)))
        right = max(left + 1, int(round(end / makespan * (columns - 1))))
        width = right - left
        text = (label[: width - 1] + "|") if width > 1 else "|"
        fill = (label * width)[:width] if width >= len(label) else text
        body = label.center(width, "·") if width > len(label) + 1 else fill
        for offset, char in enumerate(body):
            if left + offset < columns:
                lane[left + offset] = char
    return "".join(lane)


def render_gantt(schedule: Schedule, *, options: GanttOptions | None = None) -> str:
    """Render ``schedule`` as a two-lane (plus optional memory) text chart."""
    options = options or GanttOptions()
    if len(schedule) == 0:
        return "(empty schedule)"
    makespan = schedule.makespan
    if makespan <= 0:
        return "(zero-length schedule)"
    columns = options.width - options.label_width - 2

    comm_segments = [(e.comm_start, e.comm_end, e.name) for e in schedule if e.task.comm > 0]
    comp_segments = [(e.comp_start, e.comp_end, e.name) for e in schedule if e.task.comp > 0]

    lines = []
    header = f"{'makespan':<{options.label_width}}| {makespan:g}"
    lines.append(header)
    lines.append(
        f"{'communication':<{options.label_width}}| {_lane(comm_segments, makespan, columns)}"
    )
    lines.append(
        f"{'computation':<{options.label_width}}| {_lane(comp_segments, makespan, columns)}"
    )

    if options.show_memory:
        profile = schedule.memory_profile()
        peak = max((event.usage for event in profile), default=0.0)
        if peak > 0:
            levels = " .:-=+*#%@"
            cells = []
            for column in range(columns):
                time = column / (columns - 1) * makespan
                usage = schedule.memory_usage_at(min(time, makespan - 1e-12))
                index = int(round(usage / peak * (len(levels) - 1)))
                cells.append(levels[index])
            lines.append(f"{'memory':<{options.label_width}}| {''.join(cells)}")
            lines.append(f"{'peak memory':<{options.label_width}}| {peak:g}")

    # Time axis with a handful of tick marks.
    ticks = 5
    tick_times = [makespan * i / (ticks - 1) for i in range(ticks)]
    axis = " ".join(f"{t:g}" for t in tick_times)
    lines.append(f"{'time ticks':<{options.label_width}}| {axis}")
    return "\n".join(lines)
