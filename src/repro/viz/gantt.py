"""ASCII Gantt charts for schedules and kernel traces (Figures 2-6).

The paper illustrates every heuristic family with small two-row Gantt charts:
one row for the communication link, one for the processing unit.  This module
renders the same view in plain text so the examples and benchmark logs can
show schedules without any plotting dependency.

:func:`render_gantt` accepts either a finished
:class:`~repro.core.schedule.Schedule` or the kernel's structured
:class:`~repro.simulator.events.EventTrace` (from ``solve(...,
record_events=True)``); with a trace, the lanes and memory profile are read
straight from the event journal instead of being re-derived from the
schedule, and parallel-link timelines render faithfully.
:func:`render_event_log` prints the raw journal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schedule import Schedule
from ..simulator.events import EventTrace

__all__ = ["render_gantt", "render_event_log", "GanttOptions"]


@dataclass(frozen=True)
class GanttOptions:
    """Rendering options for :func:`render_gantt`."""

    width: int = 78
    show_memory: bool = True
    label_width: int = 14

    def __post_init__(self) -> None:
        if self.width < 20:
            raise ValueError("width must be at least 20 columns")
        if self.label_width < 4:
            raise ValueError("label width must be at least 4 columns")


def _lane(
    segments: list[tuple[float, float, str]],
    makespan: float,
    columns: int,
) -> str:
    """Render one resource lane: segments are (start, end, label)."""
    lane = [" "] * columns
    for start, end, label in segments:
        if end <= start:
            continue
        left = int(round(start / makespan * (columns - 1)))
        right = max(left + 1, int(round(end / makespan * (columns - 1))))
        width = right - left
        text = (label[: width - 1] + "|") if width > 1 else "|"
        fill = (label * width)[:width] if width >= len(label) else text
        body = label.center(width, "·") if width > len(label) + 1 else fill
        for offset, char in enumerate(body):
            if left + offset < columns:
                lane[left + offset] = char
    return "".join(lane)


def _timelines(source: Schedule | EventTrace):
    """``(comm segments, comp segments, task count)`` of either source."""
    if isinstance(source, EventTrace):
        comm = source.transfer_intervals()
        comp = source.compute_intervals()
        count = len({name for _, _, name in comm})
        return [s for s in comm if s[1] > s[0]], [s for s in comp if s[1] > s[0]], count
    comm = [(e.comm_start, e.comm_end, e.name) for e in source if e.task.comm > 0]
    comp = [(e.comp_start, e.comp_end, e.name) for e in source if e.task.comp > 0]
    return comm, comp, len(source)


def render_gantt(
    source: Schedule | EventTrace, *, options: GanttOptions | None = None
) -> str:
    """Render a schedule or kernel trace as a two-lane (plus memory) chart."""
    options = options or GanttOptions()
    comm_segments, comp_segments, task_count = _timelines(source)
    if task_count == 0:
        return "(empty schedule)"
    makespan = source.makespan
    if makespan <= 0:
        return "(zero-length schedule)"
    columns = options.width - options.label_width - 2

    lines = []
    header = f"{'makespan':<{options.label_width}}| {makespan:g}"
    lines.append(header)
    lines.append(
        f"{'communication':<{options.label_width}}| {_lane(comm_segments, makespan, columns)}"
    )
    lines.append(
        f"{'computation':<{options.label_width}}| {_lane(comp_segments, makespan, columns)}"
    )

    if options.show_memory:
        peak = source.peak_memory()
        if peak > 0:
            levels = " .:-=+*#%@"
            cells = []
            for column in range(columns):
                time = column / (columns - 1) * makespan
                usage = source.memory_usage_at(min(time, makespan - 1e-12))
                cells.append(levels[int(round(usage / peak * (len(levels) - 1)))])
            lines.append(f"{'memory':<{options.label_width}}| {''.join(cells)}")
            lines.append(f"{'peak memory':<{options.label_width}}| {peak:g}")

    # Time axis with a handful of tick marks.
    ticks = 5
    tick_times = [makespan * i / (ticks - 1) for i in range(ticks)]
    axis = " ".join(f"{t:g}" for t in tick_times)
    lines.append(f"{'time ticks':<{options.label_width}}| {axis}")
    return "\n".join(lines)


def render_event_log(trace: EventTrace, *, limit: int | None = None) -> str:
    """Render the kernel's event journal, one line per event.

    ``limit`` truncates long journals (an ellipsis line reports how many
    events were dropped).
    """
    events = trace.events
    shown = events if limit is None else events[:limit]
    lines = [
        f"{event.time:>10g}  {event.kind.value:<15} {event.task}"
        + (f"  ({event.amount:+g} memory)" if event.amount else "")
        for event in shown
    ]
    if limit is not None and len(events) > limit:
        lines.append(f"... {len(events) - limit} more event(s)")
    return "\n".join(lines)
