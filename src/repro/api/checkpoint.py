"""Durable sweep checkpoints: resume a killed sweep without re-running work.

A :class:`SweepCheckpoint` is a directory recording every *merged chunk* of a
sweep as it completes:

* ``manifest.jsonl`` — one meta line (format version + the chunk size the
  sweep was partitioned with) followed by one line per completed chunk:
  its index in the chunk plan, a content hash of the chunk's jobs, the
  per-job row counts and the name of the chunk's record file.  Each line is
  flushed and fsynced before the sweep moves on, so a crash loses at most
  the chunk that was in flight.
* ``chunk-NNNNNN.jsonl`` — the chunk's records in the
  :meth:`~repro.api.results.ResultSet.to_jsonl` spill format, written to a
  temporary file and atomically renamed into place.

On restart the engine recomputes each chunk's content key from the (fully
deterministic) job plane; a chunk whose ``(index, key)`` pair matches a
manifest entry is *loaded* instead of executed.  The key covers the whole
job — payload tasks (exact float encodings), capacity factors, solver wire
specs, machine model, arrival pattern and execution options — so any change
to the sweep re-runs exactly the chunks it invalidates.

Checkpoints compose with sharding (each shard keeps its own directory; the
CLI nests ``shard-I-of-N/`` automatically) and with result spilling, and
they require wire-encodable solver specs — the same constraint as the
process backend, for the same reason: the work must be describable as plain
data to be comparable across runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import TYPE_CHECKING, Mapping, Sequence

from .. import obs
from .registry import spec_to_wire
from .results import RunRecord, decode_record_line, encode_record_line

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import SweepJob

__all__ = ["SweepCheckpoint", "chunk_key", "job_key"]

_MANIFEST = "manifest.jsonl"
_FORMAT = "repro.SweepCheckpoint"
_VERSION = 1


def _hash_text(digest, text: str) -> None:
    data = text.encode("utf-8")
    digest.update(str(len(data)).encode("ascii"))
    digest.update(b":")
    digest.update(data)


def _hash_float(digest, value: float) -> None:
    _hash_text(digest, float(value).hex())


def _stable_repr(value) -> str:
    """Deterministic text form for option values (machines, arrivals...).

    Dataclasses render as their (deterministic) field repr, mappings sort
    their items, sequences render element-wise; floats use exact hex.
    """
    if value is None:
        return "-"
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (bool, int, str)):
        return repr(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{f.name}={_stable_repr(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, Mapping):
        items = ", ".join(f"{k!r}: {_stable_repr(v)}" for k, v in sorted(value.items()))
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_stable_repr(v) for v in value) + "]"
    return repr(value)


def job_key(job: "SweepJob") -> str:
    """Content hash of one sweep job — stable across processes and hosts.

    Covers the payload's every task (names and exact float fields), the
    capacity plan, the solver specs in wire form, and all execution options
    that change the produced records.  Raises ``TypeError`` for solver
    specs that cannot be wire-encoded (live instances, closures): a
    checkpointable sweep must be describable as plain data.
    """
    from ..traces.model import Trace  # lazy: engine imports us indirectly

    digest = hashlib.sha256()
    payload = job.payload
    if isinstance(payload, Trace):
        _hash_text(digest, "trace")
        _hash_text(digest, payload.label)
        digest.update(str(len(payload.tasks)).encode("ascii"))
        for task in payload.tasks:
            _hash_text(digest, task.name)
            _hash_float(digest, task.volume_bytes)
            _hash_float(digest, task.comm_seconds)
            _hash_float(digest, task.comp_seconds)
            _hash_float(digest, task.release_seconds)
            _hash_text(digest, task.kind)
    else:  # Instance
        _hash_text(digest, "instance")
        _hash_text(digest, payload.name)
        _hash_float(digest, payload.capacity)
        digest.update(str(len(payload.tasks)).encode("ascii"))
        for task in payload.tasks:
            _hash_text(digest, task.name)
            _hash_float(digest, task.comm)
            _hash_float(digest, task.comp)
            _hash_float(digest, task.memory)
            _hash_float(digest, task.release)
            _hash_text(digest, task.tag)
    factors = job.capacity_factors
    _hash_text(digest, "-" if factors is None else ",".join(f.hex() for f in map(float, factors)))
    wire_specs = [spec_to_wire(spec) if not isinstance(spec, dict) else spec for spec in job.solver_specs]
    _hash_text(digest, json.dumps(wire_specs, sort_keys=True, default=repr))
    for option in (
        job.validate,
        job.batch_size,
        job.pipelined,
        job.task_limit,
        job.machine,
        job.arrivals,
        job.arrival_seed,
        job.engine,
    ):
        _hash_text(digest, _stable_repr(option))
    return digest.hexdigest()


def chunk_key(jobs: Sequence["SweepJob"]) -> str:
    """Content hash of one chunk: the ordered hashes of its jobs."""
    digest = hashlib.sha256()
    for job in jobs:
        _hash_text(digest, job_key(job))
    return digest.hexdigest()


class SweepCheckpoint:
    """Chunk-level completion log for one sweep, stored in a directory.

    Open one (the directory is created if missing) and hand it — or just
    the directory path — to ``sweep_traces``/``sweep_instances``/``Study``
    via the ``checkpoint`` option.  The instance counts what happened in
    this process: ``chunks_loaded`` (skipped because a previous run already
    completed them) and ``chunks_recorded`` (executed and persisted now).
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.chunk_size: int | None = None
        self.chunks_loaded = 0
        self.chunks_recorded = 0
        #: chunk index -> (key, record file name, rows per job)
        self._entries: dict[int, tuple[str, str, list[int]]] = {}
        self._manifest_path = os.path.join(self.directory, _MANIFEST)
        self._load_manifest()
        self._manifest = open(  # noqa: SIM115 - lifetime spans the sweep
            self._manifest_path, "a", encoding="utf-8", newline="\n"
        )

    def _load_manifest(self) -> None:
        if not os.path.exists(self._manifest_path):
            return
        with open(self._manifest_path, encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                entry = json.loads(line)
                if entry.get("format") == _FORMAT:
                    if entry.get("version") != _VERSION:
                        raise ValueError(
                            f"checkpoint {self.directory!r} was written by format "
                            f"version {entry.get('version')!r}, this build reads "
                            f"version {_VERSION}"
                        )
                    self.chunk_size = entry.get("chunk_size")
                    continue
                index = int(entry["chunk"])
                # Later lines win: a re-run with a changed job plane
                # overwrites the stale entry for the same index.
                self._entries[index] = (
                    str(entry["key"]),
                    str(entry["file"]),
                    [int(n) for n in entry["rows_per_job"]],
                )

    # ------------------------------------------------------------------ #
    def resolve_chunk_size(self, requested: int | None, computed: int) -> int:
        """Pin the chunk partition so resumed runs line up with recorded chunks.

        The first run persists its chunk size in the manifest meta line;
        resumed runs reuse it when the caller does not insist on one, and
        an *explicit conflicting* request raises instead of silently
        invalidating every recorded chunk.
        """
        if self.chunk_size is not None:
            if requested is not None and requested != self.chunk_size:
                raise ValueError(
                    f"checkpoint {self.directory!r} was written with "
                    f"chunk_size={self.chunk_size}, but this run requests "
                    f"{requested}; matching chunks is impossible — pass "
                    f"chunk_size={self.chunk_size} or start a fresh directory"
                )
            return self.chunk_size
        size = requested if requested is not None else computed
        self.chunk_size = size
        self._append_line({"format": _FORMAT, "version": _VERSION, "chunk_size": size})
        return size

    def match(self, index: int, key: str) -> bool:
        """True when chunk ``index`` with content ``key`` is already recorded."""
        entry = self._entries.get(index)
        hit = entry is not None and entry[0] == key
        obs.REGISTRY.inc("checkpoint_hits_total" if hit else "checkpoint_misses_total")
        return hit

    def load(self, index: int, key: str) -> list[list[RunRecord]]:
        """Load a recorded chunk's records, split back per job."""
        entry = self._entries.get(index)
        if entry is None or entry[0] != key:
            raise KeyError(f"chunk {index} with key {key[:12]}... is not recorded")
        _, file_name, rows_per_job = entry
        path = os.path.join(self.directory, file_name)
        records: list[RunRecord] = []
        loaded_at = obs.now() if obs.is_enabled() else 0.0
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    records.append(decode_record_line(line))
        if loaded_at:
            obs.record_span("checkpoint.load", loaded_at, obs.now(), chunk=index, rows=len(records))
        if len(records) != sum(rows_per_job):
            raise ValueError(
                f"checkpoint chunk file {path!r} holds {len(records)} rows, "
                f"manifest expects {sum(rows_per_job)} — the checkpoint is "
                "corrupt; delete the directory and re-run"
            )
        out: list[list[RunRecord]] = []
        start = 0
        for count in rows_per_job:
            out.append(records[start : start + count])
            start += count
        self.chunks_loaded += 1
        return out

    def record(self, index: int, key: str, per_job_records: Sequence[Sequence[RunRecord]]) -> None:
        """Durably persist one completed chunk (atomic file + synced manifest)."""
        file_name = f"chunk-{index:06d}.jsonl"
        path = os.path.join(self.directory, file_name)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8", newline="\n") as handle:
            for records in per_job_records:
                for record in records:
                    handle.write(encode_record_line(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        self._append_line(
            {
                "chunk": index,
                "key": key,
                "file": file_name,
                "rows_per_job": [len(records) for records in per_job_records],
            }
        )
        self._entries[index] = (key, file_name, [len(r) for r in per_job_records])
        self.chunks_recorded += 1
        obs.REGISTRY.inc("checkpoint_chunks_recorded_total")

    def _append_line(self, payload: dict) -> None:
        self._manifest.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._manifest.flush()
        os.fsync(self._manifest.fileno())

    # ------------------------------------------------------------------ #
    @property
    def completed_chunks(self) -> frozenset[int]:
        return frozenset(self._entries)

    def close(self) -> None:
        if self._manifest is not None:
            self._manifest.close()
            self._manifest = None

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepCheckpoint({self.directory!r}, chunks={len(self._entries)}, "
            f"chunk_size={self.chunk_size!r})"
        )
