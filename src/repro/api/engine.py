"""Sweep engine: run registered solvers over instances, traces and ensembles.

This is the machinery underneath :func:`repro.solve` and
:class:`repro.api.Study`.  The unit of work is one trace: the OMIM reference
(Johnson's rule on the unconstrained instance) is computed exactly once per
trace and shared by every capacity factor — both in the sequential path and
when trace jobs are fanned out over a ``concurrent.futures`` thread pool.
Parallel sweeps preserve the submission order of the trace list, so their
output is identical to the sequential path.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from ..core.instance import Instance
from ..core.metrics import evaluate
from ..core.validation import check_schedule
from ..flowshop.johnson import omim_makespan
from ..simulator.batch import execute_in_batches
from ..simulator.resources import MachineModel
from ..traces.model import Trace, TraceEnsemble
from .registry import Solver, resolve_solvers
from .results import ResultSet, RunRecord

__all__ = ["run_solvers_on_instance", "sweep_traces", "sweep_instances", "default_jobs"]

#: Application label used when an instance carries no name at all.
ADHOC_APPLICATION = "adhoc"


def default_jobs() -> int:
    """Worker count used by ``parallel()`` when none is given."""
    return max(os.cpu_count() or 1, 1)


def run_solvers_on_instance(
    instance: Instance,
    solvers: Sequence[Solver],
    *,
    reference: float | None = None,
    validate: bool = True,
    application: str = "",
    capacity_factor: float = float("nan"),
    batch_size: int | None = None,
    machine: MachineModel | None = None,
) -> list[RunRecord]:
    """Run every solver on one instance and return the measurements.

    ``batch_size`` switches to the Section 6.3 batched execution mode, where a
    solver is applied to successive windows of the submission order.
    ``machine`` selects a custom machine model (kernel-backed solvers only).
    Kernel-backed solvers run with event recording on, so the metrics are
    read from the structured trace instead of re-derived from the schedule.
    """
    reference = omim_makespan(instance) if reference is None else reference
    application = application or instance.name.split("/")[0] or ADHOC_APPLICATION
    records = []
    for solver in solvers:
        trace = None
        if batch_size is not None:
            if machine is not None:
                raise ValueError("batched execution does not support machine models")
            schedule = execute_in_batches(instance, solver.schedule, batch_size=batch_size)
        elif hasattr(solver, "simulate"):
            record = bool(getattr(solver, "runs_on_kernel", False))
            result = solver.simulate(instance, machine=machine, record=record)
            schedule, trace = result.schedule, result.trace
        else:
            if machine is not None:
                raise ValueError(
                    f"solver {solver.name!r} does not run on the simulation kernel"
                )
            schedule = solver.schedule(instance)
        if validate:
            check_schedule(schedule, instance, machine=machine)
        metrics = evaluate(
            schedule, instance, heuristic=solver.name, reference=reference, trace=trace
        )
        records.append(
            RunRecord(
                application=application,
                trace=instance.name,
                heuristic=solver.name,
                category=str(solver.category),
                capacity_factor=capacity_factor,
                capacity=instance.capacity,
                makespan=metrics.makespan,
                omim=metrics.omim,
                ratio_to_optimal=metrics.ratio_to_optimal,
                task_count=len(instance),
            )
        )
    return records


def _limit_trace(trace: Trace, task_limit: int | None) -> Trace:
    if task_limit is None or task_limit >= len(trace):
        return trace
    return Trace(
        application=trace.application,
        process=trace.process,
        tasks=trace.tasks[:task_limit],
        metadata={**trace.metadata, "task_limit": str(task_limit)},
    )


def _sweep_one_trace(
    trace: Trace,
    *,
    capacity_factors: Sequence[float],
    solver_specs: Sequence,
    validate: bool,
    batch_size: int | None,
    task_limit: int | None,
    machine: MachineModel | None,
) -> list[RunRecord]:
    """Capacity sweep of one trace; the OMIM reference is computed once."""
    trace = _limit_trace(trace, task_limit)
    # Fresh solver instances per trace job: named/class specs re-instantiate,
    # so concurrent jobs never share solver state.
    solvers = resolve_solvers(*solver_specs) if solver_specs else resolve_solvers()
    reference = omim_makespan(trace.to_instance())
    mc = trace.min_capacity_bytes
    records: list[RunRecord] = []
    for factor in capacity_factors:
        records.extend(
            run_solvers_on_instance(
                trace.to_instance(mc * factor),
                solvers,
                reference=reference,
                validate=validate,
                application=trace.application,
                capacity_factor=factor,
                batch_size=batch_size,
                machine=machine,
            )
        )
    return records


def _flatten_traces(sources: Iterable) -> list[Trace]:
    traces: list[Trace] = []
    for source in sources:
        if isinstance(source, Trace):
            traces.append(source)
        elif isinstance(source, TraceEnsemble):
            traces.extend(source)
        else:
            raise TypeError(f"expected Trace or TraceEnsemble, got {type(source).__name__}")
    return traces


def sweep_traces(
    sources: Iterable[Trace | TraceEnsemble],
    *,
    capacity_factors: Sequence[float],
    solver_specs: Sequence = (),
    validate: bool = True,
    batch_size: int | None = None,
    task_limit: int | None = None,
    n_jobs: int | None = None,
    machine: MachineModel | None = None,
) -> ResultSet:
    """Capacity sweep of every solver over every trace of ``sources``.

    ``n_jobs`` > 1 distributes whole-trace jobs over a thread pool (threads,
    not processes: the workload releases no locks worth fighting over and the
    solvers stay picklability-free); results are collected in submission
    order, so the output is identical to a sequential run.
    """
    traces = _flatten_traces(sources)
    if machine is not None and machine.capacity is not None:
        raise ValueError(
            "machine.capacity would override every swept capacity; "
            "leave it unset in capacity sweeps (sweep capacity_factors instead)"
        )
    for factor in capacity_factors:
        if not (factor > 0 or math.isnan(factor)):
            raise ValueError(f"capacity factors must be positive, got {factor!r}")

    def job(trace: Trace) -> list[RunRecord]:
        return _sweep_one_trace(
            trace,
            capacity_factors=capacity_factors,
            solver_specs=solver_specs,
            validate=validate,
            batch_size=batch_size,
            task_limit=task_limit,
            machine=machine,
        )

    workers = default_jobs() if n_jobs in (0, -1) else n_jobs
    if workers is not None and workers > 1 and len(traces) > 1:
        with ThreadPoolExecutor(max_workers=min(workers, len(traces))) as pool:
            chunks = list(pool.map(job, traces))
    else:
        chunks = [job(trace) for trace in traces]
    return ResultSet.concat(chunks)


def sweep_instances(
    instances: Iterable[Instance],
    *,
    solver_specs: Sequence = (),
    validate: bool = True,
    batch_size: int | None = None,
    n_jobs: int | None = None,
    machine: MachineModel | None = None,
) -> ResultSet:
    """Run the solvers on raw instances at their own capacity (no factor sweep)."""
    instances = list(instances)

    def job(instance: Instance) -> list[RunRecord]:
        solvers = resolve_solvers(*solver_specs) if solver_specs else resolve_solvers()
        return run_solvers_on_instance(
            instance, solvers, validate=validate, batch_size=batch_size, machine=machine
        )

    workers = default_jobs() if n_jobs in (0, -1) else n_jobs
    if workers is not None and workers > 1 and len(instances) > 1:
        with ThreadPoolExecutor(max_workers=min(workers, len(instances))) as pool:
            chunks = list(pool.map(job, instances))
    else:
        chunks = [job(instance) for instance in instances]
    return ResultSet.concat(chunks)
