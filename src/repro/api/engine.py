"""Sweep engine: run registered solvers over instances, traces and ensembles.

This is the machinery underneath :func:`repro.solve` and
:class:`repro.api.Study`.  The unit of work is one :class:`SweepJob` — one
trace (the OMIM reference is computed exactly once and shared by every
capacity factor) or one raw instance — described entirely by plain data, so
jobs run unchanged on any :mod:`~repro.api.backends` executor: in the
calling thread, on a thread pool, or on a process pool.  Backends preserve
submission order and jobs are deterministic, so every backend produces a
byte-identical :class:`~repro.api.results.ResultSet`.
"""

from __future__ import annotations

import math
import os
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping, Sequence

from ..core.instance import Instance
from ..core.metrics import evaluate, evaluate_online
from ..core.validation import check_schedule
from ..flowshop.johnson import omim_makespan
from ..simulator.arrivals import ArrivalProcess, resolve_arrivals
from ..simulator.batch import simulate_in_batches
from ..simulator.columnar import resolve_engine
from ..simulator.resources import MachineModel
from ..traces.model import Trace, TraceEnsemble
from .backends import ExecutionBackend, guard_progress, resolve_backend
from .registry import Solver, resolve_solvers, spec_to_wire, wire_to_spec
from .results import ResultSet, RunRecord

__all__ = [
    "run_solvers_on_instance",
    "sweep_traces",
    "sweep_instances",
    "default_jobs",
    "SweepJob",
]

#: Application label used when an instance carries no name at all.
ADHOC_APPLICATION = "adhoc"

#: Environment variable capping the default worker count (CI, containers,
#: nested parallelism inside process-backend workers).
NUM_JOBS_ENV_VAR = "REPRO_NUM_JOBS"


def default_jobs(job_count: int | None = None) -> int:
    """Worker count used by ``parallel()``/pool backends when none is given.

    ``REPRO_NUM_JOBS`` overrides the CPU count (so CI boxes and the workers
    of a process-backend sweep — which export it — don't oversubscribe), and
    the result is additionally capped at ``job_count`` when the caller knows
    how many jobs there are: more workers than jobs only cost start-up time.
    """
    override = os.environ.get(NUM_JOBS_ENV_VAR, "").strip()
    if override:
        try:
            jobs = int(override)
        except ValueError:
            raise ValueError(
                f"{NUM_JOBS_ENV_VAR} must be an integer, got {override!r}"
            ) from None
        jobs = max(jobs, 1)
    else:
        jobs = max(os.cpu_count() or 1, 1)
    if job_count is not None:
        jobs = min(jobs, max(int(job_count), 1))
    return jobs


def _arrival_seed(seed: int, label: str) -> list[int]:
    """Deterministic per-trace arrival RNG seed, stable across processes.

    Every capacity factor of one trace reuses the same arrival pattern; two
    traces of one sweep get independent patterns.
    """
    return [seed, zlib.crc32(label.encode("utf-8"))]


def run_solvers_on_instance(
    instance: Instance,
    solvers: Sequence[Solver],
    *,
    reference: float | None = None,
    validate: bool = True,
    application: str = "",
    capacity_factor: float = float("nan"),
    batch_size: int | None = None,
    pipelined: bool = False,
    machine: MachineModel | None = None,
    engine: str | None = None,
) -> list[RunRecord]:
    """Run every solver on one instance and return the measurements.

    ``batch_size`` switches to the Section 6.3 batched execution mode, where
    a solver is applied to successive windows of the submission order
    (``pipelined=True`` drops the drain barrier between windows); instances
    whose tasks carry release dates run on the streaming runtime and fill
    the online measurement columns.  ``machine`` selects a custom machine
    model (kernel-backed solvers only).  Kernel-backed solvers run with
    event recording on, so the metrics are read from the structured trace
    instead of re-derived from the schedule — unless ``engine`` requests
    the columnar fast path (``"auto"``/``"columnar"``), which does not
    record events: recording is dropped there so the fast path can engage,
    and the metrics are derived from the schedule instead.
    """
    reference = omim_makespan(instance) if reference is None else reference
    application = application or instance.name.split("/")[0] or ADHOC_APPLICATION
    online = instance.has_releases
    extra = {} if engine is None else {"engine": engine}
    # The REPRO_ENGINE override must be able to force a whole sweep onto the
    # columnar path, so the recording decision looks at the *resolved* engine:
    # a "columnar" resolution (explicit or via the environment) drops event
    # recording, exactly like an explicit engine="columnar"/"auto" request.
    wants_object = engine in (None, "object") and resolve_engine(engine) != "columnar"
    records = []
    for solver in solvers:
        trace = None
        ran_engine = ""
        runs_on_kernel = bool(getattr(solver, "runs_on_kernel", False))
        record = runs_on_kernel and wants_object
        if batch_size is not None:
            result = simulate_in_batches(
                instance,
                solver,
                batch_size=batch_size,
                pipelined=pipelined,
                machine=machine,
                record=record,
                engine=engine,
            )
            schedule, trace = result.schedule, result.trace
            ran_engine = getattr(result, "engine", "")
        elif hasattr(solver, "simulate"):
            result = solver.simulate(instance, machine=machine, record=record, **extra)
            schedule, trace = result.schedule, result.trace
            ran_engine = getattr(result, "engine", "")
        else:
            if machine is not None:
                raise ValueError(
                    f"solver {solver.name!r} does not run on the simulation kernel"
                )
            schedule = solver.schedule(instance)
        if validate:
            check_schedule(schedule, instance, machine=machine)
        metrics = evaluate(
            schedule, instance, heuristic=solver.name, reference=reference, trace=trace
        )
        online_metrics = evaluate_online(schedule) if online else None
        # Batched execution runs the solver once per window, so last_outcome
        # only describes the final batch — leave the attribution columns
        # empty rather than recording a misleading partial answer.
        outcome = getattr(solver, "last_outcome", None) if batch_size is None else None
        records.append(
            RunRecord(
                application=application,
                trace=instance.name,
                heuristic=solver.name,
                category=str(solver.category),
                capacity_factor=capacity_factor,
                capacity=instance.capacity,
                makespan=metrics.makespan,
                omim=metrics.omim,
                ratio_to_optimal=metrics.ratio_to_optimal,
                task_count=len(instance),
                mean_response_time=(
                    online_metrics.mean_response_time if online_metrics else math.nan
                ),
                mean_stretch=online_metrics.mean_stretch if online_metrics else math.nan,
                avg_queue_length=(
                    online_metrics.avg_queue_length if online_metrics else math.nan
                ),
                selected_solver=outcome.selected if outcome is not None else "",
                cache_hit=(
                    math.nan
                    if outcome is None or outcome.cache_hit is None
                    else float(outcome.cache_hit)
                ),
                engine=ran_engine or "",
            )
        )
    return records


def _limit_trace(trace: Trace, task_limit: int | None) -> Trace:
    if task_limit is None or task_limit >= len(trace):
        return trace
    return Trace(
        application=trace.application,
        process=trace.process,
        tasks=trace.tasks[:task_limit],
        metadata={**trace.metadata, "task_limit": str(task_limit)},
    )


def _sweep_one_trace(
    trace: Trace,
    *,
    capacity_factors: Sequence[float],
    solver_specs: Sequence,
    validate: bool,
    batch_size: int | None,
    pipelined: bool,
    task_limit: int | None,
    machine: MachineModel | None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None",
    arrival_seed: int,
    engine: str | None = None,
) -> list[RunRecord]:
    """Capacity sweep of one trace; the OMIM reference is computed once.

    With ``arrivals``, the release dates are sampled once per trace (seeded
    by the trace label) and reused by every capacity factor, so the factors
    compare scheduling decisions, not arrival luck.
    """
    trace = _limit_trace(trace, task_limit)
    # Fresh solver instances per trace job: named/class specs re-instantiate,
    # so concurrent jobs never share solver state.
    solvers = resolve_solvers(*solver_specs) if solver_specs else resolve_solvers()
    base = trace.to_instance()
    releases = None
    if arrivals is not None:
        releases = resolve_arrivals(
            arrivals, base.tasks, seed=_arrival_seed(arrival_seed, trace.label)
        )
    reference = omim_makespan(base)
    mc = trace.min_capacity_bytes
    records: list[RunRecord] = []
    for factor in capacity_factors:
        instance = trace.to_instance(mc * factor)
        if releases is not None:
            instance = instance.with_releases(releases)
        records.extend(
            run_solvers_on_instance(
                instance,
                solvers,
                reference=reference,
                validate=validate,
                application=trace.application,
                capacity_factor=factor,
                batch_size=batch_size,
                pipelined=pipelined,
                machine=machine,
                engine=engine,
            )
        )
    return records


def _sweep_one_instance(
    instance: Instance,
    *,
    solver_specs: Sequence,
    validate: bool,
    batch_size: int | None,
    pipelined: bool,
    machine: MachineModel | None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None",
    arrival_seed: int,
    engine: str | None = None,
) -> list[RunRecord]:
    """Run the solvers on one raw instance at its own capacity."""
    solvers = resolve_solvers(*solver_specs) if solver_specs else resolve_solvers()
    if arrivals is not None:
        instance = instance.with_releases(
            resolve_arrivals(
                arrivals, instance.tasks, seed=_arrival_seed(arrival_seed, instance.name)
            )
        )
    return run_solvers_on_instance(
        instance,
        solvers,
        validate=validate,
        batch_size=batch_size,
        pipelined=pipelined,
        machine=machine,
        engine=engine,
    )


@dataclass(frozen=True)
class SweepJob:
    """One self-contained unit of sweep work, executable on any backend.

    The payload is a whole :class:`Trace` (swept over ``capacity_factors``,
    sharing one OMIM reference and one arrival pattern) or a raw
    :class:`Instance` (``capacity_factors is None`` — run at its own
    capacity).  Solver specs are carried *as specs*, never as live solvers:
    each run re-resolves them through the registry, so concurrent jobs never
    share solver state and :meth:`to_wire` can rewrite them into plain-data
    form for a trip across a process boundary.
    """

    payload: "Trace | Instance"
    solver_specs: tuple = ()
    capacity_factors: tuple[float, ...] | None = None
    validate: bool = True
    batch_size: int | None = None
    pipelined: bool = False
    task_limit: int | None = None
    machine: MachineModel | None = None
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None
    arrival_seed: int = 0
    engine: str | None = None

    @property
    def label(self) -> str:
        return self.payload.label if isinstance(self.payload, Trace) else self.payload.name

    def to_wire(self) -> "SweepJob":
        """A copy whose solver specs are plain-data wire dicts.

        Raises a :class:`TypeError` naming the offending spec when one
        cannot be expressed by registered name + parameters (live solver
        instances, opaque closures) — the process backend calls this before
        any worker starts, so the error surfaces early and clearly.
        """
        return replace(self, solver_specs=tuple(spec_to_wire(s) for s in self.solver_specs))

    def run(self) -> list[RunRecord]:
        """Execute the job in the current process and return its records."""
        specs = tuple(
            wire_to_spec(spec) if isinstance(spec, dict) else spec for spec in self.solver_specs
        )
        if isinstance(self.payload, Trace):
            return _sweep_one_trace(
                self.payload,
                capacity_factors=self.capacity_factors or (),
                solver_specs=specs,
                validate=self.validate,
                batch_size=self.batch_size,
                pipelined=self.pipelined,
                task_limit=self.task_limit,
                machine=self.machine,
                arrivals=self.arrivals,
                arrival_seed=self.arrival_seed,
                engine=self.engine,
            )
        return _sweep_one_instance(
            self.payload,
            solver_specs=specs,
            validate=self.validate,
            batch_size=self.batch_size,
            pipelined=self.pipelined,
            machine=self.machine,
            arrivals=self.arrivals,
            arrival_seed=self.arrival_seed,
            engine=self.engine,
        )


def _flatten_traces(sources: Iterable) -> list[Trace]:
    traces: list[Trace] = []
    for source in sources:
        if isinstance(source, Trace):
            traces.append(source)
        elif isinstance(source, TraceEnsemble):
            traces.extend(source)
        else:
            raise TypeError(f"expected Trace or TraceEnsemble, got {type(source).__name__}")
    return traces


def sweep_traces(
    sources: Iterable[Trace | TraceEnsemble],
    *,
    capacity_factors: Sequence[float],
    solver_specs: Sequence = (),
    validate: bool = True,
    batch_size: int | None = None,
    pipelined: bool = False,
    task_limit: int | None = None,
    n_jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    chunk_size: int | None = None,
    on_progress: Callable[[int, int], None] | None = None,
    machine: MachineModel | None = None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None,
    arrival_seed: int = 0,
    engine: str | None = None,
) -> ResultSet:
    """Capacity sweep of every solver over every trace of ``sources``.

    ``n_jobs`` > 1 distributes whole-trace :class:`SweepJob` s over an
    execution backend — threads by default, ``backend="processes"`` (or the
    ``REPRO_BACKEND`` environment variable) for true multi-core sweeps.
    Jobs are sharded into chunks of ``chunk_size`` (auto-sized from the job
    and worker counts when omitted) to amortize inter-process traffic, and
    results are merged in submission order, so the output is byte-identical
    to a serial run whatever the backend, worker count or chunking.
    ``on_progress(completed, total)`` is called from the submitting thread
    as jobs complete.
    """
    traces = _flatten_traces(sources)
    if machine is not None and machine.capacity is not None:
        raise ValueError(
            "machine.capacity would override every swept capacity; "
            "leave it unset in capacity sweeps (sweep capacity_factors instead)"
        )
    if arrivals is not None and batch_size is not None:
        raise ValueError(
            "arrivals and batched execution cannot be combined: streaming "
            "generalises batching — pick one execution mode"
        )
    if pipelined and batch_size is None:
        raise ValueError("pipelined=True requires a batch_size")
    for factor in capacity_factors:
        if not (factor > 0 or math.isnan(factor)):
            raise ValueError(f"capacity factors must be positive, got {factor!r}")

    jobs = [
        SweepJob(
            payload=trace,
            solver_specs=tuple(solver_specs),
            capacity_factors=tuple(capacity_factors),
            validate=validate,
            batch_size=batch_size,
            pipelined=pipelined,
            task_limit=task_limit,
            machine=machine,
            arrivals=arrivals,
            arrival_seed=arrival_seed,
            engine=engine,
        )
        for trace in traces
    ]
    executor = resolve_backend(backend, n_jobs=n_jobs)
    return ResultSet.concat(
        executor.run(jobs, chunk_size=chunk_size, on_progress=guard_progress(on_progress))
    )


def sweep_instances(
    instances: Iterable[Instance],
    *,
    solver_specs: Sequence = (),
    validate: bool = True,
    batch_size: int | None = None,
    pipelined: bool = False,
    n_jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    chunk_size: int | None = None,
    on_progress: Callable[[int, int], None] | None = None,
    machine: MachineModel | None = None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None,
    arrival_seed: int = 0,
    engine: str | None = None,
) -> ResultSet:
    """Run the solvers on raw instances at their own capacity (no factor sweep).

    Parallelism, backend selection, chunking and progress reporting behave
    exactly as in :func:`sweep_traces`.
    """
    instances = list(instances)
    if arrivals is not None and batch_size is not None:
        raise ValueError(
            "arrivals and batched execution cannot be combined: streaming "
            "generalises batching — pick one execution mode"
        )
    if pipelined and batch_size is None:
        raise ValueError("pipelined=True requires a batch_size")

    jobs = [
        SweepJob(
            payload=instance,
            solver_specs=tuple(solver_specs),
            capacity_factors=None,
            validate=validate,
            batch_size=batch_size,
            pipelined=pipelined,
            machine=machine,
            arrivals=arrivals,
            arrival_seed=arrival_seed,
            engine=engine,
        )
        for instance in instances
    ]
    executor = resolve_backend(backend, n_jobs=n_jobs)
    return ResultSet.concat(
        executor.run(jobs, chunk_size=chunk_size, on_progress=guard_progress(on_progress))
    )
