"""Sweep engine: run registered solvers over instances, traces and ensembles.

This is the machinery underneath :func:`repro.solve` and
:class:`repro.api.Study`.  The unit of work is one :class:`SweepJob` — one
trace (the OMIM reference is computed exactly once and shared by every
capacity factor) or one raw instance — described entirely by plain data, so
jobs run unchanged on any :mod:`~repro.api.backends` executor: in the
calling thread, on a thread pool, or on a process pool.  Backends preserve
submission order and jobs are deterministic, so every backend produces a
byte-identical :class:`~repro.api.results.ResultSet`.
"""

from __future__ import annotations

import math
import os
import tempfile
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .. import obs
from ..core.instance import Instance
from ..core.metrics import evaluate, evaluate_online
from ..core.validation import check_schedule
from ..flowshop.johnson import omim_makespan
from ..simulator.arrivals import ArrivalProcess, resolve_arrivals
from ..simulator.batch import simulate_in_batches
from ..simulator.batched import (
    BATCH_AUTO_THRESHOLD,
    batched_unsupported_reason,
    simulate_batched_outcomes,
)
from ..simulator.columnar import COLUMNAR_AUTO_THRESHOLD, resolve_engine
from ..simulator.policies import FixedOrderPolicy
from ..simulator.resources import DEFAULT_MACHINE, MachineModel
from ..traces.model import Trace, TraceEnsemble, TraceStream
from .backends import (
    ExecutionBackend,
    auto_chunk_size,
    guard_progress,
    resolve_backend,
)
from .checkpoint import SweepCheckpoint, chunk_key
from .registry import Solver, resolve_solvers, solver_names, spec_to_wire, wire_to_spec
from .results import ResultSet, RunRecord, SpilledResultSet
from .sharding import parse_shard
from .shm import ShmHandle, ShmPlane, attach_payload

__all__ = [
    "run_solvers_on_instance",
    "sweep_traces",
    "sweep_instances",
    "default_jobs",
    "SweepJob",
    "SPILL_THRESHOLD_ENV_VAR",
    "DEFAULT_SPILL_THRESHOLD",
]

#: Application label used when an instance carries no name at all.
ADHOC_APPLICATION = "adhoc"

#: Environment variable capping the default worker count (CI, containers,
#: nested parallelism inside process-backend workers).
NUM_JOBS_ENV_VAR = "REPRO_NUM_JOBS"

#: Environment variable overriding the row count above which sweeps spill
#: their results to disk automatically (``spill=None``).
SPILL_THRESHOLD_ENV_VAR = "REPRO_SPILL_THRESHOLD"

#: Default auto-spill threshold: sweeps whose estimated output exceeds this
#: many rows stream their results into a temporary JSONL spill instead of
#: accumulating everything in RAM.
DEFAULT_SPILL_THRESHOLD = 100_000

#: Chunk size used by the streaming path when the job plane is unsized
#: (a raw generator) and the caller did not pass ``chunk_size``.
_UNSIZED_CHUNK_SIZE = 8
#: Largest auto-selected chunk in the streaming path: in-flight memory is
#: O(workers * chunks-per-worker * chunk size), so the auto size must not
#: scale with the plane.  Explicit ``chunk_size=`` still wins.
_STREAM_MAX_CHUNK = 8


def default_jobs(job_count: int | None = None) -> int:
    """Worker count used by ``parallel()``/pool backends when none is given.

    ``REPRO_NUM_JOBS`` overrides the CPU count (so CI boxes and the workers
    of a process-backend sweep — which export it — don't oversubscribe), and
    the result is additionally capped at ``job_count`` when the caller knows
    how many jobs there are: more workers than jobs only cost start-up time.
    """
    override = os.environ.get(NUM_JOBS_ENV_VAR, "").strip()
    if override:
        try:
            jobs = int(override)
        except ValueError:
            raise ValueError(
                f"{NUM_JOBS_ENV_VAR} must be an integer, got {override!r}"
            ) from None
        jobs = max(jobs, 1)
    else:
        jobs = max(os.cpu_count() or 1, 1)
    if job_count is not None:
        jobs = min(jobs, max(int(job_count), 1))
    return jobs


def _arrival_seed(seed: int, label: str) -> list[int]:
    """Deterministic per-trace arrival RNG seed, stable across processes.

    Every capacity factor of one trace reuses the same arrival pattern; two
    traces of one sweep get independent patterns.
    """
    return [seed, zlib.crc32(label.encode("utf-8"))]


def run_solvers_on_instance(
    instance: Instance,
    solvers: Sequence[Solver],
    *,
    reference: float | None = None,
    validate: bool = True,
    application: str = "",
    capacity_factor: float = float("nan"),
    batch_size: int | None = None,
    pipelined: bool = False,
    machine: MachineModel | None = None,
    engine: str | None = None,
    precomputed: "Mapping[int, object] | None" = None,
) -> list[RunRecord]:
    """Run every solver on one instance and return the measurements.

    ``batch_size`` switches to the Section 6.3 batched execution mode, where
    a solver is applied to successive windows of the submission order
    (``pipelined=True`` drops the drain barrier between windows); instances
    whose tasks carry release dates run on the streaming runtime and fill
    the online measurement columns.  ``machine`` selects a custom machine
    model (kernel-backed solvers only).  Kernel-backed solvers run with
    event recording on, so the metrics are read from the structured trace
    instead of re-derived from the schedule — unless ``engine`` requests
    an array-native fast path (``"auto"``/``"columnar"``/``"batched"``),
    which does not record events: recording is dropped there so the fast
    path can engage, and the metrics are derived from the schedule instead.

    ``precomputed`` maps solver indices to simulation outcomes computed
    ahead of this call (the sweep's cross-instance batch plane); captured
    kernel errors re-raise at the solver's own slot, so the failure order
    matches the per-instance path exactly.
    """
    reference = omim_makespan(instance) if reference is None else reference
    application = application or instance.name.split("/")[0] or ADHOC_APPLICATION
    online = instance.has_releases
    extra = {} if engine is None else {"engine": engine}
    # The REPRO_ENGINE override must be able to force a whole sweep onto the
    # columnar path, so the recording decision looks at the *resolved* engine:
    # a "columnar"/"batched" resolution (explicit or via the environment)
    # drops event recording, exactly like an explicit fast-path request.
    wants_object = engine in (None, "object") and resolve_engine(engine) not in (
        "columnar",
        "batched",
    )
    traced = obs.is_enabled()
    records = []
    for index, solver in enumerate(solvers):
        trace = None
        ran_engine = ""
        stats = None
        runs_on_kernel = bool(getattr(solver, "runs_on_kernel", False))
        record = runs_on_kernel and wants_object
        outcome_ready = precomputed.get(index) if precomputed is not None else None
        if outcome_ready is not None:
            if isinstance(outcome_ready, BaseException):
                raise outcome_ready
            result = outcome_ready
            schedule, trace = result.schedule, result.trace
            ran_engine = getattr(result, "engine", "")
            stats = getattr(result, "stats", None)
        elif batch_size is not None:
            with obs.span("solver.run", solver=solver.name) if traced else obs.NOOP_SPAN:
                result = simulate_in_batches(
                    instance,
                    solver,
                    batch_size=batch_size,
                    pipelined=pipelined,
                    machine=machine,
                    record=record,
                    engine=engine,
                )
            schedule, trace = result.schedule, result.trace
            ran_engine = getattr(result, "engine", "")
            stats = getattr(result, "stats", None)
        elif hasattr(solver, "simulate"):
            with obs.span("solver.run", solver=solver.name) if traced else obs.NOOP_SPAN:
                result = solver.simulate(
                    instance, machine=machine, record=record, **extra
                )
            schedule, trace = result.schedule, result.trace
            ran_engine = getattr(result, "engine", "")
            stats = getattr(result, "stats", None)
        else:
            if machine is not None:
                raise ValueError(
                    f"solver {solver.name!r} does not run on the simulation kernel"
                )
            schedule = solver.schedule(instance)
        if validate:
            check_schedule(schedule, instance, machine=machine)
        metrics = evaluate(
            schedule, instance, heuristic=solver.name, reference=reference, trace=trace
        )
        online_metrics = evaluate_online(schedule) if online else None
        # Batched execution runs the solver once per window, so last_outcome
        # only describes the final batch — leave the attribution columns
        # empty rather than recording a misleading partial answer.
        outcome = getattr(solver, "last_outcome", None) if batch_size is None else None
        records.append(
            RunRecord(
                application=application,
                trace=instance.name,
                heuristic=solver.name,
                category=str(solver.category),
                capacity_factor=capacity_factor,
                capacity=instance.capacity,
                makespan=metrics.makespan,
                omim=metrics.omim,
                ratio_to_optimal=metrics.ratio_to_optimal,
                task_count=len(instance),
                mean_response_time=(
                    online_metrics.mean_response_time if online_metrics else math.nan
                ),
                mean_stretch=online_metrics.mean_stretch if online_metrics else math.nan,
                avg_queue_length=(
                    online_metrics.avg_queue_length if online_metrics else math.nan
                ),
                selected_solver=outcome.selected if outcome is not None else "",
                cache_hit=(
                    math.nan
                    if outcome is None or outcome.cache_hit is None
                    else float(outcome.cache_hit)
                ),
                engine=ran_engine or "",
                kernel_events=stats.events if stats is not None else 0,
                memory_wait_s=stats.memory_wait_s if stats is not None else math.nan,
            )
        )
    return records


def _lane_policy(solver, instance: Instance):
    """The :class:`FixedOrderPolicy` this solver would run, when lane-able.

    A solver joins a batch lane only when its run is *exactly* a fixed-order
    kernel simulation: a stock :class:`~repro.heuristics.base.Heuristic`
    (no ``simulate`` override that could add behaviour), kernel-backed, and
    its policy is literally ``FixedOrderPolicy`` — dynamic/corrected
    policies re-rank at runtime and stay per-instance.  Returns ``None``
    otherwise; the solver then runs on the regular dispatch.
    """
    from ..heuristics.base import Heuristic

    if not isinstance(solver, Heuristic):
        return None
    if type(solver).simulate is not Heuristic.simulate:
        return None
    if not solver.runs_on_kernel:
        return None
    policy = solver.kernel_policy(instance)
    if type(policy) is not FixedOrderPolicy:
        return None
    return policy


def _batched_precomputed(
    instances: Sequence[Instance],
    solvers: Sequence[Solver],
    *,
    machine: MachineModel | None,
    engine: str | None,
    batch_size: int | None,
) -> "list[dict[int, object]] | None":
    """Cross-instance batch plane for a sweep's runnable lane group.

    Collects every (instance, solver) combination that is a plain
    fixed-order kernel run into one :class:`~repro.simulator.batched.
    BatchedPlane` and simulates all lanes per step; returns one
    ``{solver index: outcome}`` dict per instance (``None`` when batching
    does not engage).  Engages when the engine resolves ``"batched"``, or
    resolves ``"auto"`` with at least ``BATCH_AUTO_THRESHOLD`` lanes of
    ``COLUMNAR_AUTO_THRESHOLD``-sized instances — the same regime where
    the columnar path would have been picked lane by lane, so the records
    are bit-identical to the per-instance sweep.
    """
    if batch_size is not None or not instances or not solvers:
        return None
    choice = resolve_engine(engine)
    if choice not in ("auto", "batched"):
        return None
    n_tasks = len(instances[0])
    if choice == "auto" and (
        n_tasks < COLUMNAR_AUTO_THRESHOLD
        or len(instances) * len(solvers) < BATCH_AUTO_THRESHOLD
    ):
        return None
    if any(instance.has_releases for instance in instances[:1]):
        return None  # arrival-stamped sweeps stream on the object kernel
    resolved_machine = DEFAULT_MACHINE if machine is None else machine
    if resolved_machine.link_count != 1 or resolved_machine.cpu_count != 1:
        return None
    lanes: list[tuple[int, int]] = []
    runs = []
    for fi, instance in enumerate(instances):
        for si, solver in enumerate(solvers):
            policy = _lane_policy(solver, instance)
            if policy is None:
                continue
            if batched_unsupported_reason(instance, policy, machine=machine) is not None:
                continue
            lanes.append((fi, si))
            runs.append((instance, policy))
    if not lanes or (choice == "auto" and len(lanes) < BATCH_AUTO_THRESHOLD):
        return None
    started = obs.now() if obs.is_enabled() else 0.0
    outcomes = simulate_batched_outcomes(runs, machine=machine)
    obs.REGISTRY.inc("sweep_batch_lanes_total", len(lanes))
    if obs.is_enabled():
        obs.record_span(
            "sweep.batch", started, obs.now(), lanes=len(lanes), tasks=n_tasks
        )
    per_instance: list[dict[int, object]] = [{} for _ in instances]
    for (fi, si), outcome in zip(lanes, outcomes):
        per_instance[fi][si] = outcome
    return per_instance


def _limit_trace(trace: Trace, task_limit: int | None) -> Trace:
    if task_limit is None or task_limit >= len(trace):
        return trace
    return Trace(
        application=trace.application,
        process=trace.process,
        tasks=trace.tasks[:task_limit],
        metadata={**trace.metadata, "task_limit": str(task_limit)},
    )


def _sweep_one_trace(
    trace: Trace,
    *,
    capacity_factors: Sequence[float],
    solver_specs: Sequence,
    validate: bool,
    batch_size: int | None,
    pipelined: bool,
    task_limit: int | None,
    machine: MachineModel | None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None",
    arrival_seed: int,
    engine: str | None = None,
) -> list[RunRecord]:
    """Capacity sweep of one trace; the OMIM reference is computed once.

    With ``arrivals``, the release dates are sampled once per trace (seeded
    by the trace label) and reused by every capacity factor, so the factors
    compare scheduling decisions, not arrival luck.
    """
    trace = _limit_trace(trace, task_limit)
    # Fresh solver instances per trace job: named/class specs re-instantiate,
    # so concurrent jobs never share solver state.
    solvers = resolve_solvers(*solver_specs) if solver_specs else resolve_solvers()
    base = trace.to_instance()
    releases = None
    if arrivals is not None:
        releases = resolve_arrivals(
            arrivals, base.tasks, seed=_arrival_seed(arrival_seed, trace.label)
        )
    reference = omim_makespan(base)
    mc = trace.min_capacity_bytes
    instances = []
    for factor in capacity_factors:
        instance = trace.to_instance(mc * factor)
        if releases is not None:
            instance = instance.with_releases(releases)
        instances.append(instance)
    # One batch plane across the whole factor × solver grid: every plain
    # fixed-order lane advances in lockstep, the rest run per-instance.
    precomputed = _batched_precomputed(
        instances, solvers, machine=machine, engine=engine, batch_size=batch_size
    )
    records: list[RunRecord] = []
    for fi, (factor, instance) in enumerate(zip(capacity_factors, instances)):
        records.extend(
            run_solvers_on_instance(
                instance,
                solvers,
                reference=reference,
                validate=validate,
                application=trace.application,
                capacity_factor=factor,
                batch_size=batch_size,
                pipelined=pipelined,
                machine=machine,
                engine=engine,
                precomputed=None if precomputed is None else precomputed[fi],
            )
        )
    return records


def _sweep_one_instance(
    instance: Instance,
    *,
    solver_specs: Sequence,
    validate: bool,
    batch_size: int | None,
    pipelined: bool,
    machine: MachineModel | None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None",
    arrival_seed: int,
    engine: str | None = None,
) -> list[RunRecord]:
    """Run the solvers on one raw instance at its own capacity."""
    solvers = resolve_solvers(*solver_specs) if solver_specs else resolve_solvers()
    if arrivals is not None:
        instance = instance.with_releases(
            resolve_arrivals(
                arrivals, instance.tasks, seed=_arrival_seed(arrival_seed, instance.name)
            )
        )
    precomputed = _batched_precomputed(
        [instance], solvers, machine=machine, engine=engine, batch_size=batch_size
    )
    return run_solvers_on_instance(
        instance,
        solvers,
        validate=validate,
        batch_size=batch_size,
        pipelined=pipelined,
        machine=machine,
        engine=engine,
        precomputed=None if precomputed is None else precomputed[0],
    )


@dataclass(frozen=True)
class SweepJob:
    """One self-contained unit of sweep work, executable on any backend.

    The payload is a whole :class:`Trace` (swept over ``capacity_factors``,
    sharing one OMIM reference and one arrival pattern) or a raw
    :class:`Instance` (``capacity_factors is None`` — run at its own
    capacity).  Solver specs are carried *as specs*, never as live solvers:
    each run re-resolves them through the registry, so concurrent jobs never
    share solver state and :meth:`to_wire` can rewrite them into plain-data
    form for a trip across a process boundary.
    """

    payload: "Trace | Instance | ShmHandle"
    solver_specs: tuple = ()
    capacity_factors: tuple[float, ...] | None = None
    validate: bool = True
    batch_size: int | None = None
    pipelined: bool = False
    task_limit: int | None = None
    machine: MachineModel | None = None
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None
    arrival_seed: int = 0
    engine: str | None = None

    @property
    def label(self) -> str:
        if isinstance(self.payload, ShmHandle):
            return self.payload.label
        return self.payload.label if isinstance(self.payload, Trace) else self.payload.name

    def to_wire(self, *, plane: "ShmPlane | None" = None) -> "SweepJob":
        """A copy whose solver specs are plain-data wire dicts.

        Raises a :class:`TypeError` naming the offending spec when one
        cannot be expressed by registered name + parameters (live solver
        instances, opaque closures) — the process backend calls this before
        any worker starts, so the error surfaces early and clearly.

        With a ``plane`` (the process backend's opt-in shared-memory job
        plane), the payload itself is replaced by a tiny
        :class:`~repro.api.shm.ShmHandle`: the columns travel through a
        shared segment published once per distinct payload, and the wire
        job carries only the pointer.
        """
        specs = tuple(spec_to_wire(s) for s in self.solver_specs)
        if plane is not None and isinstance(self.payload, (Trace, Instance)):
            return replace(self, solver_specs=specs, payload=plane.publish(self.payload))
        return replace(self, solver_specs=specs)

    def run(self) -> list[RunRecord]:
        """Execute the job in the current process and return its records."""
        if obs.is_enabled():
            with obs.span("sweep.job", label=self.label):
                return self._run()
        return self._run()

    def _run(self) -> list[RunRecord]:
        specs = tuple(
            wire_to_spec(spec) if isinstance(spec, dict) else spec for spec in self.solver_specs
        )
        payload = self.payload
        if isinstance(payload, ShmHandle):
            payload, detach = attach_payload(payload)
            try:
                return self._run_payload(payload, specs)
            finally:
                # Drop the payload reference before detaching, so the
                # segment's buffer has no exported views left to trip on.
                del payload
                detach()
        return self._run_payload(payload, specs)

    def _run_payload(self, payload: "Trace | Instance", specs: tuple) -> list[RunRecord]:
        if isinstance(payload, Trace):
            return _sweep_one_trace(
                payload,
                capacity_factors=self.capacity_factors or (),
                solver_specs=specs,
                validate=self.validate,
                batch_size=self.batch_size,
                pipelined=self.pipelined,
                task_limit=self.task_limit,
                machine=self.machine,
                arrivals=self.arrivals,
                arrival_seed=self.arrival_seed,
                engine=self.engine,
            )
        return _sweep_one_instance(
            payload,
            solver_specs=specs,
            validate=self.validate,
            batch_size=self.batch_size,
            pipelined=self.pipelined,
            machine=self.machine,
            arrivals=self.arrivals,
            arrival_seed=self.arrival_seed,
            engine=self.engine,
        )


def _iter_traces(sources: Iterable) -> "tuple[Iterator[Trace], int | None]":
    """Lazily flatten trace sources, keeping the total count when it is known.

    ``sources`` may mix :class:`Trace`, :class:`TraceEnsemble` and
    :class:`TraceStream` items; when ``sources`` itself is a list/tuple the
    total is computed up front (every item is sized) and item types are
    validated eagerly, exactly like the historical list-materialising path.
    A generator source stays unsized — the sweep then streams with spilling
    engaged and reports progress against the jobs seen so far.
    """

    def check(source):
        if not isinstance(source, (Trace, TraceEnsemble, TraceStream)):
            raise TypeError(
                "expected Trace, TraceEnsemble or TraceStream, "
                f"got {type(source).__name__}"
            )
        return source

    def flatten(items) -> Iterator[Trace]:
        for source in items:
            if isinstance(check(source), Trace):
                yield source
            else:
                yield from source

    if isinstance(sources, (list, tuple)):
        total = sum(1 if isinstance(check(s), Trace) else len(s) for s in sources)
        return flatten(sources), total
    return flatten(sources), None


def _spill_threshold() -> int:
    raw = os.environ.get(SPILL_THRESHOLD_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_SPILL_THRESHOLD
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{SPILL_THRESHOLD_ENV_VAR} must be an integer, got {raw!r}"
        ) from None


def _estimate_rows(job_total: int | None, rows_per_job: int) -> int | None:
    """Upper-ish bound on the sweep's output rows, for the auto-spill gate."""
    if job_total is None:
        return None
    return job_total * max(rows_per_job, 1)


def _rows_per_trace_job(capacity_factors: Sequence[float], solver_specs: Sequence) -> int:
    specs = len(solver_specs) if solver_specs else len(solver_names())
    return max(len(capacity_factors), 1) * max(specs, 1)


def _resolve_spill_target(spill, estimated_rows: int | None) -> ResultSet:
    """Pick the sweep's result container: in-memory, or a JSONL spill.

    ``spill=None`` auto-engages above the row threshold (or when the job
    plane is unsized); ``False`` forces in-memory, ``True`` a temporary
    spill file, a path an explicit spill, and an already-open
    :class:`SpilledResultSet` is appended to as-is.
    """
    if spill is False:
        return ResultSet()
    if spill is None:
        if estimated_rows is not None and estimated_rows <= _spill_threshold():
            return ResultSet()
        spill = True
    if spill is True:
        fd, path = tempfile.mkstemp(prefix="repro-sweep-", suffix=".jsonl")
        os.close(fd)
        return SpilledResultSet(path, temporary=True)
    if isinstance(spill, SpilledResultSet):
        return spill
    if isinstance(spill, (str, os.PathLike)):
        return ResultSet.open_spill(spill)
    raise TypeError(
        f"spill must be None, a bool, a path or a SpilledResultSet, "
        f"got {type(spill).__name__}"
    )


def _resolve_shard(shard) -> "tuple[int, int] | None":
    if shard is None:
        return None
    if isinstance(shard, str):
        return parse_shard(shard)
    index, count = shard
    return parse_shard(f"{int(index)}/{int(count)}")


def _run_sweep(
    job_iter: Iterator[SweepJob],
    job_total: int | None,
    *,
    backend,
    n_jobs: int | None,
    chunk_size: int | None,
    on_progress,
    spill,
    rows_per_job: int,
    checkpoint,
    shard,
    on_records,
) -> ResultSet:
    """Execute a (possibly lazy) job plane and merge its records in order.

    The plain path — no spill, no checkpoint, no shard, sized plane — is
    the historical ``executor.run`` + ``ResultSet.concat``, byte for byte.
    Everything else goes through the streaming orchestrator: jobs are
    chunked lazily, at most a bounded window is in flight, each chunk's
    records are merged (and spilled / recorded / forwarded) strictly in
    submission order, so the output stays byte-identical to the plain path
    whatever the backend, chunking, sharding or resume history.
    """
    executor = resolve_backend(backend, n_jobs=n_jobs)
    shard_spec = _resolve_shard(shard)
    progress = guard_progress(on_progress)

    own_checkpoint = False
    if isinstance(checkpoint, (str, os.PathLike)):
        checkpoint = SweepCheckpoint(checkpoint)
        own_checkpoint = True

    result = _resolve_spill_target(
        spill, _estimate_rows(job_total, rows_per_job) if job_total is not None else None
    )
    streaming = (
        job_total is None
        or checkpoint is not None
        or shard_spec is not None
        or on_records is not None
        or isinstance(result, SpilledResultSet)
    )
    if not streaming:
        jobs = list(job_iter)
        per_job = executor.run(jobs, chunk_size=chunk_size, on_progress=progress)
        merge_started = obs.now() if obs.is_enabled() else 0.0
        merged = ResultSet.concat(per_job)
        obs.REGISTRY.inc("sweep_jobs_merged_total", len(jobs))
        if obs.is_enabled():
            obs.record_span("sweep.merge", merge_started, obs.now(), jobs=len(jobs))
        return merged

    if shard_spec is None:
        local_total = job_total
    else:
        index, count = shard_spec
        local_total = (
            None if job_total is None else (job_total - index + count - 1) // count
        )

    try:
        _stream_sweep(
            executor,
            job_iter,
            local_total,
            chunk_size=chunk_size,
            progress=progress,
            result=result,
            checkpoint=checkpoint,
            shard_spec=shard_spec,
            on_records=on_records,
        )
    finally:
        if own_checkpoint:
            checkpoint.close()
    if isinstance(result, SpilledResultSet):
        result.flush()
    return result


def _stream_sweep(
    executor,
    job_iter: Iterator[SweepJob],
    local_total: int | None,
    *,
    chunk_size: int | None,
    progress,
    result: ResultSet,
    checkpoint: "SweepCheckpoint | None",
    shard_spec: "tuple[int, int] | None",
    on_records,
) -> None:
    """The streaming orchestrator: chunk lazily, execute, merge in order."""
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size!r}")
    if getattr(executor, "name", "") == "serial":
        workers = 1
    else:
        from .backends import _effective_workers

        workers = _effective_workers(getattr(executor, "n_jobs", None), local_total)
    if chunk_size is not None:
        computed = chunk_size
    elif local_total is not None:
        # The legacy auto size grows with the plane (total / workers / 4),
        # which is fine when every job is in memory anyway but would defeat
        # streaming: in-flight memory must stay bounded no matter how large
        # the sweep is.  Cap uncapped auto sizes at the unsized default.
        computed = min(auto_chunk_size(local_total, workers), _STREAM_MAX_CHUNK)
    else:
        computed = _UNSIZED_CHUNK_SIZE
    size = (
        checkpoint.resolve_chunk_size(chunk_size, computed)
        if checkpoint is not None
        else computed
    )

    done = 0

    def report(count: int) -> None:
        nonlocal done
        done += count
        if progress is not None:
            progress(done, local_total if local_total is not None else done)

    def indexed() -> Iterator[tuple[int, SweepJob]]:
        for gidx, job in enumerate(job_iter):
            if shard_spec is None or gidx % shard_spec[1] == shard_spec[0]:
                yield gidx, job

    def chunked() -> Iterator[tuple[int, list[tuple[int, SweepJob]]]]:
        batch: list[tuple[int, SweepJob]] = []
        index = 0
        for pair in indexed():
            batch.append(pair)
            if len(batch) == size:
                yield index, batch
                batch = []
                index += 1
        if batch:
            yield index, batch

    #: chunk index -> (global job indices, checkpoint key) — records loaded
    #: lazily at emission time, so a fully cached resume stays bounded too.
    cached: dict[int, tuple[list[int], str]] = {}
    #: chunk index -> (global job indices, checkpoint key or None)
    live: dict[int, tuple[list[int], "str | None"]] = {}

    def runnable() -> Iterator[tuple[int, list[SweepJob]]]:
        for index, batch in chunked():
            gidxs = [gidx for gidx, _ in batch]
            jobs_only = [job for _, job in batch]
            if checkpoint is not None:
                key = chunk_key(jobs_only)
                if checkpoint.match(index, key):
                    cached[index] = (gidxs, key)
                    report(len(batch))
                    continue
                live[index] = (gidxs, key)
            else:
                live[index] = (gidxs, None)
            yield index, jobs_only

    def emit(gidxs: Sequence[int], per_job: Sequence[Sequence[RunRecord]]) -> None:
        merge_started = obs.now() if obs.is_enabled() else 0.0
        for gidx, records in zip(gidxs, per_job):
            for record in records:
                result.append(record)
            if on_records is not None:
                on_records(gidx, records)
        if isinstance(result, SpilledResultSet):
            result.flush()
        obs.REGISTRY.inc("sweep_chunks_merged_total")
        obs.REGISTRY.inc("sweep_jobs_merged_total", len(gidxs))
        if obs.is_enabled():
            obs.record_span(
                "sweep.chunk.merge", merge_started, obs.now(), jobs=len(gidxs)
            )

    next_emit = 0

    def drain_cached() -> None:
        nonlocal next_emit
        while next_emit in cached:
            gidxs, key = cached.pop(next_emit)
            emit(gidxs, checkpoint.load(next_emit, key))
            next_emit += 1

    stream = getattr(executor, "stream_chunks", None)
    if stream is not None:
        for tag, per_job in stream(
            runnable(), on_chunk=lambda _tag, count: report(count)
        ):
            drain_cached()
            # Backends yield strictly in submission order, and every chunk
            # before this one was either yielded (live) or registered as
            # cached when the backend pulled past it — so after the drain,
            # ``tag`` is exactly the next chunk to merge.
            gidxs, key = live.pop(tag)
            emit(gidxs, per_job)
            if checkpoint is not None:
                checkpoint.record(tag, key, per_job)
            next_emit += 1
        drain_cached()
        return

    # Fallback for third-party backends without ``stream_chunks`` (e.g. a
    # persistent serving pool): chunks run one after another through the
    # backend's plain ``run``.  Checkpoints, shards and callbacks keep their
    # exact semantics; only the cross-chunk pipelining is lost.
    for index, batch in chunked():
        gidxs = [gidx for gidx, _ in batch]
        jobs_only = [job for _, job in batch]
        if checkpoint is not None:
            key = chunk_key(jobs_only)
            if checkpoint.match(index, key):
                emit(gidxs, checkpoint.load(index, key))
                report(len(batch))
                continue
        else:
            key = None
        per_job = executor.run(jobs_only, chunk_size=size)
        emit(gidxs, per_job)
        if checkpoint is not None:
            checkpoint.record(index, key, per_job)
        report(len(batch))


def sweep_traces(
    sources: Iterable[Trace | TraceEnsemble],
    *,
    capacity_factors: Sequence[float],
    solver_specs: Sequence = (),
    validate: bool = True,
    batch_size: int | None = None,
    pipelined: bool = False,
    task_limit: int | None = None,
    n_jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    chunk_size: int | None = None,
    on_progress: Callable[[int, int], None] | None = None,
    machine: MachineModel | None = None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None,
    arrival_seed: int = 0,
    engine: str | None = None,
    spill: "bool | str | os.PathLike | SpilledResultSet | None" = None,
    checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None,
    shard: "str | tuple[int, int] | None" = None,
    on_records: "Callable[[int, list[RunRecord]], None] | None" = None,
) -> ResultSet:
    """Capacity sweep of every solver over every trace of ``sources``.

    ``n_jobs`` > 1 distributes whole-trace :class:`SweepJob` s over an
    execution backend — threads by default, ``backend="processes"`` (or the
    ``REPRO_BACKEND`` environment variable) for true multi-core sweeps.
    Jobs are sharded into chunks of ``chunk_size`` (auto-sized from the job
    and worker counts when omitted) to amortize inter-process traffic, and
    results are merged in submission order, so the output is byte-identical
    to a serial run whatever the backend, worker count or chunking.
    ``on_progress(completed, total)`` is called from the submitting thread
    as jobs complete.

    Large sweeps stream: ``sources`` may include lazy
    :class:`~repro.traces.TraceStream` items (or itself be a generator), at
    most a bounded window of jobs is materialised at a time, and results
    **spill** to an append-only JSONL file — automatically above
    ``REPRO_SPILL_THRESHOLD`` estimated rows (default 100 000), forced or
    disabled via ``spill``.  ``checkpoint`` (a directory or open
    :class:`~repro.api.SweepCheckpoint`) records every merged chunk durably
    so a killed sweep resumes without re-running completed work; ``shard``
    (``"i/N"``) runs one deterministic slice of the job plane, and
    ``on_records(job_index, records)`` observes each job's rows as chunks
    merge, in global job order.  Whatever the combination, the merged
    output stays byte-identical to the plain in-memory sweep.
    """
    trace_iter, job_total = _iter_traces(sources)
    if machine is not None and machine.capacity is not None:
        raise ValueError(
            "machine.capacity would override every swept capacity; "
            "leave it unset in capacity sweeps (sweep capacity_factors instead)"
        )
    if arrivals is not None and batch_size is not None:
        raise ValueError(
            "arrivals and batched execution cannot be combined: streaming "
            "generalises batching — pick one execution mode"
        )
    if pipelined and batch_size is None:
        raise ValueError("pipelined=True requires a batch_size")
    for factor in capacity_factors:
        if not (factor > 0 or math.isnan(factor)):
            raise ValueError(f"capacity factors must be positive, got {factor!r}")

    jobs = (
        SweepJob(
            payload=trace,
            solver_specs=tuple(solver_specs),
            capacity_factors=tuple(capacity_factors),
            validate=validate,
            batch_size=batch_size,
            pipelined=pipelined,
            task_limit=task_limit,
            machine=machine,
            arrivals=arrivals,
            arrival_seed=arrival_seed,
            engine=engine,
        )
        for trace in trace_iter
    )
    return _run_sweep(
        jobs,
        job_total,
        backend=backend,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        on_progress=on_progress,
        spill=spill,
        rows_per_job=_rows_per_trace_job(capacity_factors, solver_specs),
        checkpoint=checkpoint,
        shard=shard,
        on_records=on_records,
    )


def sweep_instances(
    instances: Iterable[Instance],
    *,
    solver_specs: Sequence = (),
    validate: bool = True,
    batch_size: int | None = None,
    pipelined: bool = False,
    n_jobs: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    chunk_size: int | None = None,
    on_progress: Callable[[int, int], None] | None = None,
    machine: MachineModel | None = None,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None,
    arrival_seed: int = 0,
    engine: str | None = None,
    spill: "bool | str | os.PathLike | SpilledResultSet | None" = None,
    checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None,
    shard: "str | tuple[int, int] | None" = None,
    on_records: "Callable[[int, list[RunRecord]], None] | None" = None,
) -> ResultSet:
    """Run the solvers on raw instances at their own capacity (no factor sweep).

    Parallelism, backend selection, chunking, progress reporting and the
    streaming options (``spill``/``checkpoint``/``shard``/``on_records``,
    lazy ``instances`` generators) behave exactly as in
    :func:`sweep_traces`.
    """
    if isinstance(instances, (list, tuple)):
        job_total = len(instances)
        instance_iter: Iterator[Instance] = iter(instances)
    else:
        job_total = None
        instance_iter = iter(instances)
    if arrivals is not None and batch_size is not None:
        raise ValueError(
            "arrivals and batched execution cannot be combined: streaming "
            "generalises batching — pick one execution mode"
        )
    if pipelined and batch_size is None:
        raise ValueError("pipelined=True requires a batch_size")

    jobs = (
        SweepJob(
            payload=instance,
            solver_specs=tuple(solver_specs),
            capacity_factors=None,
            validate=validate,
            batch_size=batch_size,
            pipelined=pipelined,
            machine=machine,
            arrivals=arrivals,
            arrival_seed=arrival_seed,
            engine=engine,
        )
        for instance in instance_iter
    )
    specs = len(solver_specs) if solver_specs else len(solver_names())
    return _run_sweep(
        jobs,
        job_total,
        backend=backend,
        n_jobs=n_jobs,
        chunk_size=chunk_size,
        on_progress=on_progress,
        spill=spill,
        rows_per_job=max(specs, 1),
        checkpoint=checkpoint,
        shard=shard,
        on_records=on_records,
    )
