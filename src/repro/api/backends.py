"""Pluggable execution backends for the sweep engine.

The sweep engine (:mod:`repro.api.engine`) describes its work as a list of
self-contained, picklable :class:`~repro.api.engine.SweepJob` objects; a
*backend* decides where those jobs run:

* :class:`SerialBackend` — in the calling thread, one job at a time;
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` fan-out (cheap to start,
  but the pure-Python kernel is GIL-serialized, so wall-clock gains are
  limited to validation/IO slack);
* :class:`ProcessBackend` — a ``ProcessPoolExecutor`` fan-out for true
  multi-core sweeps.  Jobs are converted to their wire form first
  (:meth:`SweepJob.to_wire`), so workers rebuild solvers from their own
  registry and never unpickle live solver state.

Every backend returns the per-job record lists **in submission order** and
jobs are deterministic, so the merged :class:`~repro.api.results.ResultSet`
is byte-identical across backends, worker counts and chunk sizes —
differential-tested in ``tests/api/test_backends.py``.

Besides the all-at-once :meth:`run`, the built-in backends implement
:meth:`stream_chunks`: an incremental mode that pulls pre-chunked jobs from
an iterator (possibly lazily *generated* — the sweep engine feeds it
generator-backed trace jobs), keeps at most a bounded window of chunks in
flight, and yields each chunk's results **in submission order** as soon as
its predecessors have been yielded.  Peak memory is proportional to the
in-flight window, not the sweep size; the merged output stays byte-identical
to :meth:`run`.  ``stream_chunks`` is optional for third-party backends —
the engine falls back to :meth:`run` when it is absent.

Selection goes through :func:`resolve_backend`: an explicit backend (name or
instance) wins, then the ``REPRO_BACKEND`` environment variable, then the
historical default (threads when parallelism was requested, serial
otherwise).
"""

from __future__ import annotations

import math
import os
import pickle
import traceback
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Iterator, Protocol, Sequence, runtime_checkable

from .. import obs
from .results import RunRecord
from .shm import ShmPlane, shm_enabled

__all__ = [
    "BACKEND_ENV_VAR",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "StopSweep",
    "SweepJobError",
    "ThreadBackend",
    "auto_chunk_size",
    "guard_progress",
    "resolve_backend",
]

#: Environment variable overriding the backend choice for every sweep.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Chunks per worker targeted by :func:`auto_chunk_size`: enough slack for
#: load-balancing across uneven traces, few enough to amortize the per-chunk
#: IPC (pickle + queue round-trip) over several jobs.
_CHUNKS_PER_WORKER = 4

ProgressCallback = Callable[[int, int], None]


class SweepJobError(RuntimeError):
    """One sweep job failed inside a worker.

    Carries the job label and the worker-side traceback as a single string,
    so it pickles losslessly across the process boundary instead of
    degrading into a bare ``BrokenProcessPool``.
    """


class StopSweep(Exception):
    """Deliberate sweep abort, raised from a progress callback.

    Progress callbacks are otherwise *guarded* — an exception inside one is
    caught and warned about instead of killing the sweep (see
    :func:`guard_progress`).  Raising ``StopSweep`` is the sanctioned escape
    hatch: it passes through the guard, every backend cancels its
    not-yet-started work, and the sweep raises ``StopSweep`` to the caller.
    The serving layer (:mod:`repro.serve`) uses this for deadline-exceeded
    sweep cancellation.
    """


def guard_progress(callback: ProgressCallback | None) -> ProgressCallback | None:
    """Wrap a user progress callback so its bugs cannot kill the sweep.

    The first exception raised by ``callback`` is converted into a
    ``RuntimeWarning`` naming the callback; later failures are silently
    dropped (one sweep should warn once, not once per job).
    :class:`StopSweep` is exempt — it is the deliberate cancellation signal
    and always propagates.
    """
    if callback is None:
        return None
    warned = False

    def report(completed: int, total: int) -> None:
        nonlocal warned
        try:
            callback(completed, total)
        except StopSweep:
            raise
        except Exception as error:
            if not warned:
                warned = True
                warnings.warn(
                    f"sweep progress callback {callback!r} raised "
                    f"{type(error).__name__}: {error}; the sweep continues and "
                    "further failures of this callback are suppressed "
                    "(raise repro.api.StopSweep to abort a sweep on purpose)",
                    RuntimeWarning,
                    stacklevel=2,
                )

    return report


@runtime_checkable
class ExecutionBackend(Protocol):
    """Where sweep jobs run.  Implementations must preserve submission order."""

    name: str

    def run(
        self,
        jobs: Sequence,
        *,
        chunk_size: int | None = None,
        on_progress: ProgressCallback | None = None,
    ) -> list[list[RunRecord]]:
        """Execute every job; returns one record list per job, in job order."""
        ...


def auto_chunk_size(job_count: int, workers: int) -> int:
    """Default shard size: aim for ``_CHUNKS_PER_WORKER`` chunks per worker."""
    if job_count <= 0:
        return 1
    return max(1, math.ceil(job_count / (max(workers, 1) * _CHUNKS_PER_WORKER)))


def _chunked(jobs: Sequence, size: int) -> list[list]:
    return [list(jobs[start : start + size]) for start in range(0, len(jobs), size)]


def _run_chunk(jobs: Sequence) -> list[list[RunRecord]]:
    """Run one shard of jobs in-process; failures propagate unwrapped.

    The serial and thread backends use this directly, so a failing job
    raises its *original* exception — same type, same object — exactly as
    the pre-backend thread pool did.
    """
    return [job.run() for job in jobs]


def _run_chunk_wrapped(jobs: Sequence) -> list[list[RunRecord]]:
    """Process-worker entry point: failures become picklable SweepJobErrors.

    Arbitrary exceptions may not survive the trip back through the result
    queue (unpicklable state degrades into an opaque pool teardown), so the
    worker re-raises them as a :class:`SweepJobError` naming the job and
    carrying the worker-side traceback as text.
    """
    results: list[list[RunRecord]] = []
    for job in jobs:
        try:
            results.append(job.run())
        except SweepJobError:
            raise
        except Exception as error:
            raise SweepJobError(
                f"sweep job {job.label!r} failed: {type(error).__name__}: {error}\n"
                f"{traceback.format_exc()}"
            ) from None
    return results


class _ObsEnvelope:
    """Chunk results plus the worker's observability payload, on one wire.

    When a sweep is traced, process-backend workers wrap each chunk's record
    lists together with the spans and metric deltas recorded while running it
    (:func:`repro.obs.worker_payload`); the parent unwraps the envelope and
    merges the payload into its own tracer/registry (:func:`_absorb_obs`), so
    the exported trace carries pid/tid-tagged spans from every worker.
    """

    __slots__ = ("records", "payload")

    def __init__(self, records: list, payload: dict) -> None:
        self.records = records
        self.payload = payload


def _run_chunk_traced(jobs: Sequence) -> "_ObsEnvelope":
    """Traced process-worker entry point: results + obs payload.

    Enables tracing in the worker (spawn-started workers do not inherit the
    parent's flag) and snapshots the span/metrics position first, so
    fork-started workers — which inherit the parent's buffered spans and
    counter totals — ship only what this chunk actually recorded.
    """
    obs.enable()
    baseline = obs.worker_baseline()
    started = obs.now()
    records = _run_chunk_wrapped(jobs)
    obs.record_span("sweep.chunk.run", started, obs.now(), jobs=len(jobs))
    return _ObsEnvelope(records, obs.worker_payload(baseline))


def _process_runner() -> Callable[[Sequence], object]:
    """Worker entry point for the process backend under the current tracing state."""
    return _run_chunk_traced if obs.is_enabled() else _run_chunk_wrapped


def _absorb_obs(result):
    """Unwrap a worker result, merging any shipped obs payload locally."""
    if isinstance(result, _ObsEnvelope):
        obs.absorb_payload(result.payload)
        return result.records
    return result


def _checked_chunk_size(chunk_size: int | None) -> int | None:
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size!r}")
    return chunk_size


def _effective_workers(n_jobs: int | None, job_count: int | None) -> int:
    from .engine import default_jobs  # lazy: engine imports us

    if n_jobs is None or n_jobs in (0, -1):
        return default_jobs(job_count)
    if job_count is None:  # lazy job planes: no count to cap against
        return max(1, int(n_jobs))
    return max(1, min(int(n_jobs), max(job_count, 1)))


def _run_pool(
    pool: Executor,
    chunks: list[list],
    job_count: int,
    on_progress: ProgressCallback | None,
    runner: Callable[[Sequence], list[list[RunRecord]]] = _run_chunk,
) -> list[list[list[RunRecord]]]:
    """Submit every chunk, report progress as chunks finish, keep order."""
    traced = obs.is_enabled()
    futures = {}
    submitted_at = {}
    for index, chunk in enumerate(chunks):
        if traced:
            submitted_at[index] = obs.now()
        futures[pool.submit(runner, chunk)] = index
    results: list[list[list[RunRecord]] | None] = [None] * len(chunks)
    done = 0
    pending = set(futures)
    try:
        while pending:
            finished, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in finished:
                index = futures[future]
                results[index] = _absorb_obs(future.result())
                if traced:
                    obs.record_span(
                        "sweep.chunk",
                        submitted_at[index],
                        obs.now(),
                        chunk=index,
                        jobs=len(chunks[index]),
                    )
                done += len(chunks[index])
                if on_progress is not None:
                    on_progress(done, job_count)
    except BaseException:
        # First failure wins: drop every not-yet-started chunk so the error
        # reaches the caller without burning through the rest of the sweep.
        for future in pending:
            future.cancel()
        raise
    return results  # type: ignore[return-value]  (every slot was filled)


#: A chunk handed to ``stream_chunks``: an opaque tag plus the chunk's jobs.
TaggedChunk = "tuple[object, list]"

#: Chunk-completion callback for ``stream_chunks``: ``(tag, job_count)``,
#: fired when a chunk *finishes* (possibly out of submission order).
ChunkCallback = Callable[[object, int], None]


def _stream_serial(
    chunks: Iterable,
    runner: Callable[[Sequence], list[list[RunRecord]]],
    on_chunk: ChunkCallback | None,
) -> Iterator:
    """One chunk at a time in the calling thread — the streaming reference."""
    for tag, chunk in chunks:
        with obs.span("sweep.chunk", jobs=len(chunk)):
            records = _absorb_obs(runner(chunk))
        if on_chunk is not None:
            on_chunk(tag, len(chunk))
        yield tag, records


def _stream_pool(
    pool: Executor,
    chunks: Iterable,
    runner: Callable[[Sequence], list[list[RunRecord]]],
    on_chunk: ChunkCallback | None,
    max_pending: int,
) -> Iterator:
    """Pipeline chunks through ``pool`` with a bounded in-flight window.

    At most ``max_pending`` chunks are submitted-but-not-yet-yielded at any
    moment (running futures plus the reorder buffer holding out-of-order
    completions), so a lazily generated job plane is materialised only
    ``max_pending`` chunks at a time.  Results are yielded strictly in
    submission order; the first failure cancels every not-yet-started chunk.
    """
    traced = obs.is_enabled()
    chunk_iter = iter(chunks)
    futures: dict = {}  # future -> (sequence number, tag, job count, submit time)
    buffer: dict = {}  # sequence number -> (tag, records)
    submitted = 0
    next_emit = 0
    exhausted = False
    try:
        while True:
            while not exhausted and len(futures) + len(buffer) < max_pending:
                try:
                    tag, chunk = next(chunk_iter)
                except StopIteration:
                    exhausted = True
                    break
                started = obs.now() if traced else 0.0
                futures[pool.submit(runner, chunk)] = (submitted, tag, len(chunk), started)
                submitted += 1
            if next_emit in buffer:
                yield buffer.pop(next_emit)
                next_emit += 1
                continue
            if futures:
                finished, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in finished:
                    sequence, tag, count, started = futures.pop(future)
                    buffer[sequence] = (tag, _absorb_obs(future.result()))
                    if traced:
                        obs.record_span(
                            "sweep.chunk", started, obs.now(), chunk=sequence, jobs=count
                        )
                    if on_chunk is not None:
                        on_chunk(tag, count)
                continue
            if exhausted:
                # No futures left, nothing emittable buffered: all done
                # (buffered sequences are contiguous once futures drain).
                return
    except BaseException:
        # Covers job failures, StopSweep raised from on_chunk, and the
        # consumer closing the generator early (GeneratorExit): drop every
        # not-yet-started chunk so nothing keeps burning workers.
        for future in futures:
            future.cancel()
        raise


class SerialBackend:
    """Run jobs one after another in the calling thread (the reference)."""

    name = "serial"

    def run(self, jobs, *, chunk_size=None, on_progress=None):
        _checked_chunk_size(chunk_size)  # same contract as the pool backends
        results = []
        for index, job in enumerate(jobs):
            results.append(job.run())
            if on_progress is not None:
                on_progress(index + 1, len(jobs))
        return results

    def stream_chunks(self, chunks, *, on_chunk=None, max_pending=None):
        """Yield ``(tag, records)`` per chunk, pulling chunks lazily."""
        return _stream_serial(chunks, _run_chunk, on_chunk)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialBackend()"


class ThreadBackend:
    """Fan chunks of jobs over a thread pool (the pre-backend behaviour)."""

    name = "threads"

    def __init__(self, n_jobs: int | None = None) -> None:
        self.n_jobs = n_jobs

    def run(self, jobs, *, chunk_size=None, on_progress=None):
        chunk_size = _checked_chunk_size(chunk_size)
        workers = _effective_workers(self.n_jobs, len(jobs))
        if workers <= 1 or len(jobs) <= 1:
            return SerialBackend().run(jobs, on_progress=on_progress)
        size = chunk_size if chunk_size is not None else auto_chunk_size(len(jobs), workers)
        chunks = _chunked(jobs, size)
        with ThreadPoolExecutor(max_workers=min(workers, len(chunks))) as pool:
            per_chunk = _run_pool(pool, chunks, len(jobs), on_progress)
        return [records for chunk in per_chunk for records in chunk]

    def stream_chunks(self, chunks, *, on_chunk=None, max_pending=None):
        """Bounded-window streaming over the thread pool (ordered yields)."""
        workers = _effective_workers(self.n_jobs, None)
        if workers <= 1:
            yield from _stream_serial(chunks, _run_chunk, on_chunk)
            return
        if max_pending is None:
            max_pending = workers * _CHUNKS_PER_WORKER
        with ThreadPoolExecutor(max_workers=workers) as pool:
            yield from _stream_pool(pool, chunks, _run_chunk, on_chunk, max_pending)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadBackend(n_jobs={self.n_jobs!r})"


def _process_worker_init() -> None:
    """Per-worker warm-up: load the registry, tame nested parallelism.

    ``REPRO_NUM_JOBS`` is defaulted (not forced) to 1 so a thread-racing
    ``PortfolioSolver`` inside a process-backend sweep does not multiply the
    already-saturated worker count; exporting the variable in the parent
    still wins, because children inherit the environment.
    """
    from .engine import NUM_JOBS_ENV_VAR  # lazy: engine imports us
    from .registry import warm_registry

    os.environ.setdefault(NUM_JOBS_ENV_VAR, "1")
    # Fork-started workers inherit the parent's exit-time trace export
    # registration; cancel it so worker exits never clobber the trace file.
    obs.disable_autoexport()
    warm_registry()


def _is_shm_handle(wire_job) -> bool:
    from .shm import ShmHandle

    return isinstance(getattr(wire_job, "payload", None), ShmHandle)


def _wire_probe():
    """Trial-pickle gate probing one wire job per *distinct payload type*.

    Sweep jobs share their solver specs and sweep-wide options, so pickle
    failures are a property of the payload family: probing the first
    ``Trace`` job does nothing for an unpicklable ``Instance`` subclass
    later in the plane, which used to detonate mid-pool as an opaque
    error.  One probe per payload type keeps the early clear ``TypeError``
    without serializing every payload twice.
    """
    probed: set[type] = set()

    def probe(wire_job, job) -> None:
        kind = type(getattr(wire_job, "payload", wire_job))
        if kind in probed:
            return
        probed.add(kind)
        try:
            pickle.dumps(wire_job)
        except Exception as error:
            raise TypeError(
                f"sweep job {job.label!r} cannot be pickled for the process "
                f"backend ({error}); use picklable solver parameters and "
                "payloads, or backend='threads'"
            ) from error

    return probe


class ProcessBackend:
    """Fan chunks of jobs over a process pool — true multi-core sweeps.

    Jobs are sent in wire form (solver specs by registered name + params);
    each worker warms its own registry once and rebuilds fresh solvers per
    job, so no solver instance, closure or lock ever crosses the boundary.
    """

    name = "processes"

    def __init__(self, n_jobs: int | None = None, *, shm: bool | None = None) -> None:
        self.n_jobs = n_jobs
        #: ``True``/``False`` force the shared-memory job plane on or off;
        #: ``None`` defers to the ``REPRO_SHM`` environment variable.
        self.shm = shm

    def _job_plane(self) -> "ShmPlane | None":
        return ShmPlane() if shm_enabled(self.shm) else None

    def run(self, jobs, *, chunk_size=None, on_progress=None):
        chunk_size = _checked_chunk_size(chunk_size)
        plane = self._job_plane()
        try:
            wire_jobs = [job.to_wire(plane=plane) if plane is not None else job.to_wire() for job in jobs]
            if not wire_jobs:
                return []
            # Trial pickles before the pool spins up: sweep jobs share their
            # solver specs, so probing one job per distinct payload type gives
            # a clear early error for every job that could fail — without
            # serializing each payload twice.
            probe = _wire_probe()
            for wire_job, job in zip(wire_jobs, jobs):
                probe(wire_job, job)
            workers = _effective_workers(self.n_jobs, len(wire_jobs))
            size = chunk_size if chunk_size is not None else auto_chunk_size(len(wire_jobs), workers)
            chunks = _chunked(wire_jobs, size)
            if obs.is_enabled():
                for chunk in chunks:
                    obs.REGISTRY.inc("sweep_ipc_bytes_shipped_total", len(pickle.dumps(chunk)))
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(chunks)), initializer=_process_worker_init
                ) as pool:
                    per_chunk = _run_pool(
                        pool, chunks, len(wire_jobs), on_progress, runner=_process_runner()
                    )
            except BrokenProcessPool as error:
                raise RuntimeError(
                    "the process-backend worker pool died unexpectedly (a worker was "
                    "killed — out-of-memory, a segfault in an extension, or an "
                    "interpreter crash); re-run with backend='serial' to reproduce "
                    "the failure in-process"
                ) from error
        finally:
            if plane is not None:
                plane.close()
        return [records for chunk in per_chunk for records in chunk]

    def stream_chunks(self, chunks, *, on_chunk=None, max_pending=None):
        """Bounded-window streaming over a process pool (ordered yields).

        Each chunk is converted to wire form as it is pulled; one job per
        distinct payload type gets the same trial pickle as :meth:`run`, so
        an unpicklable payload anywhere in the stream fails with a clear
        TypeError instead of an opaque pool teardown.  With the shm plane
        on, each chunk's segments are released as soon as the chunk's
        results are back, keeping ``/dev/shm`` usage proportional to the
        in-flight window.
        """
        workers = _effective_workers(self.n_jobs, None)
        if max_pending is None:
            max_pending = workers * _CHUNKS_PER_WORKER
        plane = self._job_plane()
        pending_handles: dict = {}

        def wired(source):
            probe = _wire_probe()
            traced = obs.is_enabled()
            for tag, chunk in source:
                if plane is not None:
                    wire_chunk = [job.to_wire(plane=plane) for job in chunk]
                    pending_handles[tag] = [
                        job.payload for job in wire_chunk if _is_shm_handle(job)
                    ]
                else:
                    wire_chunk = [job.to_wire() for job in chunk]
                for wire_job, job in zip(wire_chunk, chunk):
                    probe(wire_job, job)
                if traced:
                    obs.REGISTRY.inc(
                        "sweep_ipc_bytes_shipped_total", len(pickle.dumps(wire_chunk))
                    )
                yield tag, wire_chunk

        def chunk_done(tag, count):
            if plane is not None:
                for handle in pending_handles.pop(tag, ()):
                    plane.release(handle)
            if on_chunk is not None:
                on_chunk(tag, count)

        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=_process_worker_init
            ) as pool:
                yield from _stream_pool(
                    pool, wired(chunks), _process_runner(), chunk_done, max_pending
                )
        except BrokenProcessPool as error:
            raise RuntimeError(
                "the process-backend worker pool died unexpectedly (a worker was "
                "killed — out-of-memory, a segfault in an extension, or an "
                "interpreter crash); re-run with backend='serial' to reproduce "
                "the failure in-process"
            ) from error
        finally:
            if plane is not None:
                plane.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessBackend(n_jobs={self.n_jobs!r})"


#: Accepted spellings per backend name.
_BACKEND_ALIASES: dict[str, type] = {
    "serial": SerialBackend,
    "sequential": SerialBackend,
    "threads": ThreadBackend,
    "thread": ThreadBackend,
    "threading": ThreadBackend,
    "processes": ProcessBackend,
    "process": ProcessBackend,
    "multiprocessing": ProcessBackend,
}


def resolve_backend(
    backend: "str | ExecutionBackend | None" = None,
    *,
    n_jobs: int | None = None,
) -> ExecutionBackend:
    """Pick the execution backend for a sweep.

    Precedence: an explicit ``backend`` (name or instance) wins, then the
    ``REPRO_BACKEND`` environment variable, then the historical default —
    threads when ``n_jobs`` requests parallelism, serial otherwise.
    ``n_jobs`` is forwarded to pool backends built here; an already-built
    backend instance keeps its own worker count.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or None
    if backend is None:
        if n_jobs is None or n_jobs == 1:
            return SerialBackend()
        return ThreadBackend(n_jobs)
    if isinstance(backend, str):
        try:
            cls = _BACKEND_ALIASES[backend.lower()]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {backend!r}; "
                f"choose from {sorted(set(_BACKEND_ALIASES))}"
            ) from None
        if cls is SerialBackend:
            return SerialBackend()
        return cls(n_jobs)
    if isinstance(backend, ExecutionBackend):
        return backend
    raise TypeError(
        f"backend must be a name or an ExecutionBackend, got {type(backend).__name__}"
    )
