"""Columnar result container for solver sweeps.

A :class:`ResultSet` stores one column per measurement field
(struct-of-arrays) instead of a flat ``list[RunRecord]``: grouping,
filtering and serialisation operate on whole columns, appending stays O(1)
per field, and the JSON/CSV exports are direct column dumps.  Row views are
still available — iterating a ``ResultSet`` yields :class:`RunRecord`
objects, so row-oriented callers keep working unchanged.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["RunRecord", "ResultSet"]


@dataclass(frozen=True)
class RunRecord:
    """One (trace, capacity, solver) measurement — the row view of a ResultSet.

    The three online columns (mean response time, mean stretch,
    time-averaged queue length) are populated by arrival-aware sweeps and
    stay ``nan`` for offline runs.  The two portfolio columns record what a
    portfolio solver actually executed: ``selected_solver`` is the member a
    race/selection run delegated to (empty for plain solvers) and
    ``cache_hit`` is 1.0/0.0 for cached runs (``nan`` when no cache was
    involved).  ``engine`` records the execution engine that produced the
    schedule (``"object"`` / ``"columnar"``, empty when the run bypassed
    the kernel).
    """

    application: str
    trace: str
    heuristic: str
    category: str
    capacity_factor: float
    capacity: float
    makespan: float
    omim: float
    ratio_to_optimal: float
    task_count: int
    mean_response_time: float = math.nan
    mean_stretch: float = math.nan
    avg_queue_length: float = math.nan
    selected_solver: str = ""
    cache_hit: float = math.nan
    engine: str = ""

    @property
    def key(self) -> tuple[str, float]:
        return (self.heuristic, self.capacity_factor)


#: Column order (matches the RunRecord fields).
COLUMNS: tuple[str, ...] = (
    "application",
    "trace",
    "heuristic",
    "category",
    "capacity_factor",
    "capacity",
    "makespan",
    "omim",
    "ratio_to_optimal",
    "task_count",
    "mean_response_time",
    "mean_stretch",
    "avg_queue_length",
    "selected_solver",
    "cache_hit",
    "engine",
)

#: Later-vintage columns may be absent from older dumps; loaders fill the
#: per-column default (``nan`` for measurements, ``""`` for labels).
_OPTIONAL_DEFAULTS: dict[str, object] = {
    # pre-streaming dumps (PR 3) lack the online measurement columns
    "mean_response_time": math.nan,
    "mean_stretch": math.nan,
    "avg_queue_length": math.nan,
    # pre-portfolio dumps (PR 4) lack the attribution columns
    "selected_solver": "",
    "cache_hit": math.nan,
    # pre-columnar dumps (PR 7) lack the engine column
    "engine": "",
}
_OPTIONAL_COLUMNS = frozenset(_OPTIONAL_DEFAULTS)

_FLOAT_COLUMNS = frozenset(
    {
        "capacity_factor",
        "capacity",
        "makespan",
        "omim",
        "ratio_to_optimal",
        "mean_response_time",
        "mean_stretch",
        "avg_queue_length",
        "cache_hit",
    }
)
_INT_COLUMNS = frozenset({"task_count"})

#: Named reducers accepted by :meth:`ResultSet.aggregate`.
_AGGREGATORS: dict[str, Callable[[Sequence[float]], float]] = {
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
    "mean": lambda values: sum(values) / len(values),
    "median": lambda values: _median(values),
}


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


#: Canonical NaN used as a grouping/filtering key, so the ``nan`` capacity
#: factor of ad-hoc runs stays one group even after JSON/CSV round-trips
#: (distinct NaN objects are never ``==`` and, since 3.10, hash by identity).
_NAN: float = float("nan")


def _canonical_key(value):
    if isinstance(value, float) and math.isnan(value):
        return _NAN
    return value


def _values_equal(a, b) -> bool:
    """Cell equality treating NaN as equal to NaN."""
    if isinstance(a, float) and isinstance(b, float) and math.isnan(a) and math.isnan(b):
        return True
    return a == b


class ResultSet:
    """Columnar collection of sweep measurements.

    Build one from records (``ResultSet(records)``), from columns
    (:meth:`from_columns`) or incrementally (:meth:`append` /
    :meth:`extend`); combine with ``+`` or :meth:`concat`.
    """

    __slots__ = ("_columns",)

    def __init__(self, records: Iterable[RunRecord] = ()) -> None:
        self._columns: dict[str, list] = {name: [] for name in COLUMNS}
        self.extend(records)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "ResultSet":
        return cls(records)

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence]) -> "ResultSet":
        """Build from a ``{column: values}`` mapping (validated).

        The online and portfolio columns are optional — dumps written
        before those runtimes lack them and load with their defaults
        (``nan`` fills for measurements, ``""`` for ``selected_solver``).
        """
        missing = set(COLUMNS) - set(columns) - _OPTIONAL_COLUMNS
        extra = set(columns) - set(COLUMNS)
        if missing or extra:
            raise ValueError(
                f"bad column set: missing {sorted(missing)}, unexpected {sorted(extra)}"
            )
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        count = next(iter(lengths.values()), 0)
        result = cls()
        for name in COLUMNS:
            if name in columns:
                result._columns[name] = list(columns[name])
            else:
                result._columns[name] = [_OPTIONAL_DEFAULTS[name]] * count
        return result

    @classmethod
    def coerce(cls, records: "ResultSet | Iterable[RunRecord]") -> "ResultSet":
        """Pass a ResultSet through; wrap any record iterable."""
        if isinstance(records, cls):
            return records
        return cls(records)

    @classmethod
    def concat(cls, parts: Iterable["ResultSet | Iterable[RunRecord]"]) -> "ResultSet":
        result = cls()
        for part in parts:
            result.extend(part)
        return result

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append(self, record: RunRecord) -> None:
        for name in COLUMNS:
            self._columns[name].append(getattr(record, name))

    def extend(self, records: "ResultSet | Iterable[RunRecord]") -> None:
        if isinstance(records, ResultSet):
            for name in COLUMNS:
                self._columns[name].extend(records._columns[name])
            return
        for record in records:
            self.append(record)

    def __add__(self, other: "ResultSet") -> "ResultSet":
        result = ResultSet()
        result.extend(self)
        result.extend(other)
        return result

    # ------------------------------------------------------------------ #
    # Row / column access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._columns["heuristic"])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index: int) -> RunRecord:
        return RunRecord(**{name: self._columns[name][index] for name in COLUMNS})

    def __iter__(self) -> Iterator[RunRecord]:
        for index in range(len(self)):
            yield self[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(
            _values_equal(a, b)
            for name in COLUMNS
            for a, b in zip(self._columns[name], other._columns[name])
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        solvers = sorted(set(self._columns["heuristic"]))
        return f"ResultSet({len(self)} rows, solvers={solvers})"

    def column(self, name: str) -> tuple:
        """One column as an immutable tuple."""
        try:
            return tuple(self._columns[name])
        except KeyError:
            raise KeyError(f"unknown column {name!r}; columns: {COLUMNS}") from None

    def to_columns(self) -> dict[str, list]:
        """A deep-enough copy of the column store (lists are copied)."""
        return {name: list(values) for name, values in self._columns.items()}

    def to_records(self) -> list[RunRecord]:
        return list(self)

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #
    def filter(
        self,
        predicate: Callable[[RunRecord], bool] | None = None,
        **equalities,
    ) -> "ResultSet":
        """Rows matching ``predicate`` and/or exact column values.

        ``rs.filter(heuristic="OS", capacity_factor=1.0)`` selects on columns
        without materialising rows; a callable predicate receives the
        :class:`RunRecord` row view.
        """
        for name in equalities:
            if name not in COLUMNS:
                raise KeyError(f"unknown column {name!r}; columns: {COLUMNS}")
        keep = []
        for index in range(len(self)):
            if any(
                not _values_equal(self._columns[name][index], wanted)
                for name, wanted in equalities.items()
            ):
                continue
            if predicate is not None and not predicate(self[index]):
                continue
            keep.append(index)
        result = ResultSet()
        for name in COLUMNS:
            values = self._columns[name]
            result._columns[name] = [values[i] for i in keep]
        return result

    def group_by(self, *keys: str) -> dict:
        """Split into sub-ResultSets by the given column(s).

        Returns ``{value: ResultSet}`` for a single key and
        ``{(v1, v2, ...): ResultSet}`` for several, preserving first-seen
        order of the groups.
        """
        if not keys:
            raise ValueError("group_by needs at least one column name")
        for name in keys:
            if name not in COLUMNS:
                raise KeyError(f"unknown column {name!r}; columns: {COLUMNS}")
        indices: dict[object, list[int]] = {}
        key_columns = [self._columns[name] for name in keys]
        for index in range(len(self)):
            value = (
                _canonical_key(key_columns[0][index])
                if len(keys) == 1
                else tuple(_canonical_key(column[index]) for column in key_columns)
            )
            indices.setdefault(value, []).append(index)
        groups: dict[object, ResultSet] = {}
        for value, rows in indices.items():
            subset = ResultSet()
            for name in COLUMNS:
                values = self._columns[name]
                subset._columns[name] = [values[i] for i in rows]
            groups[value] = subset
        return groups

    def aggregate(
        self,
        column: str = "ratio_to_optimal",
        *,
        by: Sequence[str] = ("capacity_factor", "heuristic"),
        how: str | Callable[[Sequence[float]], float] = "median",
    ) -> dict:
        """Reduce ``column`` per group: ``{group key: aggregated value}``.

        ``how`` is one of ``min/max/sum/count/mean/median`` or any callable
        taking the grouped values.
        """
        if isinstance(how, str):
            try:
                reducer = _AGGREGATORS[how]
            except KeyError:
                raise ValueError(
                    f"unknown aggregator {how!r}; choose from {sorted(_AGGREGATORS)} "
                    "or pass a callable"
                ) from None
        else:
            reducer = how
        return {
            key: reducer(group._columns[column] if column in COLUMNS else group.column(column))
            for key, group in self.group_by(*by).items()
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_json(self, path: str | os.PathLike | None = None, *, indent: int | None = None) -> str:
        """Serialise to a JSON column dump (optionally written to ``path``).

        Non-finite floats (the ``nan`` capacity factor of ad-hoc runs,
        infinite capacities) are encoded as strings and restored by
        :meth:`from_json`.
        """
        payload = {
            "format": "repro.ResultSet",
            "version": 1,
            "columns": {
                name: [_encode_float(v) for v in values]
                if name in _FLOAT_COLUMNS
                else list(values)
                for name, values in self._columns.items()
            },
        }
        text = json.dumps(payload, indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_json(cls, source: str | os.PathLike) -> "ResultSet":
        """Load from a JSON string or a path produced by :meth:`to_json`."""
        text = _read_source(source)
        payload = json.loads(text)
        if not isinstance(payload, dict) or "columns" not in payload:
            raise ValueError("not a ResultSet JSON dump (missing 'columns')")
        columns = {
            name: [_decode_float(v) for v in values] if name in _FLOAT_COLUMNS else list(values)
            for name, values in payload["columns"].items()
        }
        return cls.from_columns(columns)

    def to_csv(self, path: str | os.PathLike | None = None) -> str:
        """Serialise to CSV with a header row (optionally written to ``path``)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(COLUMNS)
        for index in range(len(self)):
            writer.writerow([self._columns[name][index] for name in COLUMNS])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_csv(cls, source: str | os.PathLike) -> "ResultSet":
        """Load from a CSV string or a path produced by :meth:`to_csv`."""
        text = _read_source(source)
        rows = list(csv.reader(io.StringIO(text)))
        if not rows:
            return cls()
        header = tuple(rows[0])
        unknown = set(header) - set(COLUMNS)
        missing = set(COLUMNS) - set(header) - _OPTIONAL_COLUMNS
        if unknown or missing:
            raise ValueError(f"bad CSV header {header}; expected columns {COLUMNS}")
        columns: dict[str, list] = {name: [] for name in header}
        for row in rows[1:]:
            if not row:
                continue
            for name, cell in zip(header, row):
                if name in _FLOAT_COLUMNS:
                    columns[name].append(float(cell))
                elif name in _INT_COLUMNS:
                    columns[name].append(int(cell))
                else:
                    columns[name].append(cell)
        return cls.from_columns(columns)


def _encode_float(value: float):
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)  # "nan", "inf", "-inf"
    return value


def _decode_float(value) -> float:
    return float(value)


def _read_source(source: str | os.PathLike) -> str:
    """A JSON/CSV payload passed directly, or the content of a file path."""
    if isinstance(source, os.PathLike):
        with open(source, encoding="utf-8") as handle:
            return handle.read()
    text = str(source)
    stripped = text.lstrip()
    looks_like_payload = stripped.startswith(("{", "[")) or "\n" in text or "," in text
    if not looks_like_payload and os.path.exists(text):
        with open(text, encoding="utf-8") as handle:
            return handle.read()
    return text
