"""Columnar result container for solver sweeps.

A :class:`ResultSet` stores one column per measurement field
(struct-of-arrays) instead of a flat ``list[RunRecord]``: grouping,
filtering and serialisation operate on whole columns, appending stays O(1)
per field, and the JSON/CSV exports are direct column dumps.  Row views are
still available — iterating a ``ResultSet`` yields :class:`RunRecord`
objects, so row-oriented callers keep working unchanged.

For sweeps too large to hold in RAM there is an append-only JSONL *spill*
format (one row object per line, floats encoded exactly):
:meth:`ResultSet.open_spill` returns a :class:`SpilledResultSet` that writes
every appended row straight to disk and keeps only a bounded in-memory tail;
:meth:`ResultSet.from_jsonl` loads a spill back, byte-identical to the
in-memory results it mirrors.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from array import array
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = ["RunRecord", "ResultSet", "SpilledResultSet"]


@dataclass(frozen=True)
class RunRecord:
    """One (trace, capacity, solver) measurement — the row view of a ResultSet.

    The three online columns (mean response time, mean stretch,
    time-averaged queue length) are populated by arrival-aware sweeps and
    stay ``nan`` for offline runs.  The two portfolio columns record what a
    portfolio solver actually executed: ``selected_solver`` is the member a
    race/selection run delegated to (empty for plain solvers) and
    ``cache_hit`` is 1.0/0.0 for cached runs (``nan`` when no cache was
    involved).  ``engine`` records the execution engine that produced the
    schedule (``"object"`` / ``"columnar"``, empty when the run bypassed
    the kernel).
    """

    application: str
    trace: str
    heuristic: str
    category: str
    capacity_factor: float
    capacity: float
    makespan: float
    omim: float
    ratio_to_optimal: float
    task_count: int
    mean_response_time: float = math.nan
    mean_stretch: float = math.nan
    avg_queue_length: float = math.nan
    selected_solver: str = ""
    cache_hit: float = math.nan
    engine: str = ""
    kernel_events: int = 0
    memory_wait_s: float = math.nan

    @property
    def key(self) -> tuple[str, float]:
        return (self.heuristic, self.capacity_factor)


#: Column order (matches the RunRecord fields).
COLUMNS: tuple[str, ...] = (
    "application",
    "trace",
    "heuristic",
    "category",
    "capacity_factor",
    "capacity",
    "makespan",
    "omim",
    "ratio_to_optimal",
    "task_count",
    "mean_response_time",
    "mean_stretch",
    "avg_queue_length",
    "selected_solver",
    "cache_hit",
    "engine",
    "kernel_events",
    "memory_wait_s",
)

#: Later-vintage columns may be absent from older dumps; loaders fill the
#: per-column default (``nan`` for measurements, ``""`` for labels).
_OPTIONAL_DEFAULTS: dict[str, object] = {
    # pre-streaming dumps (PR 3) lack the online measurement columns
    "mean_response_time": math.nan,
    "mean_stretch": math.nan,
    "avg_queue_length": math.nan,
    # pre-portfolio dumps (PR 4) lack the attribution columns
    "selected_solver": "",
    "cache_hit": math.nan,
    # pre-columnar dumps (PR 7) lack the engine column
    "engine": "",
    # pre-observability dumps (PR 9) lack the kernel-profiling columns
    "kernel_events": 0,
    "memory_wait_s": math.nan,
}
_OPTIONAL_COLUMNS = frozenset(_OPTIONAL_DEFAULTS)

_FLOAT_COLUMNS = frozenset(
    {
        "capacity_factor",
        "capacity",
        "makespan",
        "omim",
        "ratio_to_optimal",
        "mean_response_time",
        "mean_stretch",
        "avg_queue_length",
        "cache_hit",
        "memory_wait_s",
    }
)
_INT_COLUMNS = frozenset({"task_count", "kernel_events"})

#: Named reducers accepted by :meth:`ResultSet.aggregate`.
_AGGREGATORS: dict[str, Callable[[Sequence[float]], float]] = {
    "min": min,
    "max": max,
    "sum": sum,
    "count": len,
    "mean": lambda values: sum(values) / len(values),
    "median": lambda values: _median(values),
}


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


#: Canonical NaN used as a grouping/filtering key, so the ``nan`` capacity
#: factor of ad-hoc runs stays one group even after JSON/CSV round-trips
#: (distinct NaN objects are never ``==`` and, since 3.10, hash by identity).
_NAN: float = float("nan")


def _canonical_key(value):
    if isinstance(value, float) and math.isnan(value):
        return _NAN
    return value


def _values_equal(a, b) -> bool:
    """Cell equality treating NaN as equal to NaN."""
    if isinstance(a, float) and isinstance(b, float) and math.isnan(a) and math.isnan(b):
        return True
    return a == b


class ResultSet:
    """Columnar collection of sweep measurements.

    Build one from records (``ResultSet(records)``), from columns
    (:meth:`from_columns`) or incrementally (:meth:`append` /
    :meth:`extend`); combine with ``+`` or :meth:`concat`.
    """

    __slots__ = ("_columns",)

    #: Whether ``_columns`` holds *every* row.  :class:`SpilledResultSet`
    #: keeps only a bounded tail in memory and sets this to False, which
    #: routes column-level fast paths through row streaming instead.
    _complete = True

    def __init__(self, records: Iterable[RunRecord] = ()) -> None:
        self._columns: dict[str, list] = {name: [] for name in COLUMNS}
        self.extend(records)

    def _materialized(self) -> "ResultSet":
        """Self, with every row present in the in-memory column store."""
        return self

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(cls, records: Iterable[RunRecord]) -> "ResultSet":
        return cls(records)

    @classmethod
    def from_columns(cls, columns: Mapping[str, Sequence]) -> "ResultSet":
        """Build from a ``{column: values}`` mapping (validated).

        The online and portfolio columns are optional — dumps written
        before those runtimes lack them and load with their defaults
        (``nan`` fills for measurements, ``""`` for ``selected_solver``).
        """
        missing = set(COLUMNS) - set(columns) - _OPTIONAL_COLUMNS
        extra = set(columns) - set(COLUMNS)
        if missing or extra:
            raise ValueError(
                f"bad column set: missing {sorted(missing)}, unexpected {sorted(extra)}"
            )
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        count = next(iter(lengths.values()), 0)
        result = cls()
        for name in COLUMNS:
            if name in columns:
                result._columns[name] = list(columns[name])
            else:
                result._columns[name] = [_OPTIONAL_DEFAULTS[name]] * count
        return result

    @classmethod
    def coerce(cls, records: "ResultSet | Iterable[RunRecord]") -> "ResultSet":
        """Pass a ResultSet through; wrap any record iterable."""
        if isinstance(records, cls):
            return records
        return cls(records)

    @classmethod
    def concat(cls, parts: Iterable["ResultSet | Iterable[RunRecord]"]) -> "ResultSet":
        result = cls()
        for part in parts:
            result.extend(part)
        return result

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def append(self, record: RunRecord) -> None:
        for name in COLUMNS:
            self._columns[name].append(getattr(record, name))

    def extend(self, records: "ResultSet | Iterable[RunRecord]") -> None:
        if isinstance(records, ResultSet) and records._complete:
            for name in COLUMNS:
                self._columns[name].extend(records._columns[name])
            return
        # Row-at-a-time fallback: also streams SpilledResultSets from disk
        # without materialising their full column store.
        for record in records:
            self.append(record)

    def __add__(self, other: "ResultSet") -> "ResultSet":
        result = ResultSet()
        result.extend(self)
        result.extend(other)
        return result

    # ------------------------------------------------------------------ #
    # Row / column access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._columns["heuristic"])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index: int) -> RunRecord:
        return RunRecord(**{name: self._columns[name][index] for name in COLUMNS})

    def __iter__(self) -> Iterator[RunRecord]:
        for index in range(len(self)):
            yield self[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        if len(self) != len(other):
            return False
        left, right = self._materialized(), other._materialized()
        return all(
            _values_equal(a, b)
            for name in COLUMNS
            for a, b in zip(left._columns[name], right._columns[name])
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        solvers = sorted(set(self._columns["heuristic"]))
        return f"ResultSet({len(self)} rows, solvers={solvers})"

    def column(self, name: str) -> tuple:
        """One column as an immutable tuple."""
        try:
            return tuple(self._columns[name])
        except KeyError:
            raise KeyError(f"unknown column {name!r}; columns: {COLUMNS}") from None

    def to_columns(self) -> dict[str, list]:
        """A deep-enough copy of the column store (lists are copied)."""
        return {name: list(values) for name, values in self._columns.items()}

    def to_records(self) -> list[RunRecord]:
        return list(self)

    # ------------------------------------------------------------------ #
    # Relational operations
    # ------------------------------------------------------------------ #
    def filter(
        self,
        predicate: Callable[[RunRecord], bool] | None = None,
        **equalities,
    ) -> "ResultSet":
        """Rows matching ``predicate`` and/or exact column values.

        ``rs.filter(heuristic="OS", capacity_factor=1.0)`` selects on columns
        without materialising rows; a callable predicate receives the
        :class:`RunRecord` row view.
        """
        for name in equalities:
            if name not in COLUMNS:
                raise KeyError(f"unknown column {name!r}; columns: {COLUMNS}")
        keep = []
        for index in range(len(self)):
            if any(
                not _values_equal(self._columns[name][index], wanted)
                for name, wanted in equalities.items()
            ):
                continue
            if predicate is not None and not predicate(self[index]):
                continue
            keep.append(index)
        result = ResultSet()
        for name in COLUMNS:
            values = self._columns[name]
            result._columns[name] = [values[i] for i in keep]
        return result

    def group_by(self, *keys: str) -> dict:
        """Split into sub-ResultSets by the given column(s).

        Returns ``{value: ResultSet}`` for a single key and
        ``{(v1, v2, ...): ResultSet}`` for several, preserving first-seen
        order of the groups.
        """
        if not keys:
            raise ValueError("group_by needs at least one column name")
        for name in keys:
            if name not in COLUMNS:
                raise KeyError(f"unknown column {name!r}; columns: {COLUMNS}")
        indices: dict[object, list[int]] = {}
        key_columns = [self._columns[name] for name in keys]
        for index in range(len(self)):
            value = (
                _canonical_key(key_columns[0][index])
                if len(keys) == 1
                else tuple(_canonical_key(column[index]) for column in key_columns)
            )
            indices.setdefault(value, []).append(index)
        groups: dict[object, ResultSet] = {}
        for value, rows in indices.items():
            subset = ResultSet()
            for name in COLUMNS:
                values = self._columns[name]
                subset._columns[name] = [values[i] for i in rows]
            groups[value] = subset
        return groups

    def aggregate(
        self,
        column: str = "ratio_to_optimal",
        *,
        by: Sequence[str] = ("capacity_factor", "heuristic"),
        how: str | Callable[[Sequence[float]], float] = "median",
    ) -> dict:
        """Reduce ``column`` per group: ``{group key: aggregated value}``.

        ``how`` is one of ``min/max/sum/count/mean/median`` or any callable
        taking the grouped values.
        """
        if isinstance(how, str):
            try:
                reducer = _AGGREGATORS[how]
            except KeyError:
                raise ValueError(
                    f"unknown aggregator {how!r}; choose from {sorted(_AGGREGATORS)} "
                    "or pass a callable"
                ) from None
        else:
            reducer = how
        return {
            key: reducer(group._columns[column] if column in COLUMNS else group.column(column))
            for key, group in self.group_by(*by).items()
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_json(self, path: str | os.PathLike | None = None, *, indent: int | None = None) -> str:
        """Serialise to a JSON column dump (optionally written to ``path``).

        Non-finite floats (the ``nan`` capacity factor of ad-hoc runs,
        infinite capacities) are encoded as strings and restored by
        :meth:`from_json`.
        """
        payload = {
            "format": "repro.ResultSet",
            "version": 1,
            "columns": {
                name: [_encode_float(v) for v in values]
                if name in _FLOAT_COLUMNS
                else list(values)
                for name, values in self._columns.items()
            },
        }
        text = json.dumps(payload, indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_json(cls, source: str | os.PathLike) -> "ResultSet":
        """Load from a JSON string or a path produced by :meth:`to_json`."""
        text = _read_source(source)
        payload = json.loads(text)
        if not isinstance(payload, dict) or "columns" not in payload:
            raise ValueError("not a ResultSet JSON dump (missing 'columns')")
        columns = {
            name: [_decode_float(v) for v in values] if name in _FLOAT_COLUMNS else list(values)
            for name, values in payload["columns"].items()
        }
        return cls.from_columns(columns)

    def to_csv(self, path: str | os.PathLike | None = None) -> str:
        """Serialise to CSV with a header row (optionally written to ``path``)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(COLUMNS)
        for index in range(len(self)):
            writer.writerow([self._columns[name][index] for name in COLUMNS])
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_csv(cls, source: str | os.PathLike) -> "ResultSet":
        """Load from a CSV string or a path produced by :meth:`to_csv`."""
        text = _read_source(source)
        rows = list(csv.reader(io.StringIO(text)))
        if not rows:
            return cls()
        header = tuple(rows[0])
        unknown = set(header) - set(COLUMNS)
        missing = set(COLUMNS) - set(header) - _OPTIONAL_COLUMNS
        if unknown or missing:
            raise ValueError(f"bad CSV header {header}; expected columns {COLUMNS}")
        columns: dict[str, list] = {name: [] for name in header}
        for row in rows[1:]:
            if not row:
                continue
            for name, cell in zip(header, row):
                if name in _FLOAT_COLUMNS:
                    columns[name].append(float(cell))
                elif name in _INT_COLUMNS:
                    columns[name].append(int(cell))
                else:
                    columns[name].append(cell)
        return cls.from_columns(columns)

    # ------------------------------------------------------------------ #
    # JSONL spill format
    # ------------------------------------------------------------------ #
    def to_jsonl(self, path: str | os.PathLike | None = None) -> str:
        """Serialise as JSONL — one row object per line, floats exact.

        This is the *spill* format: append-only, streamable, and
        byte-identical to the in-memory results after a round-trip through
        :meth:`from_jsonl` (non-finite floats are encoded as strings, like
        :meth:`to_json`).
        """
        lines = [encode_record_line(self[index]) for index in range(len(self))]
        text = "".join(lines)
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="\n") as handle:
                handle.write(text)
        return text

    @classmethod
    def from_jsonl(cls, source: str | os.PathLike) -> "ResultSet":
        """Load a JSONL spill (string or path) back into memory."""
        result = cls()
        for record in cls.iter_jsonl(source):
            result.append(record)
        return result

    @classmethod
    def iter_jsonl(cls, source: str | os.PathLike) -> Iterator[RunRecord]:
        """Stream the rows of a JSONL spill without materialising them all."""
        if isinstance(source, os.PathLike) or (
            isinstance(source, str) and "\n" not in source and not source.lstrip().startswith("{")
        ):
            with open(source, encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        yield decode_record_line(line)
            return
        for line in io.StringIO(str(source)):
            if line.strip():
                yield decode_record_line(line)

    @classmethod
    def open_spill(
        cls,
        path: str | os.PathLike,
        *,
        window: int = 2048,
        resume: bool = False,
    ) -> "SpilledResultSet":
        """Open an append-only JSONL spill with a bounded in-memory window.

        Every appended row is written straight to ``path``; only the most
        recent ``window`` rows stay in RAM.  ``resume=True`` reopens an
        existing spill and appends after its last row.  The returned
        :class:`SpilledResultSet` supports the full ResultSet API —
        iteration and ``column()`` stream from disk, relational operations
        materialise transiently.
        """
        return SpilledResultSet(path, window=window, resume=resume)


def encode_record_line(record: RunRecord) -> str:
    """One spill line: a compact JSON object in column order, trailing newline."""
    payload = {
        name: _encode_float(getattr(record, name)) if name in _FLOAT_COLUMNS else getattr(record, name)
        for name in COLUMNS
    }
    return json.dumps(payload, separators=(",", ":")) + "\n"


def decode_record_line(line: str) -> RunRecord:
    """Parse one spill line back into a :class:`RunRecord`.

    Columns absent from older spills load with their defaults, mirroring
    :meth:`ResultSet.from_columns`.
    """
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError(f"not a ResultSet spill line: {line!r}")
    values: dict[str, object] = {}
    for name in COLUMNS:
        if name in payload:
            cell = payload[name]
            values[name] = _decode_float(cell) if name in _FLOAT_COLUMNS else cell
        elif name in _OPTIONAL_DEFAULTS:
            values[name] = _OPTIONAL_DEFAULTS[name]
        else:
            raise ValueError(f"spill line missing required column {name!r}: {line!r}")
    return RunRecord(**values)  # type: ignore[arg-type]


def _encode_float(value: float):
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)  # "nan", "inf", "-inf"
    return value


def _decode_float(value) -> float:
    return float(value)


def _read_source(source: str | os.PathLike) -> str:
    """A JSON/CSV payload passed directly, or the content of a file path."""
    if isinstance(source, os.PathLike):
        with open(source, encoding="utf-8") as handle:
            return handle.read()
    text = str(source)
    stripped = text.lstrip()
    looks_like_payload = stripped.startswith(("{", "[")) or "\n" in text or "," in text
    if not looks_like_payload and os.path.exists(text):
        with open(text, encoding="utf-8") as handle:
            return handle.read()
    return text


class SpilledResultSet(ResultSet):
    """A ResultSet whose rows live in an append-only JSONL spill file.

    Appends write straight to disk; only the most recent ``window`` rows
    stay in the in-memory column store, so a sweep producing millions of
    rows holds a bounded working set.  ``len``/``[]``/iteration and
    :meth:`column` stream from the file; relational operations
    (``filter``/``group_by``/``aggregate``), the JSON/CSV exports and
    equality materialise the rows transiently via :meth:`result_set`.

    Built by :meth:`ResultSet.open_spill`; load one back (possibly on
    another host) with :meth:`ResultSet.from_jsonl`.
    """

    __slots__ = (
        "_path",
        "_handle",
        "_window",
        "_count",
        "_offsets",
        "_tell",
        "_temporary",
        "_pending_rows",
        "_pending_bytes",
    )

    _complete = False

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        window: int = 2048,
        resume: bool = False,
        temporary: bool = False,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window!r}")
        super().__init__()
        self._path = os.fspath(path)
        self._window = int(window)
        self._count = 0
        self._offsets = array("q")  # byte offset of each row line (O(1) seeks)
        self._tell = 0
        self._temporary = bool(temporary)
        if resume and os.path.exists(self._path):
            with open(self._path, encoding="utf-8") as handle:
                offset = 0
                for line in handle:
                    if line.strip():
                        self._offsets.append(offset)
                        self._count += 1
                    offset += len(line.encode("utf-8"))
                self._tell = offset
        self._handle = open(  # noqa: SIM115 - lifetime spans the object
            self._path, "a" if resume else "w", encoding="utf-8", newline="\n"
        )
        if not resume:
            self._tell = 0
        # Spill activity is pushed to the obs registry in flush()/close()
        # (once per merged chunk) instead of taking the registry lock per row.
        self._pending_rows = 0
        self._pending_bytes = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        """The spill file backing this result set."""
        return self._path

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append(self, record: RunRecord) -> None:
        if self._handle is None:
            raise ValueError(f"spill {self._path!r} is closed")
        line = encode_record_line(record)
        self._handle.write(line)
        self._offsets.append(self._tell)
        line_bytes = len(line.encode("utf-8"))
        self._tell += line_bytes
        self._count += 1
        self._pending_rows += 1
        self._pending_bytes += line_bytes
        for name in COLUMNS:
            self._columns[name].append(getattr(record, name))
        # Trim the window in blocks: del of a slice is O(window), so doing
        # it every ``window`` appends keeps the amortised cost O(1)/row.
        tail = self._columns["heuristic"]
        if len(tail) >= 2 * self._window:
            drop = len(tail) - self._window
            for name in COLUMNS:
                del self._columns[name][:drop]

    def extend(self, records: "ResultSet | Iterable[RunRecord]") -> None:
        for record in records:
            self.append(record)

    def _publish_spill_metrics(self) -> None:
        if self._pending_rows:
            from ..obs import REGISTRY, is_enabled, now, record_span

            REGISTRY.inc("spill_rows_total", self._pending_rows)
            REGISTRY.inc("spill_bytes_total", self._pending_bytes)
            if is_enabled():
                at = now()
                record_span(
                    "spill.flush", at, at, rows=self._pending_rows, bytes=self._pending_bytes
                )
            self._pending_rows = 0
            self._pending_bytes = 0

    def flush(self) -> None:
        """Push buffered rows to the OS (one call per merged sweep chunk)."""
        if self._handle is not None:
            self._handle.flush()
            self._publish_spill_metrics()

    def close(self) -> None:
        """Flush and close the spill; the file stays on disk for loading."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
            self._publish_spill_metrics()

    def __enter__(self) -> "SpilledResultSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
            if self._temporary and os.path.exists(self._path):
                os.unlink(self._path)
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Reading (streams from disk)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: int) -> RunRecord:
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        in_window = self._count - len(self._columns["heuristic"])
        if index >= in_window:
            offset = index - in_window
            return RunRecord(**{name: self._columns[name][offset] for name in COLUMNS})
        self.flush()
        with open(self._path, encoding="utf-8") as handle:
            handle.seek(self._offsets[index])
            return decode_record_line(handle.readline())

    def __iter__(self) -> Iterator[RunRecord]:
        self.flush()
        with open(self._path, encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    yield decode_record_line(line)

    def column(self, name: str) -> tuple:
        if name not in COLUMNS:
            raise KeyError(f"unknown column {name!r}; columns: {COLUMNS}")
        return tuple(getattr(record, name) for record in self)

    def result_set(self) -> ResultSet:
        """The full rows as a plain in-memory :class:`ResultSet`."""
        self.flush()
        return ResultSet.from_jsonl(self._path)

    def _materialized(self) -> ResultSet:
        return self.result_set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpilledResultSet({self._count} rows, path={self._path!r})"

    # Relational operations and whole-set exports materialise transiently:
    # the spill bounds memory while *producing* rows; analysing them loads
    # the file once (stream with __iter__/iter_jsonl to avoid even that).
    def filter(self, predicate=None, **equalities):
        return self.result_set().filter(predicate, **equalities)

    def group_by(self, *keys):
        return self.result_set().group_by(*keys)

    def aggregate(self, column="ratio_to_optimal", **kwargs):
        return self.result_set().aggregate(column, **kwargs)

    def to_columns(self):
        return self.result_set().to_columns()

    def to_records(self):
        return list(self)

    def to_json(self, path=None, *, indent=None):
        return self.result_set().to_json(path, indent=indent)

    def to_csv(self, path=None):
        return self.result_set().to_csv(path)

    def to_jsonl(self, path=None):
        self.flush()
        with open(self._path, encoding="utf-8") as handle:
            text = handle.read()
        if path is not None:
            with open(path, "w", encoding="utf-8", newline="\n") as handle:
                handle.write(text)
        return text

    def __add__(self, other: ResultSet) -> ResultSet:
        result = ResultSet()
        result.extend(self)
        result.extend(other)
        return result
