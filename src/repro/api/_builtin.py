"""Built-in solver registrations.

Imported lazily by :mod:`repro.api.registry` on first registry access, so
the registry module itself carries no import-time dependency on the
heuristic/MILP layers (and no import cycle with :mod:`repro.heuristics`).

Canonical names are the paper acronyms; every solver also answers to its
class name and a handful of descriptive aliases.
"""

from __future__ import annotations

from ..heuristics.base import Category
from ..heuristics.baselines import BinPackingFirstFit, ExactNoWait, GilmoreGomory
from ..heuristics.corrected import (
    CorrectedLargestCommunication,
    CorrectedMaximumAcceleration,
    CorrectedSmallestCommunication,
)
from ..heuristics.dynamic import (
    LargestCommunicationFirst,
    MaximumAccelerationFirst,
    SmallestCommunicationFirst,
)
from ..heuristics.static import (
    DecreasingCommPlusComp,
    DecreasingComputation,
    IncreasingCommPlusComp,
    IncreasingCommunication,
    OptimalOrderInfiniteMemory,
    OrderOfSubmission,
)
from ..milp.iterative import IterativeMilpHeuristic
from .registry import register_solver

#: (class, extra aliases) for the fourteen paper heuristics, in figure order.
_PAPER_HEURISTICS = (
    (OrderOfSubmission, ("SUBMISSION-ORDER", "FIFO")),
    (GilmoreGomory, ("GILMORE-GOMORY",)),
    (BinPackingFirstFit, ("BIN-PACKING", "FIRST-FIT")),
    (OptimalOrderInfiniteMemory, ("JOHNSON",)),
    (IncreasingCommunication, ("INCREASING-COMM",)),
    (DecreasingComputation, ("DECREASING-COMP",)),
    (IncreasingCommPlusComp, ("INCREASING-COMM-PLUS-COMP",)),
    (DecreasingCommPlusComp, ("DECREASING-COMM-PLUS-COMP",)),
    (LargestCommunicationFirst, ("LARGEST-COMM-FIRST",)),
    (SmallestCommunicationFirst, ("SMALLEST-COMM-FIRST",)),
    (MaximumAccelerationFirst, ("MAX-ACCELERATION-FIRST",)),
    (CorrectedLargestCommunication, ("CORRECTED-LARGEST-COMM",)),
    (CorrectedSmallestCommunication, ("CORRECTED-SMALLEST-COMM",)),
    (CorrectedMaximumAcceleration, ("CORRECTED-MAX-ACCELERATION",)),
)

for _cls, _extra in _PAPER_HEURISTICS:
    register_solver(aliases=(_cls.__name__.upper(), *_extra))(_cls)

register_solver(aliases=("EXACTNOWAIT", "GG-EXACT", "NOWAIT-EXACT"))(ExactNoWait)

#: The windowed MILP family of Figure 7 (lp.3 .. lp.6); ``lp.4`` is the
#: paper's headline window and doubles as the generic "MILP" solver.
_MILP_WINDOWS = (3, 4, 5, 6)


def _milp_factory(window: int):
    def factory(**params) -> IterativeMilpHeuristic:
        return IterativeMilpHeuristic(window=window, **params)

    return factory


for _window in _MILP_WINDOWS:
    register_solver(
        f"lp.{_window}",
        category=Category.MILP,
        aliases=("MILP", "LP") if _window == 4 else (),
        description=(
            "Mixed-integer program solved over successive windows of "
            f"{_window} tasks of the submission order."
        ),
        favorable_situation="Very small task batches, where the window covers the whole problem.",
    )(_milp_factory(_window))


# --------------------------------------------------------------------- #
# Portfolio layer: racing, Table 6 selection, persistent caching
# --------------------------------------------------------------------- #
def _race_factory(**params):
    from ..portfolio.race import PortfolioSolver

    return PortfolioSolver(**params)


def _select_factory(**params):
    from ..portfolio.selector import SelectingSolver

    return SelectingSolver(**params)


def _cached_factory(**params):
    from ..portfolio.cache import CachedSolver

    return CachedSolver(**params)


register_solver(
    "portfolio.race",
    category=Category.PORTFOLIO,
    aliases=("RACE", "PORTFOLIO"),
    description=(
        "Race K member solvers concurrently with incumbent/lower-bound "
        "pruning and keep the virtual-best schedule."
    ),
    favorable_situation="Unknown or shifting regimes: hedge across the members' situations.",
)(_race_factory)

register_solver(
    "portfolio.select",
    category=Category.PORTFOLIO,
    aliases=("SELECT", "TABLE6"),
    description=(
        "Featurize the instance and run the single heuristic whose Table 6 "
        "favorable situation matches its regime."
    ),
    favorable_situation="Any regime Table 6 describes, at single-solver cost.",
)(_select_factory)

register_solver(
    "portfolio.cached",
    category=Category.PORTFOLIO,
    aliases=("CACHED",),
    description=(
        "Serve repeated solves of the same canonical instance from a "
        "persistent content-addressed schedule cache."
    ),
    favorable_situation="Repeated traffic over recurring instances (sweeps, services).",
)(_cached_factory)
