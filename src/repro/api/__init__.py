"""Unified solver facade: registry, ``solve()``/``Study`` entry points,
columnar :class:`ResultSet` and parallel sweeps.

This package is the single public API surface over the three scheduling
layers of the reproduction — the paper heuristics, the exact flowshop
methods and the MILP — which previously had to be wired together by hand.

* :func:`solve` — one instance, one solver, schedule + metrics;
* :class:`Study` — fluent builder for multi-trace, multi-capacity,
  multi-solver sweeps, optionally parallel;
* :class:`ResultSet` — columnar measurements with
  ``filter/group_by/aggregate`` and JSON/CSV round-trips;
* :func:`register_solver` — decorator adding third-party strategies to the
  same namespace as the built-ins.
"""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    StopSweep,
    SweepJobError,
    ThreadBackend,
    guard_progress,
    resolve_backend,
)
from .checkpoint import SweepCheckpoint, chunk_key, job_key
from .engine import (
    DEFAULT_SPILL_THRESHOLD,
    SPILL_THRESHOLD_ENV_VAR,
    SweepJob,
    run_solvers_on_instance,
    sweep_instances,
    sweep_traces,
)
from .registry import (
    PAPER_FIGURE_ORDER,
    NamedSpec,
    Solver,
    SolverInfo,
    SolverRegistrationError,
    UnknownSolverError,
    available_solvers,
    get_solver,
    named_spec,
    paper_lineup,
    register_solver,
    resolve_solvers,
    solver_names,
    spec_to_wire,
    unregister_solver,
    warm_registry,
    wire_to_spec,
)
from .results import ResultSet, RunRecord, SpilledResultSet
from .shm import SHM_ENV_VAR, ShmHandle, ShmPlane, shm_enabled
from .sharding import (
    ShardWriter,
    merge_shards,
    merge_shards_to_result,
    parse_shard,
    write_shard,
)
from .solve import SolveResult, solve
from .study import DEFAULT_CAPACITY_FACTORS, Study

__all__ = [
    "DEFAULT_CAPACITY_FACTORS",
    "DEFAULT_SPILL_THRESHOLD",
    "PAPER_FIGURE_ORDER",
    "SHM_ENV_VAR",
    "SPILL_THRESHOLD_ENV_VAR",
    "ExecutionBackend",
    "ShmHandle",
    "ShmPlane",
    "NamedSpec",
    "ProcessBackend",
    "ResultSet",
    "RunRecord",
    "SerialBackend",
    "Solver",
    "SolverInfo",
    "SolverRegistrationError",
    "ShardWriter",
    "SolveResult",
    "SpilledResultSet",
    "StopSweep",
    "Study",
    "SweepCheckpoint",
    "SweepJob",
    "SweepJobError",
    "ThreadBackend",
    "UnknownSolverError",
    "available_solvers",
    "chunk_key",
    "get_solver",
    "guard_progress",
    "job_key",
    "merge_shards",
    "merge_shards_to_result",
    "named_spec",
    "paper_lineup",
    "parse_shard",
    "register_solver",
    "resolve_backend",
    "shm_enabled",
    "resolve_solvers",
    "run_solvers_on_instance",
    "solve",
    "solver_names",
    "spec_to_wire",
    "sweep_instances",
    "sweep_traces",
    "unregister_solver",
    "warm_registry",
    "wire_to_spec",
    "write_shard",
]
