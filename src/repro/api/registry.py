"""Pluggable solver registry behind the :func:`repro.solve` facade.

Every strategy that maps a Problem DT instance to a feasible schedule —
the paper's fourteen heuristics, the Gilmore–Gomory/Held–Karp exact no-wait
sequencer, the windowed ``lp.k`` MILP — is registered here under a canonical
name plus optional aliases, and grouped by :class:`~repro.heuristics.base.Category`.
Third-party strategies join the same namespace with the decorator::

    from repro.api import register_solver
    from repro.heuristics import StaticOrderHeuristic

    @register_solver(aliases=("RND",))
    class RandomOrder(StaticOrderHeuristic):
        name = "RANDOM"
        def order(self, instance):
            ...

Once registered, the solver is reachable from :func:`repro.solve`, from
``Study().solvers("RANDOM")`` and from category specs such as
``"category:static"`` — no repro internals need to change.
"""

from __future__ import annotations

import difflib
import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..heuristics.base import PAPER_FIGURE_ORDER, Category, Heuristic

__all__ = [
    "Solver",
    "SolverInfo",
    "SolverRegistrationError",
    "UnknownSolverError",
    "NamedSpec",
    "named_spec",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "solver_names",
    "available_solvers",
    "resolve_solvers",
    "spec_to_wire",
    "wire_to_spec",
    "warm_registry",
    "paper_lineup",
    "PAPER_FIGURE_ORDER",
]


@runtime_checkable
class Solver(Protocol):
    """Anything that can turn an instance into a feasible schedule.

    The paper heuristics (:class:`~repro.heuristics.base.Heuristic`), the
    exact no-wait sequencer and the MILP wrapper all satisfy this protocol;
    so does any user object with ``name``, ``category`` and ``schedule``.
    """

    name: str
    category: Category

    def schedule(self, instance: Instance) -> Schedule: ...


class SolverRegistrationError(ValueError):
    """A solver could not be (or was incorrectly) registered."""


class UnknownSolverError(KeyError):
    """A solver name/alias/category spec did not resolve.

    Subclasses :class:`KeyError` so legacy callers catching ``KeyError``
    (the pre-facade behaviour of ``get_heuristic``) keep working.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class SolverInfo:
    """Descriptive metadata attached to one registered solver."""

    name: str
    category: Category
    description: str = ""
    favorable_situation: str = ""
    aliases: tuple[str, ...] = ()


@dataclass(frozen=True)
class _Registration:
    info: SolverInfo
    factory: Callable[..., Solver]


# Canonical upper-cased name -> registration; upper-cased alias -> canonical key.
_REGISTRY: dict[str, _Registration] = {}
_ALIASES: dict[str, str] = {}
_LOCK = threading.RLock()
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Register the built-in solvers on first use (lazily, to avoid cycles).

    The loaded flag is only set once the import has *succeeded*, and while it
    is in flight the lock is held, so concurrent first accesses either wait
    for the full registry or retry a failed import with the real error.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _LOCK:
        if _BUILTINS_LOADED:
            return
        from . import _builtin  # noqa: F401  (import performs the registrations)

        _BUILTINS_LOADED = True


def warm_registry() -> None:
    """Force-load the built-in registrations.

    Normally the registry fills itself lazily on first lookup; worker
    processes of the :class:`~repro.api.backends.ProcessBackend` call this
    from their initializer so the (one-off) import cost is paid at pool
    start-up instead of inside the first timed job.
    """
    _ensure_builtins()


def _known_names() -> list[str]:
    return [reg.info.name for reg in _REGISTRY.values()] + [
        alias for reg in _REGISTRY.values() for alias in reg.info.aliases
    ]


def _unknown(name: str) -> UnknownSolverError:
    # Match case-insensitively but suggest the *registered* spelling: the
    # registry accepts any casing, yet error messages should hand back names
    # that read like the documentation (e.g. "lp.4", never "LP.4").
    by_upper: dict[str, str] = {}
    for known in _known_names():
        by_upper.setdefault(known.upper(), known)
    matches = difflib.get_close_matches(name.upper(), list(by_upper), n=3)
    suggestions = sorted({by_upper[match] for match in matches})
    hint = f"; did you mean {', '.join(suggestions)}?" if suggestions else ""
    return UnknownSolverError(
        f"unknown solver {name!r}{hint} known solvers: {sorted(set(_known_names()))}"
    )


def register_solver(
    name: str | None = None,
    *,
    category: Category | str | None = None,
    aliases: Sequence[str] = (),
    description: str | None = None,
    favorable_situation: str | None = None,
    replace: bool = False,
) -> Callable:
    """Decorator registering a solver class or zero-argument factory.

    ``name``/``category``/``description``/``favorable_situation`` default to
    the decorated class's attributes when it is a
    :class:`~repro.heuristics.base.Heuristic` subclass.  Names and aliases are
    case-insensitive and must not collide with an existing registration
    unless ``replace=True``.
    """

    def decorator(target: Callable[..., Solver]) -> Callable[..., Solver]:
        solver_name = name
        solver_category = category
        solver_description = description
        solver_favorable = favorable_situation
        if isinstance(target, type) and issubclass(target, Heuristic):
            solver_name = solver_name or target.name
            solver_category = solver_category if solver_category is not None else target.category
            solver_description = (
                solver_description if solver_description is not None else target.description
            )
            solver_favorable = (
                solver_favorable if solver_favorable is not None else target.favorable_situation
            )
        if not solver_name:
            raise SolverRegistrationError(
                f"cannot infer a name for {target!r}; pass register_solver(name=...)"
            )
        if solver_category is None:
            raise SolverRegistrationError(
                f"solver {solver_name!r} needs a category (one of {[c.value for c in Category]})"
            )
        info = SolverInfo(
            name=solver_name,
            category=Category(solver_category),
            description=solver_description or "",
            favorable_situation=solver_favorable or "",
            aliases=tuple(aliases),
        )
        with _LOCK:
            key = solver_name.upper()
            taken = set(_REGISTRY) | set(_ALIASES)
            if not replace:
                for candidate in (key, *[a.upper() for a in info.aliases]):
                    if candidate in taken:
                        raise SolverRegistrationError(
                            f"solver name or alias {candidate!r} is already registered; "
                            "pass replace=True to override"
                        )
            else:
                _discard(key)
            _REGISTRY[key] = _Registration(info=info, factory=target)
            for alias in info.aliases:
                _ALIASES[alias.upper()] = key
        return target

    return decorator


def _discard(key: str) -> None:
    _REGISTRY.pop(key, None)
    for alias in [a for a, target in _ALIASES.items() if target == key]:
        del _ALIASES[alias]


def unregister_solver(name: str) -> None:
    """Remove a registered solver (mainly useful for tests and plugins)."""
    _ensure_builtins()
    with _LOCK:
        key = name.upper()
        key = _ALIASES.get(key, key)
        if key not in _REGISTRY:
            raise _unknown(name)
        _discard(key)


def get_solver(name: str, **params) -> Solver:
    """Instantiate a solver by canonical name or alias (case-insensitive).

    Extra keyword arguments are forwarded to the solver's factory (e.g.
    ``get_solver("lp.4", time_limit_per_window=2.0)``).
    """
    _ensure_builtins()
    key = name.upper()
    key = _ALIASES.get(key, key)
    try:
        registration = _REGISTRY[key]
    except KeyError:
        raise _unknown(name) from None
    return registration.factory(**params)


def solver_names() -> tuple[str, ...]:
    """Canonical names of every registered solver, in registration order."""
    _ensure_builtins()
    return tuple(reg.info.name for reg in _REGISTRY.values())


def available_solvers() -> dict[str, SolverInfo]:
    """Metadata of every registered solver, keyed by canonical name."""
    _ensure_builtins()
    return {reg.info.name: reg.info for reg in _REGISTRY.values()}


def resolve_solvers(*specs) -> list[Solver]:
    """Resolve a mixed list of solver specs into fresh solver instances.

    Each spec may be a canonical name or alias (``"OOMAMR"``), a category
    spec (``"category:dynamic"`` — every registered member, in registration
    order), a :class:`Solver` instance (used as-is) or a solver class
    (instantiated).  With no specs, the paper's Figure 9/11 line-up is
    returned.
    """
    _ensure_builtins()
    if not specs:
        return paper_lineup()
    solvers: list[Solver] = []
    for spec in specs:
        if isinstance(spec, str):
            if spec.lower().startswith("category:"):
                category_name = spec.split(":", 1)[1].strip()
                try:
                    category = Category(category_name.lower())
                except ValueError:
                    raise UnknownSolverError(
                        f"unknown solver category {category_name!r}; "
                        f"choose from {[c.value for c in Category]}"
                    ) from None
                members = [
                    reg for reg in _REGISTRY.values() if reg.info.category is category
                ]
                if not members:
                    raise UnknownSolverError(
                        f"no registered solvers in category {category.value!r}"
                    )
                solvers.extend(reg.factory() for reg in members)
            else:
                solvers.append(get_solver(spec))
        elif isinstance(spec, type):
            solvers.append(spec())
        elif isinstance(spec, Solver):
            solvers.append(spec)
        elif callable(spec):
            # Zero-argument factory: lets sweeps build a *fresh* configured
            # solver per trace job (Study().portfolio uses this, so racing
            # state never leaks between concurrent jobs).
            solver = spec()
            if not isinstance(solver, Solver):
                raise TypeError(
                    f"solver factory {spec!r} returned {solver!r}, "
                    "which does not satisfy the Solver protocol"
                )
            solvers.append(solver)
        else:
            raise TypeError(
                f"cannot interpret solver spec {spec!r}; expected a name, "
                "'category:<name>', a Solver instance, a solver class or a "
                "zero-argument factory"
            )
    return solvers


@dataclass(frozen=True)
class NamedSpec:
    """A solver spec *by registered name and parameters* — the picklable kind.

    Calling it instantiates a fresh solver through the registry, so it slots
    into :func:`resolve_solvers` like any zero-argument factory, while —
    unlike a closure — it survives a trip through :func:`spec_to_wire` /
    :func:`wire_to_spec` and a process boundary.  ``params`` is a sorted
    ``(key, value)`` tuple so two specs built from the same keyword
    arguments compare (and hash their wire form) equal.
    """

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def __call__(self) -> Solver:
        return get_solver(self.name, **dict(self.params))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rendered = ", ".join(f"{key}={value!r}" for key, value in self.params)
        return f"named_spec({self.name!r}{', ' + rendered if rendered else ''})"


def named_spec(name: str, **params) -> NamedSpec:
    """Build a :class:`NamedSpec` (the parameters are stored sorted by key)."""
    return NamedSpec(name=name, params=tuple(sorted(params.items())))


def _registered_name_of(factory) -> str | None:
    """Canonical name under which ``factory`` (a class/callable) is registered."""
    _ensure_builtins()
    for registration in _REGISTRY.values():
        if registration.factory is factory:
            return registration.info.name
    return None


def spec_to_wire(spec) -> dict:
    """Encode one solver spec as a plain-data wire dict.

    The wire form contains only strings and plain parameter values, so a
    :class:`~repro.api.engine.SweepJob` carrying it can cross a process
    boundary without ever pickling a live solver.  Names, ``"category:"``
    specs, :class:`NamedSpec` and *registered* classes all encode; solver
    instances and opaque callables do not — they raise a :class:`TypeError`
    explaining what to pass instead (the process backend surfaces this
    before any worker starts).
    """
    if isinstance(spec, str):
        return {"kind": "name", "name": spec}
    if isinstance(spec, NamedSpec):
        return {"kind": "named", "name": spec.name, "params": dict(spec.params)}
    if isinstance(spec, type):
        name = _registered_name_of(spec)
        if name is None:
            raise TypeError(
                f"solver class {spec.__name__!r} is not registered and cannot be "
                "sent to a worker process; register it with @register_solver "
                "(in a module the workers import) and pass its name"
            )
        return {"kind": "name", "name": name}
    if isinstance(spec, Solver) or callable(spec):
        if not isinstance(spec, Solver):
            name = _registered_name_of(spec)
            if name is not None:
                return {"kind": "name", "name": name}
        kind = "instance" if isinstance(spec, Solver) else "factory"
        raise TypeError(
            f"solver {kind} {spec!r} cannot cross a process boundary; pass a "
            "registered name, a 'category:<name>' spec, or "
            "repro.api.named_spec(name, **params) so each worker rebuilds the "
            "solver from the registry"
        )
    raise TypeError(f"cannot interpret solver spec {spec!r}")


def wire_to_spec(wire: dict):
    """Decode a :func:`spec_to_wire` dict back into a resolvable spec.

    Runs inside worker processes: the result is handed to
    :func:`resolve_solvers`, which instantiates the solver from the (lazily
    warmed) registry of that worker.
    """
    if not isinstance(wire, dict) or "kind" not in wire:
        raise ValueError(f"not a solver wire spec: {wire!r}")
    kind = wire["kind"]
    if kind == "name":
        return wire["name"]
    if kind == "named":
        return named_spec(wire["name"], **wire.get("params", {}))
    raise ValueError(f"unknown solver wire kind {kind!r}")


def paper_lineup(names: Iterable[str] | None = None) -> list[Solver]:
    """Fresh instances of the Figures 9/11 line-up, in figure order.

    ``names`` optionally restricts (and re-orders) the line-up.  A name of
    :data:`PAPER_FIGURE_ORDER` that is missing from the registry raises a
    :class:`SolverRegistrationError` naming the culprit explicitly, instead
    of the bare ``KeyError`` the pre-facade registry used to leak.
    """
    _ensure_builtins()
    wanted = tuple(names) if names is not None else PAPER_FIGURE_ORDER
    missing = [name for name in wanted if _ALIASES.get(name.upper(), name.upper()) not in _REGISTRY]
    if missing:
        if names is None:
            raise SolverRegistrationError(
                f"PAPER_FIGURE_ORDER references unregistered solver(s) {missing}; "
                "every name in the line-up must be registered with "
                "@register_solver before the line-up can be built"
            )
        raise SolverRegistrationError(
            f"requested line-up contains unregistered solver(s) {missing}; "
            f"known solvers: {sorted(set(_known_names()))}"
        )
    return [get_solver(name) for name in wanted]
