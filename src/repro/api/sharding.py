"""Multi-host sharding: partition a sweep's job plane, merge the outputs.

A *shard spec* ``(index, count)`` selects every job whose global index is
congruent to ``index`` modulo ``count`` — a deterministic round-robin
partition, so ``count`` independent hosts (or CI matrix entries) can each
run ``repro sweep --shard i/N`` over the *same* declared sweep and never
duplicate or miss a job, even when the job plane is lazily generated.

Each shard writes a **shard file**: a JSONL stream whose first line is a
header object and whose remaining lines carry one *job* each — the job's
global index plus its result rows in the exact
:meth:`~repro.api.results.ResultSet` spill encoding.  ``repro merge`` (or
:func:`merge_shards`) k-way-merges any number of shard files back into
global job order, validating that the shards belong together and cover the
job plane exactly once; the merged output is **byte-identical** to the
unsharded sweep's, which is differential-tested and smoke-checked in CI.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, Iterator, Sequence

from .results import ResultSet, RunRecord, decode_record_line, encode_record_line

__all__ = [
    "ShardWriter",
    "parse_shard",
    "shard_header",
    "write_shard",
    "read_shard",
    "merge_shards",
    "merge_shards_to_result",
]

SHARD_FORMAT = "repro.SweepShard"
SHARD_VERSION = 1


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``"i/N"`` shard spec into ``(index, count)``, validated."""
    try:
        index_text, _, count_text = text.partition("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"bad shard spec {text!r}: expected 'i/N' with integers, e.g. '0/4'"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"bad shard spec {text!r}: need 0 <= i < N (got index {index} of {count})"
        )
    return index, count


def shard_header(index: int, count: int, jobs_total: int | None) -> str:
    """The shard file's first line (format marker + partition coordinates)."""
    payload = {
        "format": SHARD_FORMAT,
        "version": SHARD_VERSION,
        "shard": index,
        "of": count,
        "jobs": jobs_total,
    }
    return json.dumps(payload, separators=(",", ":")) + "\n"


class ShardWriter:
    """Incremental writer for one shard file.

    ``append(job_index, records)`` must be called in ascending global job
    order — exactly what the streaming sweep's ``on_records`` callback
    delivers.  Every line is flushed as it is written, so the tail of the
    file is valid while the sweep is still running.
    """

    def __init__(
        self,
        target: str | os.PathLike | IO[str],
        index: int,
        count: int,
        *,
        jobs_total: int | None = None,
    ) -> None:
        self.index = int(index)
        self.count = int(count)
        self.jobs_written = 0
        if isinstance(target, (str, os.PathLike)):
            self._handle: IO[str] = open(
                os.fspath(target), "w", encoding="utf-8", newline="\n"
            )
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._handle.write(shard_header(self.index, self.count, jobs_total))
        self._handle.flush()

    def append(self, job_index: int, records: Sequence[RunRecord]) -> None:
        if job_index % self.count != self.index:
            raise ValueError(
                f"job {job_index} does not belong to shard {self.index}/{self.count}"
            )
        rows = [encode_record_line(record).rstrip("\n") for record in records]
        line = json.dumps({"job": job_index, "rows": "@"}, separators=(",", ":"))
        # Rows are embedded pre-encoded so the row bytes are identical to
        # the spill/merge encodings (no double float round-trip).
        line = line.replace('"@"', "[" + ",".join(rows) + "]", 1)
        self._handle.write(line + "\n")
        self._handle.flush()
        self.jobs_written += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_shard(
    target: str | os.PathLike | IO[str],
    index: int,
    count: int,
    job_records: Iterable[tuple[int, Sequence[RunRecord]]],
    *,
    jobs_total: int | None = None,
) -> int:
    """Write one shard's results to ``target`` (path or open text handle).

    ``job_records`` yields ``(global job index, records)`` pairs in
    ascending index order.  Returns the number of jobs written.
    """
    with ShardWriter(target, index, count, jobs_total=jobs_total) as writer:
        for job_index, records in job_records:
            writer.append(job_index, records)
        return writer.jobs_written


class _ShardRows:
    """Lazy ``(job index, records)`` iterator over one open shard file.

    Closes the underlying handle when exhausted; ``close()`` releases it
    early (validation failures in :func:`merge_shards` must not leak open
    files).
    """

    def __init__(self, handle: IO[str]) -> None:
        self._handle = handle
        self._closed = False

    def __iter__(self) -> "_ShardRows":
        return self

    def __next__(self) -> tuple[int, list[RunRecord]]:
        if self._closed:
            raise StopIteration
        for line in self._handle:
            if not line.strip():
                continue
            entry = json.loads(line)
            records = [
                decode_record_line(json.dumps(row, separators=(",", ":")))
                for row in entry["rows"]
            ]
            return int(entry["job"]), records
        self.close()
        raise StopIteration

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._handle.close()


def read_shard(path: str | os.PathLike) -> tuple[dict, Iterator[tuple[int, list[RunRecord]]]]:
    """Open a shard file: returns its header and a lazy (job, rows) iterator."""
    handle = open(os.fspath(path), encoding="utf-8")  # noqa: SIM115 - streamed
    header_line = handle.readline()
    try:
        header = json.loads(header_line) if header_line.strip() else {}
    except json.JSONDecodeError:
        header = {}
    if not isinstance(header, dict) or header.get("format") != SHARD_FORMAT:
        handle.close()
        raise ValueError(
            f"{os.fspath(path)!r} is not a sweep shard file (write one with "
            "'repro sweep --shard i/N --output FILE')"
        )
    if header.get("version") != SHARD_VERSION:
        handle.close()
        raise ValueError(
            f"shard file {os.fspath(path)!r} has format version "
            f"{header.get('version')!r}; this build reads version {SHARD_VERSION}"
        )
    return header, _ShardRows(handle)


def merge_shards(paths: Sequence[str | os.PathLike]) -> Iterator[tuple[int, list[RunRecord]]]:
    """K-way merge shard files back into global job order (streaming).

    Validates that the shards form one complete partition: same shard
    count, no duplicate or foreign shard indices, every job index present
    exactly once with none missing.  Yields ``(job index, records)`` in
    ascending job order, reading each file incrementally — merging a
    terabyte of shards holds one job per shard in memory.
    """
    if not paths:
        raise ValueError("merge needs at least one shard file")
    headers = []
    streams = []
    try:
        for path in paths:
            header, stream = read_shard(path)
            headers.append((os.fspath(path), header))
            streams.append(stream)
        yield from _merge_validated(headers, streams)
    finally:
        for stream in streams:
            stream.close()


def _merge_validated(headers, streams) -> Iterator[tuple[int, list[RunRecord]]]:
    counts = {header["of"] for _, header in headers}
    if len(counts) != 1:
        raise ValueError(
            "shard files disagree on the shard count: "
            + ", ".join(f"{p}: {h['shard']}/{h['of']}" for p, h in headers)
        )
    count = counts.pop()
    indices = [header["shard"] for _, header in headers]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard files passed to merge: indices {sorted(indices)}")
    missing = set(range(count)) - set(indices)
    if missing:
        raise ValueError(
            f"incomplete merge: shard(s) {sorted(missing)} of {count} are missing "
            f"(got {sorted(indices)})"
        )
    totals = {header.get("jobs") for _, header in headers if header.get("jobs") is not None}
    if len(totals) > 1:
        raise ValueError(f"shard files disagree on the sweep's job count: {sorted(totals)}")
    expected_total = totals.pop() if totals else None

    by_shard: dict[int, Iterator] = {header["shard"]: stream for (_, header), stream in zip(headers, streams)}
    heads: dict[int, tuple[int, list[RunRecord]]] = {}
    for shard, stream in by_shard.items():
        first = next(stream, None)
        if first is not None:
            heads[shard] = first

    next_job = 0
    while heads:
        shard = next_job % count
        if shard not in heads:
            raise ValueError(
                f"job {next_job} is missing: shard {shard}/{count} ended early "
                "(was its sweep interrupted?)"
            )
        job_index, records = heads[shard]
        if job_index != next_job:
            raise ValueError(
                f"shard {shard}/{count} is out of order or has gaps: "
                f"expected job {next_job}, found job {job_index}"
            )
        yield job_index, records
        following = next(by_shard[shard], None)
        if following is None:
            del heads[shard]
        else:
            heads[shard] = following
        next_job += 1
    if expected_total is not None and next_job != expected_total:
        raise ValueError(
            f"merged {next_job} jobs but the shards declare a {expected_total}-job "
            "sweep — at least one shard file is truncated"
        )


def merge_shards_to_result(paths: Sequence[str | os.PathLike]) -> ResultSet:
    """Merge shard files into one in-memory :class:`ResultSet`.

    Byte-identical (after ``to_json``/``to_csv``/``to_jsonl``) to the
    ResultSet of the same sweep run unsharded.
    """
    result = ResultSet()
    for _, records in merge_shards(paths):
        for record in records:
            result.append(record)
    return result
