"""``repro.solve`` — one call from instance to schedule + metrics."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance
from ..core.metrics import ScheduleMetrics, evaluate
from ..core.schedule import Schedule
from ..core.validation import check_schedule
from ..flowshop.johnson import omim_makespan
from ..simulator.batch import execute_in_batches
from .registry import Solver, get_solver, resolve_solvers

__all__ = ["solve", "SolveResult"]


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one :func:`solve` call: the schedule plus its metrics."""

    solver: str
    category: str
    instance: Instance
    schedule: Schedule
    metrics: ScheduleMetrics

    @property
    def makespan(self) -> float:
        return self.metrics.makespan

    @property
    def ratio_to_optimal(self) -> float:
        return self.metrics.ratio_to_optimal

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.solver}: makespan {self.makespan:g} "
            f"(ratio to OMIM {self.ratio_to_optimal:.3f})"
        )


def solve(
    instance: Instance,
    method: str | Solver | type = "LCMR",
    *,
    batch_size: int | None = None,
    validate: bool = True,
    reference: float | None = None,
    **solver_params,
) -> SolveResult:
    """Schedule ``instance`` with one registered solver and evaluate it.

    Parameters
    ----------
    method:
        A registered solver name or alias (``"OOMAMR"``, ``"lp.4"``), a
        :class:`Solver` instance, or a solver class.  Extra keyword
        arguments are forwarded to the solver factory when ``method`` is a
        name (e.g. ``solve(instance, "lp.4", time_limit_per_window=2.0)``).
    batch_size:
        Section 6.3 batched execution: apply the solver to successive
        windows of ``batch_size`` tasks instead of the whole instance.
    validate:
        Check the schedule against the memory capacity before returning.
    reference:
        Known OMIM makespan, to skip recomputing Johnson's rule.
    """
    if isinstance(method, str):
        if method.lower().startswith("category:"):
            raise ValueError(
                "solve() runs a single solver; use Study().solvers"
                f"({method!r}) to run a whole category"
            )
        solver = get_solver(method, **solver_params)
    else:
        if solver_params:
            raise TypeError("solver parameters are only accepted when method is a name")
        (solver,) = resolve_solvers(method)
    if batch_size is None:
        schedule = solver.schedule(instance)
    else:
        schedule = execute_in_batches(instance, solver.schedule, batch_size=batch_size)
    if validate:
        check_schedule(schedule, instance)
    reference = omim_makespan(instance) if reference is None else reference
    metrics = evaluate(schedule, instance, heuristic=solver.name, reference=reference)
    return SolveResult(
        solver=solver.name,
        category=str(solver.category),
        instance=instance,
        schedule=schedule,
        metrics=metrics,
    )
