"""``repro.solve`` — one call from instance to schedule + metrics."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Sequence

from .. import obs
from ..core.instance import Instance
from ..core.metrics import OnlineMetrics, ScheduleMetrics, evaluate, evaluate_online
from ..core.schedule import Schedule
from ..core.validation import check_schedule
from ..flowshop.johnson import omim_makespan
from ..simulator.arrivals import ArrivalProcess, resolve_arrivals
from ..simulator.batch import simulate_in_batches
from ..obs.stats import KernelStats
from ..simulator.events import EventTrace
from ..simulator.resources import MachineModel
from .registry import Solver, get_solver, resolve_solvers

__all__ = ["solve", "SolveResult"]


@dataclass(frozen=True)
class SolveResult:
    """Outcome of one :func:`solve` call: the schedule plus its metrics.

    ``trace`` carries the kernel's structured event trace when the call was
    made with ``record_events=True`` (transfer/compute start and end, memory
    acquire/release; idle intervals and overlap are derived views on it).
    ``online`` carries the arrival-aware metrics (response time, stretch,
    queue length) whenever the instance's tasks have release dates.
    ``selected_solver``/``cache_hit`` attribute portfolio runs: the member a
    race or selection actually executed, and whether a cached run was served
    from the store (both ``None`` for plain solvers).
    ``engine`` records which execution engine produced the schedule
    (``"object"`` or ``"columnar"``; ``"mixed"`` when batched windows
    disagree, ``None`` when the run bypassed the kernel entirely).
    ``stats`` carries the kernel's per-run profiling counters
    (:class:`~repro.obs.stats.KernelStats`; ``None`` off-kernel).
    """

    solver: str
    category: str
    instance: Instance
    schedule: Schedule
    metrics: ScheduleMetrics
    trace: EventTrace | None = None
    online: OnlineMetrics | None = None
    selected_solver: str | None = None
    cache_hit: bool | None = None
    engine: str | None = None
    stats: KernelStats | None = None

    @property
    def makespan(self) -> float:
        return self.metrics.makespan

    @property
    def ratio_to_optimal(self) -> float:
        return self.metrics.ratio_to_optimal

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.solver}: makespan {self.makespan:g} "
            f"(ratio to OMIM {self.ratio_to_optimal:.3f})"
        )


def solve(
    instance: Instance,
    method: str | Solver | type = "LCMR",
    *,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None,
    arrival_seed: int = 0,
    batch_size: int | None = None,
    pipelined: bool = False,
    validate: bool = True,
    reference: float | None = None,
    machine: MachineModel | None = None,
    record_events: bool = False,
    engine: str | None = None,
    trace: "str | os.PathLike | None" = None,
    **solver_params,
) -> SolveResult:
    """Schedule ``instance`` with one registered solver and evaluate it.

    Parameters
    ----------
    method:
        A registered solver name or alias (``"OOMAMR"``, ``"lp.4"``), a
        :class:`Solver` instance, or a solver class.  Extra keyword
        arguments are forwarded to the solver factory when ``method`` is a
        name (e.g. ``solve(instance, "lp.4", time_limit_per_window=2.0)``).
    arrivals:
        Streaming execution: release dates to stamp onto the instance — an
        :class:`~repro.simulator.arrivals.ArrivalProcess` (sampled with
        ``arrival_seed``), a ``{task name: date}`` mapping, or a sequence
        aligned with the submission order.  The solver then runs online,
        re-ranking the ready set as tasks arrive; instances whose tasks
        already carry release dates stream automatically.  Mutually
        exclusive with ``batch_size``.
    batch_size:
        Section 6.3 batched execution: apply the solver to successive
        windows of ``batch_size`` tasks instead of the whole instance.
        Runs on the kernel, so it composes with ``machine`` and
        ``record_events`` (solvers that cannot, reject them explicitly).
    pipelined:
        With ``batch_size``: drop the drain barrier between batches — the
        next batch's transfers start as soon as memory frees.
    validate:
        Check the schedule against the memory capacity (and the release
        dates) before returning.
    reference:
        Known OMIM makespan, to skip recomputing Johnson's rule.
    machine:
        :class:`~repro.simulator.resources.MachineModel` engine option:
        parallel transfer links, parallel processing units, or a memory
        capacity override.  Only kernel-backed solvers (all the paper
        heuristics and GGX, but not the MILP wrappers) support it.
    record_events:
        Attach the kernel's structured :class:`EventTrace` to the result
        (kernel-backed solvers only).
    engine:
        Execution engine: ``"auto"`` (default) picks the columnar
        array-native fast path for large instances when the configuration
        supports it, ``"columnar"`` requests it explicitly (still falling
        back to the object kernel when unsupported — e.g. event recording
        or multi-CPU machines), ``"batched"`` runs the cross-instance
        batch kernel (a single solve is a one-lane plane, float-identical
        to columnar; sweeps stack many lanes), ``"object"`` forces the
        event kernel.  Kernel-backed solvers only; the chosen engine is
        recorded on :attr:`SolveResult.engine`.
    trace:
        Enable :mod:`repro.obs` tracing for this call and write the spans
        to ``trace`` as a Chrome trace-event file (open it in Perfetto or
        ``chrome://tracing``).  Tracing state is restored afterwards.
    """
    if trace is not None:
        with obs.trace_to(trace), obs.span("solve", method=str(method)):
            return solve(
                instance,
                method,
                arrivals=arrivals,
                arrival_seed=arrival_seed,
                batch_size=batch_size,
                pipelined=pipelined,
                validate=validate,
                reference=reference,
                machine=machine,
                record_events=record_events,
                engine=engine,
                **solver_params,
            )
    if isinstance(method, str):
        if method.lower().startswith("category:"):
            raise ValueError(
                "solve() runs a single solver; use Study().solvers"
                f"({method!r}) to run a whole category"
            )
        solver = get_solver(method, **solver_params)
    else:
        if solver_params:
            raise TypeError("solver parameters are only accepted when method is a name")
        (solver,) = resolve_solvers(method)

    if arrivals is not None:
        if batch_size is not None:
            raise ValueError(
                "arrivals and batch_size cannot be combined: streaming "
                "generalises batching — pick one execution mode"
            )
        instance = instance.with_releases(
            resolve_arrivals(arrivals, instance.tasks, seed=arrival_seed)
        )

    trace = None
    ran_engine: str | None = None
    stats: KernelStats | None = None
    if batch_size is not None:
        result = simulate_in_batches(
            instance,
            solver,
            batch_size=batch_size,
            pipelined=pipelined,
            machine=machine,
            record=record_events,
            engine=engine,
        )
        schedule, trace = result.schedule, result.trace
        ran_engine = getattr(result, "engine", None) or None
        stats = getattr(result, "stats", None)
    elif pipelined:
        raise ValueError("pipelined=True requires batch_size")
    elif (
        machine is not None
        or record_events
        or instance.has_releases
        or engine is not None
    ):
        if not hasattr(solver, "simulate"):
            raise ValueError(
                f"solver {solver.name!r} does not run on the simulation kernel"
            )
        # Only pass engine= when requested: simulate() surfaces predating
        # the engine option (external solvers) keep working untouched.
        extra = {} if engine is None else {"engine": engine}
        result = solver.simulate(
            instance, machine=machine, record=record_events, **extra
        )
        schedule, trace = result.schedule, result.trace
        ran_engine = getattr(result, "engine", None) or None
        stats = getattr(result, "stats", None)
    else:
        schedule = solver.schedule(instance)
    if validate:
        check_schedule(schedule, instance, machine=machine)
    reference = omim_makespan(instance) if reference is None else reference
    metrics = evaluate(
        schedule, instance, heuristic=solver.name, reference=reference, trace=trace
    )
    online = evaluate_online(schedule) if instance.has_releases else None
    # Batched runs invoke the solver once per window; last_outcome would
    # describe only the final batch, so no attribution is reported there.
    outcome = getattr(solver, "last_outcome", None) if batch_size is None else None
    return SolveResult(
        solver=solver.name,
        category=str(solver.category),
        instance=instance,
        schedule=schedule,
        metrics=metrics,
        trace=trace,
        online=online,
        selected_solver=outcome.selected if outcome is not None else None,
        cache_hit=outcome.cache_hit if outcome is not None else None,
        engine=ran_engine,
        stats=stats,
    )
