"""Zero-copy shared-memory job plane for process-backend sweeps.

Process-backend sweeps historically pickled every :class:`~repro.traces.Trace`
/ :class:`~repro.core.instance.Instance` payload *by value* into each chunk
crossing the worker boundary — megabytes per chunk for NWChem-scale traces,
serialized once per job on the submitting side and deserialized object by
object in every worker.  The shm plane replaces that with a handle:

* the parent packs each distinct payload's columns (volumes, communication
  and computation times, release dates) plus a small pickled tail (names,
  kinds, metadata) **once** into a ``multiprocessing.shared_memory`` segment
  (:class:`ShmPlane.publish`);
* :meth:`SweepJob.to_wire` ships a tiny :class:`ShmHandle` — segment name,
  shape, tail length — instead of the payload, cutting the per-chunk pickle
  by 10x and more (``benchmarks/bench_batch_sweep.py`` records the ratio);
* workers attach the segment (an ``mmap``, no copy), rebuild the payload and
  pre-seed its :class:`~repro.simulator.columnar.ColumnarInstance` view with
  arrays aliasing the shared buffer, so the columnar/batched engines read
  the parent's packed columns directly.

Ownership is strictly parent-side: the creating :class:`ShmPlane` unlinks
every segment on :meth:`close` (the process backend calls it in a
``finally``), a ``weakref.finalize`` covers planes dropped without closing,
and a module ``atexit`` hook sweeps anything left if the interpreter exits
mid-sweep — no leaked ``/dev/shm`` entries, test-proven in
``tests/api/test_shm.py``.  Workers never unlink; attached segments are
closed when the job finishes (Python < 3.13 needs the
``resource_tracker.unregister`` step below, or each worker's tracker would
"helpfully" unlink segments the parent still owns).

The opt-in is ``REPRO_SHM=1`` or ``Study.parallel(shm=True)``; the default
stays the plain pickled payload, which remains the only option for the
serial and thread backends (no process boundary to cross).
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .. import obs
from ..core.instance import Instance
from ..core.task import Task
from ..simulator.columnar import _VIEW_ATTR, ColumnarInstance
from ..traces.model import Trace, TraceTask

__all__ = ["SHM_ENV_VAR", "ShmHandle", "ShmPlane", "attach_payload", "shm_enabled"]

#: Environment variable switching the process backend onto the shm plane.
SHM_ENV_VAR = "REPRO_SHM"

_FLOAT_BYTES = 8


def shm_enabled(flag: bool | None = None) -> bool:
    """Resolve the shm opt-in: an explicit flag wins, else ``REPRO_SHM``."""
    if flag is not None:
        return bool(flag)
    return os.environ.get(SHM_ENV_VAR, "").strip() not in ("", "0")


@dataclass(frozen=True)
class ShmHandle:
    """Wire-sized pointer to one published payload.

    Pickles in a couple hundred bytes whatever the payload size: the columns
    live in the named segment, the handle only carries what a worker needs
    to map and slice it.  ``kind`` is ``"trace"`` or ``"instance"``.
    """

    name: str
    kind: str
    tasks: int
    cols: int
    tail: int
    label: str


# --------------------------------------------------------------------------- #
# Parent side: publish + guaranteed unlink
# --------------------------------------------------------------------------- #
#: Every segment created by this process and not yet unlinked, swept by the
#: atexit hook so a crash mid-sweep cannot leak ``/dev/shm`` entries.
_OWNED: dict[str, shared_memory.SharedMemory] = {}
_ATEXIT_REGISTERED = False


def _sweep_owned(names: set) -> None:
    """Unlink the given segment names (finalizer / atexit callback)."""
    for name in list(names):
        names.discard(name)
        segment = _OWNED.pop(name, None)
        if segment is None:
            continue
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - already gone
            pass


def _atexit_sweep() -> None:  # pragma: no cover - exercised via subprocess tests
    _sweep_owned(set(_OWNED))


class ShmPlane:
    """Parent-side registry of published payload segments.

    Deduplicates by payload object (one segment per distinct payload even
    when several jobs share it) and refcounts :meth:`publish` /
    :meth:`release` pairs, so the streaming path can unlink each chunk's
    segments as soon as the chunk's results are back while keeping shared
    payloads alive for their later jobs.
    """

    def __init__(self) -> None:
        global _ATEXIT_REGISTERED
        #: id(payload) -> (payload ref, handle) — the payload reference pins
        #: the id, so a dead payload can never alias a live map entry.
        self._published: dict[int, tuple[object, ShmHandle]] = {}
        self._refs: dict[str, int] = {}
        self._names: set[str] = set()
        if not _ATEXIT_REGISTERED:
            _ATEXIT_REGISTERED = True
            atexit.register(_atexit_sweep)
        self._finalizer = weakref.finalize(self, _sweep_owned, self._names)

    def publish(self, payload: "Trace | Instance") -> ShmHandle:
        """Register ``payload`` (once) and return its wire handle."""
        key = id(payload)
        entry = self._published.get(key)
        if entry is not None:
            handle = entry[1]
            self._refs[handle.name] += 1
            return handle
        if isinstance(payload, Trace):
            columns, tail, kind, label = _pack_trace(payload)
        elif isinstance(payload, Instance):
            columns, tail, kind, label = _pack_instance(payload)
        else:
            raise TypeError(
                f"shm plane can only publish Trace or Instance payloads, "
                f"got {type(payload).__name__}"
            )
        n = columns.shape[1]
        data_bytes = columns.size * _FLOAT_BYTES
        segment = shared_memory.SharedMemory(
            create=True, size=max(data_bytes + len(tail), 1)
        )
        if columns.size:
            np.frombuffer(segment.buf, dtype=np.float64, count=columns.size)[
                :
            ] = columns.ravel()
        if tail:
            segment.buf[data_bytes : data_bytes + len(tail)] = tail
        handle = ShmHandle(
            name=segment.name,
            kind=kind,
            tasks=n,
            cols=columns.shape[0],
            tail=len(tail),
            label=label,
        )
        _OWNED[segment.name] = segment
        self._names.add(segment.name)
        self._published[key] = (payload, handle)
        self._refs[segment.name] = 1
        obs.REGISTRY.inc("sweep_shm_bytes_total", data_bytes + len(tail))
        obs.REGISTRY.inc("sweep_shm_segments_total")
        return handle

    def release(self, handle: ShmHandle) -> None:
        """Drop one publish reference; unlink the segment at zero."""
        count = self._refs.get(handle.name)
        if count is None:
            return
        if count > 1:
            self._refs[handle.name] = count - 1
            return
        del self._refs[handle.name]
        self._published = {
            key: entry
            for key, entry in self._published.items()
            if entry[1].name != handle.name
        }
        self._names.discard(handle.name)
        _sweep_owned({handle.name})

    def close(self) -> None:
        """Unlink every segment this plane still owns."""
        self._published.clear()
        self._refs.clear()
        _sweep_owned(self._names)
        self._names.clear()

    def __enter__(self) -> "ShmPlane":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _pack_trace(trace: Trace):
    tasks = trace.tasks
    n = len(tasks)
    columns = np.empty((4, n), dtype=np.float64)
    columns[0] = [t.volume_bytes for t in tasks]
    columns[1] = [t.comm_seconds for t in tasks]
    columns[2] = [t.comp_seconds for t in tasks]
    columns[3] = [t.release_seconds for t in tasks]
    names = [t.name for t in tasks]
    kinds = [t.kind for t in tasks]
    if not any(kinds):
        kinds = None
    tail = pickle.dumps(
        (trace.application, trace.process, dict(trace.metadata), names, kinds),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return columns, tail, "trace", trace.label


def _pack_instance(instance: Instance):
    tasks = instance.tasks
    n = len(tasks)
    columns = np.empty((4, n), dtype=np.float64)
    columns[0] = [t.memory for t in tasks]
    columns[1] = [t.comm for t in tasks]
    columns[2] = [t.comp for t in tasks]
    columns[3] = [t.release for t in tasks]
    names = [t.name for t in tasks]
    tags = [t.tag for t in tasks]
    if not any(tags):
        tags = None
    tail = pickle.dumps(
        (instance.name, instance.capacity, names, tags),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return columns, tail, "instance", instance.name


# --------------------------------------------------------------------------- #
# Worker side: attach + rebuild
# --------------------------------------------------------------------------- #
#: Attached segments whose close raised ``BufferError`` (a view outlived the
#: job, e.g. in an exception traceback); closed at interpreter exit instead.
_LINGERING: list[shared_memory.SharedMemory] = []


def _close_lingering() -> None:  # pragma: no cover - interpreter teardown
    for segment in _LINGERING:
        try:
            segment.close()
        except BufferError:
            pass


atexit.register(_close_lingering)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach without adopting ownership.

    Python < 3.13 registers *every* attach with the resource tracker
    (bpo-39959).  That is harmless here: every attacher in this codebase —
    sweep workers and same-process round-trips — shares the *publisher's*
    tracker (multiprocessing children inherit the tracker connection under
    both fork and spawn starts), so the duplicate register is a set no-op.
    Unregistering instead would strip the owner's crash-guard registration
    — the tracker is exactly what sweeps ``/dev/shm`` clean when the owner
    dies without running its ``atexit`` hooks.  3.13+ has ``track=False``
    for attaches made outside the owner's process tree.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def attach_payload(handle: ShmHandle):
    """Map ``handle``'s segment and rebuild its payload, zero-copy.

    Returns ``(payload, detach)``: the payload's columnar view aliases the
    shared buffer, so ``detach()`` must only run once the job is done with
    it (the :class:`~repro.api.engine.SweepJob` runner calls it in a
    ``finally`` after dropping its payload reference).
    """
    segment = _attach_segment(handle.name)
    count = handle.cols * handle.tasks
    data = np.frombuffer(segment.buf, dtype=np.float64, count=count).reshape(
        handle.cols, handle.tasks
    )
    data.flags.writeable = False
    start = count * _FLOAT_BYTES
    tail = pickle.loads(bytes(segment.buf[start : start + handle.tail]))
    if handle.kind == "trace":
        payload = _build_trace(data, tail)
    elif handle.kind == "instance":
        payload = _build_instance(data, tail)
    else:
        raise ValueError(f"unknown shm payload kind {handle.kind!r}")

    def detach() -> None:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - traceback kept a view alive
            _LINGERING.append(segment)

    return payload, detach


def _seed_view(instance: Instance, memory, comm, comp, release, names, lists) -> None:
    """Pre-seed ``instance``'s columnar view with shared-buffer columns."""
    view = ColumnarInstance.__new__(ColumnarInstance)
    view.instance = instance
    view.tasks = instance.tasks
    view.names = names
    view.comm = comm
    view.comp = comp
    view.memory = memory
    view.release = release
    view.comm_list, view.comp_list, view.memory_list = lists
    view._total = None
    view._name_rank = None
    view._index = None
    view._acceleration = None
    object.__setattr__(instance, _VIEW_ATTR, view)


def _build_tasks(names, tags, memory, comm, comp, release) -> list[Task]:
    """Fast-build validated-at-publish :class:`Task` rows from columns."""
    new = Task.__new__
    set_attr = object.__setattr__
    out = []
    append = out.append
    if tags is None:
        tags = [""] * len(names)
    for name, tag, m, cm, cp, r in zip(
        names, tags, memory.tolist(), comm.tolist(), comp.tolist(), release.tolist()
    ):
        task = new(Task)
        set_attr(task, "name", name)
        set_attr(task, "comm", cm)
        set_attr(task, "comp", cp)
        set_attr(task, "memory", m)
        set_attr(task, "release", r)
        set_attr(task, "tag", tag)
        append(task)
    return out


class _ShmTrace(Trace):
    """A :class:`Trace` whose columns alias a shared-memory segment.

    Behaves as the original trace everywhere (label, iteration, slicing of
    ``tasks``), but :meth:`to_instance` pre-seeds each built instance's
    columnar view with the shared arrays, so the fast-path engines skip the
    per-instance pack entirely.
    """

    def __init__(self, application, process, metadata, names, kinds, data) -> None:
        # Deliberately no dataclass __init__/__post_init__: the payload was
        # validated (unique names, non-negative fields) when published.
        self.application = application
        self.process = process
        self.metadata = metadata
        self._names = names
        self._kinds = kinds
        self._data = data
        self._lists: "tuple | None" = None
        self._task_objs: "list[Task] | None" = None
        self._trace_tasks: "list[TraceTask] | None" = None

    # ``tasks`` is a dataclass field on Trace; make it lazy here so jobs that
    # only touch columns never build the row objects.
    @property
    def tasks(self) -> list[TraceTask]:  # type: ignore[override]
        if self._trace_tasks is None:
            new = TraceTask.__new__
            set_attr = object.__setattr__
            rows = []
            append = rows.append
            kinds = self._kinds or [""] * len(self._names)
            volume, comm, comp, release = (c.tolist() for c in self._data)
            for name, kind, v, cm, cp, r in zip(
                self._names, kinds, volume, comm, comp, release
            ):
                row = new(TraceTask)
                set_attr(row, "name", name)
                set_attr(row, "volume_bytes", v)
                set_attr(row, "comm_seconds", cm)
                set_attr(row, "comp_seconds", cp)
                set_attr(row, "release_seconds", r)
                set_attr(row, "kind", kind)
                append(row)
            self._trace_tasks = rows
        return self._trace_tasks

    @tasks.setter
    def tasks(self, value) -> None:  # pragma: no cover - dataclass compat
        self._trace_tasks = value

    def __len__(self) -> int:
        return len(self._names)

    @property
    def min_capacity_bytes(self) -> float:
        if not len(self._names):
            return 0.0
        return float(self._data[0].max())

    def to_instance(self, capacity_bytes: float = math.inf) -> Instance:
        volume, comm, comp, release = self._data
        if self._task_objs is None:
            self._task_objs = _build_tasks(
                self._names, self._kinds, volume, comm, comp, release
            )
        if self._lists is None:
            self._lists = (comm.tolist(), comp.tolist(), volume.tolist())
        instance = Instance(
            self._task_objs, capacity=capacity_bytes, name=self.label
        )
        _seed_view(instance, volume, comm, comp, release, self._names, self._lists)
        return instance


def _build_trace(data: np.ndarray, tail) -> _ShmTrace:
    application, process, metadata, names, kinds = tail
    return _ShmTrace(application, process, metadata, names, kinds, data)


def _build_instance(data: np.ndarray, tail) -> Instance:
    name, capacity, names, tags = tail
    memory, comm, comp, release = data
    instance = Instance(
        _build_tasks(names, tags, memory, comm, comp, release),
        capacity=capacity,
        name=name,
    )
    _seed_view(
        instance,
        memory,
        comm,
        comp,
        release,
        names,
        (comm.tolist(), comp.tolist(), memory.tolist()),
    )
    return instance
