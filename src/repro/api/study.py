"""Fluent sweep builder: describe an experiment, then ``run()`` it.

A :class:`Study` is the declarative face of the sweep engine::

    results = (
        Study()
        .traces(hf_ensemble(processes=150, traces=6))
        .capacities(1.0, 2.0, steps=11)
        .solvers("category:dynamic", "OOMAMR")
        .parallel()
        .run()
    )
    results.aggregate("ratio_to_optimal", by=("capacity_factor", "heuristic"))

It subsumes the legacy ``run_on_instance`` / ``sweep_trace`` /
``sweep_ensemble`` trio: traces and ensembles sweep ``factor * mc``
capacities, raw instances run at their own capacity.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Mapping, Sequence

from .. import obs
from ..core.instance import Instance
from ..simulator.arrivals import ArrivalProcess
from ..simulator.resources import MachineModel
from ..traces.model import Trace, TraceEnsemble, TraceStream
from .backends import ExecutionBackend
from .checkpoint import SweepCheckpoint
from .engine import default_jobs, sweep_instances, sweep_traces
from .registry import named_spec
from .results import ResultSet, RunRecord, SpilledResultSet

__all__ = ["Study", "DEFAULT_CAPACITY_FACTORS"]

#: Capacity factors used by the paper: mc to 2 mc in steps of 0.125 mc.
DEFAULT_CAPACITY_FACTORS: tuple[float, ...] = tuple(1.0 + 0.125 * i for i in range(9))


class Study:
    """Mutable builder collecting sweep parameters; every setter returns ``self``."""

    def __init__(self) -> None:
        self._traces: list[Trace | TraceEnsemble] = []
        self._instances: list[Instance] = []
        self._factors: tuple[float, ...] = DEFAULT_CAPACITY_FACTORS
        self._solver_specs: tuple = ()
        self._validate: bool = True
        self._batch_size: int | None = None
        self._pipelined: bool = False
        self._task_limit: int | None = None
        self._n_jobs: int | None = None
        self._backend: "str | ExecutionBackend | None" = None
        self._chunk_size: int | None = None
        self._on_progress: Callable[[int, int], None] | None = None
        self._machine: MachineModel | None = None
        self._arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None
        self._arrival_seed: int = 0
        self._engine: str | None = None
        self._spill: "bool | str | os.PathLike | SpilledResultSet | None" = None
        self._checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None
        self._shard: "str | tuple[int, int] | None" = None
        self._on_records: "Callable[[int, list[RunRecord]], None] | None" = None
        self._trace: "str | os.PathLike | bool | None" = None

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #
    def traces(self, *sources: "Trace | TraceEnsemble | TraceStream | Iterable") -> "Study":
        """Add traces, whole ensembles and/or lazy trace streams to sweep over.

        A :class:`~repro.traces.TraceStream` stays lazy: its traces are
        produced one chunk at a time while the sweep runs, never all at
        once.
        """
        for source in sources:
            if isinstance(source, (Trace, TraceEnsemble, TraceStream)):
                self._traces.append(source)
            else:
                for item in source:
                    if not isinstance(item, (Trace, TraceEnsemble, TraceStream)):
                        raise TypeError(
                            "traces() accepts Trace/TraceEnsemble/TraceStream, "
                            f"got {type(item).__name__}"
                        )
                    self._traces.append(item)
        return self

    def instances(self, *instances: Instance) -> "Study":
        """Add raw instances, evaluated at their own capacity (no factor sweep)."""
        for instance in instances:
            if not isinstance(instance, Instance):
                raise TypeError(f"instances() accepts Instance, got {type(instance).__name__}")
            self._instances.append(instance)
        return self

    # ------------------------------------------------------------------ #
    # Sweep shape
    # ------------------------------------------------------------------ #
    def capacities(self, *factors: float, steps: int | None = None) -> "Study":
        """Capacity factors (multiples of each trace's ``mc``).

        Either an explicit list — ``capacities(1.0, 1.5, 2.0)`` — or an
        inclusive linear range: ``capacities(1.0, 2.0, steps=11)``.
        """
        if steps is not None:
            if len(factors) != 2:
                raise ValueError("capacities(lo, hi, steps=n) takes exactly two bounds")
            if steps < 2:
                raise ValueError("steps must be at least 2")
            lo, hi = factors
            width = (hi - lo) / (steps - 1)
            self._factors = tuple(lo + i * width for i in range(steps))
        elif factors:
            self._factors = tuple(float(f) for f in factors)
        else:
            raise ValueError("capacities() needs at least one factor")
        return self

    def solvers(self, *specs) -> "Study":
        """Solver specs: names, aliases, ``"category:<name>"``, instances, classes.

        Defaults to the paper's full Figure 9/11 line-up when never called.
        """
        self._solver_specs = self._solver_specs + tuple(specs)
        return self

    def portfolio(self, mode: str = "race", **params) -> "Study":
        """Add a portfolio solver to the line-up.

        ``mode`` is ``"race"`` (run K members concurrently, keep the
        virtual best — ``members=``, ``prune=``), ``"select"`` (featurize
        each instance and run the Table 6 match — ``selector=``) or
        ``"cached"`` (memoise an inner solver in the persistent result
        cache — ``inner=``, ``directory=``); ``params`` are forwarded to
        the solver factory.  A *fresh* solver is built per trace job, so
        parallel sweeps never share racing or attribution state.  Composes
        with :meth:`machine` and :meth:`arrivals` like any other solver,
        and fills the ``selected_solver``/``cache_hit`` result columns.
        """
        known = ("race", "select", "cached")
        if mode.lower() not in known:
            raise ValueError(f"unknown portfolio mode {mode!r}; choose from {list(known)}")
        # A named spec, not a closure: it builds the same fresh-per-job
        # solver, but also survives the trip to a process-backend worker.
        self._solver_specs = self._solver_specs + (
            named_spec(f"portfolio.{mode.lower()}", **params),
        )
        return self

    def batched(self, batch_size: int, *, pipelined: bool = False) -> "Study":
        """Use Section 6.3 batched execution with windows of ``batch_size`` tasks.

        ``pipelined=True`` drops the drain barrier between batches: the next
        batch's transfers start as soon as the link and the memory allow.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self._batch_size = batch_size
        self._pipelined = bool(pipelined)
        return self

    def arrivals(
        self,
        spec: "ArrivalProcess | Mapping[str, float] | Sequence[float]",
        *,
        seed: int = 0,
    ) -> "Study":
        """Run every solver on the streaming runtime under an arrival pattern.

        ``spec`` is an :class:`~repro.simulator.arrivals.ArrivalProcess`
        (e.g. ``PoissonArrivals(load=1.5)``), a ``{task name: date}``
        mapping, or a sequence of dates aligned with the submission order.
        Each trace samples its own arrival pattern (derived from ``seed``
        and the trace label) and reuses it across every capacity factor;
        the online measurement columns (``mean_response_time``,
        ``mean_stretch``, ``avg_queue_length``) are filled in.  Mutually
        exclusive with :meth:`batched`.
        """
        self._arrivals = spec
        self._arrival_seed = int(seed)
        return self

    def task_limit(self, limit: int) -> "Study":
        """Truncate every trace to its first ``limit`` tasks."""
        if limit <= 0:
            raise ValueError("task limit must be positive")
        self._task_limit = limit
        return self

    def machine(self, model: MachineModel) -> "Study":
        """Run every solver on a custom machine model (kernel engine option).

        ``MachineModel(link_count=2)`` sweeps a two-link machine, for
        example.  Only kernel-backed solvers support this; leave the model's
        ``capacity`` unset in capacity sweeps (it would override every swept
        capacity).
        """
        if not isinstance(model, MachineModel):
            raise TypeError(f"machine() accepts MachineModel, got {type(model).__name__}")
        self._machine = model
        return self

    def validate(self, flag: bool = True) -> "Study":
        """Toggle per-schedule feasibility checking (on by default)."""
        self._validate = bool(flag)
        return self

    def engine(self, engine: str) -> "Study":
        """Select the execution engine for every kernel run of the sweep.

        ``"auto"`` picks an array-native fast path for large instances when
        the configuration supports it — including the cross-instance
        *batched* plane once a sweep has enough homogeneous fixed-order
        lanes; ``"columnar"`` requests the per-instance fast path
        explicitly (still falling back to the object kernel when
        unsupported); ``"batched"`` requests the cross-instance plane
        (lanes that cannot batch fall back per instance); ``"object"``
        forces the event kernel.  The engine each run actually used is
        recorded in the ``engine`` result column.  Note the trade-off: the
        default (never calling this) records structured event traces for
        kernel solvers, while ``"auto"``/``"columnar"``/``"batched"``
        sweeps skip event recording so the fast paths can engage.
        """
        from ..simulator.columnar import ENGINE_CHOICES

        choice = str(engine).lower()
        if choice not in ENGINE_CHOICES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {list(ENGINE_CHOICES)}"
            )
        self._engine = choice
        return self

    def parallel(
        self,
        n_jobs: int | None = None,
        *,
        backend: "str | ExecutionBackend | None" = None,
        chunk_size: int | None = None,
        shm: bool | None = None,
    ) -> "Study":
        """Fan trace jobs out over ``n_jobs`` workers of an execution backend.

        ``backend`` is ``"threads"`` (the default — cheap to start, but the
        pure-Python kernel is GIL-serialized), ``"processes"`` (true
        multi-core sweeps; solver specs travel by registered name, so
        portfolio modes work cross-process), ``"serial"``, or any
        :class:`~repro.api.backends.ExecutionBackend` instance; the
        ``REPRO_BACKEND`` environment variable overrides the default.
        ``n_jobs`` defaults to the CPU count (capped by ``REPRO_NUM_JOBS``
        and the job count); jobs are sharded into chunks of ``chunk_size``
        (auto-sized when omitted) to amortize inter-process traffic.

        ``shm=True`` ships payloads through the zero-copy shared-memory
        job plane (:mod:`repro.api.shm`) instead of pickling them by value
        — process backend only, implied when ``backend`` is omitted.  The
        ``REPRO_SHM`` environment variable is the hands-off equivalent.

        Results are byte-identical to the sequential path, including their
        order, whatever the backend, worker count, chunking or shm mode.
        ``parallel(1)`` switches back to sequential execution.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size!r}")
        self._n_jobs = default_jobs() if n_jobs is None else int(n_jobs)
        if shm is not None:
            from .backends import ProcessBackend

            if backend is None:
                backend = ProcessBackend(self._n_jobs, shm=shm)
            elif isinstance(backend, str) and backend.lower() in (
                "processes",
                "process",
                "multiprocessing",
            ):
                backend = ProcessBackend(self._n_jobs, shm=shm)
            elif isinstance(backend, ProcessBackend):
                backend = ProcessBackend(backend.n_jobs, shm=shm)
            else:
                raise ValueError(
                    "shm= applies to the process backend only; pass "
                    "backend='processes' (or a ProcessBackend instance)"
                )
        self._backend = backend
        self._chunk_size = chunk_size
        return self

    def on_progress(self, callback: Callable[[int, int], None] | None) -> "Study":
        """Report sweep progress: ``callback(completed_jobs, total_jobs)``.

        Called from the submitting thread as whole-trace/instance jobs
        finish (after each chunk on pool backends).  Traces and raw
        instances are swept as two consecutive passes, each reporting its
        own totals.  Pass ``None`` to remove a previously set callback.

        Callbacks are guarded: an exception raised inside one is reported
        as a single ``RuntimeWarning`` and the sweep keeps going.  Raising
        :class:`repro.api.StopSweep` is the exception — it deliberately
        aborts the sweep (the serving layer uses it to cancel
        past-deadline sweeps).
        """
        if callback is not None and not callable(callback):
            raise TypeError(f"on_progress() accepts a callable or None, got {callback!r}")
        self._on_progress = callback
        return self

    def spill(self, target: "bool | str | os.PathLike | SpilledResultSet" = True) -> "Study":
        """Stream results into an append-only JSONL spill instead of RAM.

        ``spill()`` uses a temporary file (deleted with the result object),
        ``spill(path)`` a named one you can reload with
        :meth:`ResultSet.from_jsonl`, ``spill(False)`` forces in-memory
        accumulation even above the auto threshold.  Without this call,
        sweeps spill automatically once their estimated output exceeds
        ``REPRO_SPILL_THRESHOLD`` rows (default 100 000).
        """
        self._spill = target
        return self

    def checkpoint(self, directory: "SweepCheckpoint | str | os.PathLike") -> "Study":
        """Record every merged chunk in ``directory``; resume skips them.

        Re-running the same study with the same checkpoint directory loads
        completed chunks from disk instead of executing them — a killed
        sweep loses at most its in-flight window.  Chunks are content-keyed
        from the job plane, so changing the sweep re-runs exactly the
        invalidated chunks.
        """
        self._checkpoint = directory
        return self

    def shard(self, spec: "str | tuple[int, int]") -> "Study":
        """Run one deterministic slice ``"i/N"`` of the job plane.

        ``N`` hosts each running their shard cover every job exactly once;
        combine their outputs with ``repro merge`` (or
        :func:`repro.api.merge_shards_to_result`) into a result
        byte-identical to the unsharded run.
        """
        self._shard = spec
        return self

    def on_records(self, callback: "Callable[[int, list[RunRecord]], None] | None") -> "Study":
        """Observe each job's records as chunks merge, in global job order.

        ``callback(job_index, records)`` fires while the sweep runs — this
        is how the CLI streams CSV rows to stdout and writes shard files.
        Pass ``None`` to remove a previously set callback.
        """
        if callback is not None and not callable(callback):
            raise TypeError(f"on_records() accepts a callable or None, got {callback!r}")
        self._on_records = callback
        return self

    def trace(self, target: "str | os.PathLike | bool" = True) -> "Study":
        """Trace the sweep with :mod:`repro.obs` while it runs.

        ``trace(path)`` writes the spans — including kernel, chunk-lifecycle
        and cache spans shipped back from process-backend workers — to
        ``path`` as a Chrome trace-event file (open it in Perfetto or
        ``chrome://tracing``).  ``trace()`` enables tracing without writing
        a file (read the spans via :func:`repro.obs.export_since`);
        ``trace(False)`` removes a previously set target.  Tracing state is
        restored after :meth:`run`.
        """
        self._trace = target
        return self

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self) -> ResultSet:
        """Execute the sweep and return the columnar results.

        Streaming studies (``spill``/auto-spill) return a
        :class:`~repro.api.SpilledResultSet` — same API, rows on disk.
        """
        if self._trace is not None and self._trace is not False:
            target, self._trace = self._trace, None
            try:
                path = None if target is True else target
                with obs.trace_to(path), obs.span("study.run"):
                    return self.run()
            finally:
                self._trace = target
        if not self._traces and not self._instances:
            raise ValueError("Study has nothing to run: add .traces(...) or .instances(...)")
        if (
            self._traces
            and self._instances
            and (
                self._checkpoint is not None
                or self._shard is not None
                or self._on_records is not None
            )
        ):
            raise ValueError(
                "checkpoint/shard/on_records address jobs by their index in a "
                "single job plane; a study mixing traces and raw instances runs "
                "two planes — split it into two studies"
            )
        common = dict(
            solver_specs=self._solver_specs,
            validate=self._validate,
            batch_size=self._batch_size,
            pipelined=self._pipelined,
            n_jobs=self._n_jobs,
            backend=self._backend,
            chunk_size=self._chunk_size,
            on_progress=self._on_progress,
            machine=self._machine,
            arrivals=self._arrivals,
            arrival_seed=self._arrival_seed,
            engine=self._engine,
            checkpoint=self._checkpoint,
            shard=self._shard,
            on_records=self._on_records,
        )
        first: ResultSet | None = None
        if self._traces:
            first = sweep_traces(
                self._traces,
                capacity_factors=self._factors,
                task_limit=self._task_limit,
                spill=self._spill,
                **common,
            )
        if not self._instances:
            return first  # type: ignore[return-value]  (one of the two is set)
        # A spilled trace pass keeps spilling: the instance pass appends to
        # the same file, so the combined result stays bounded in memory.
        instance_spill = first if isinstance(first, SpilledResultSet) else self._spill
        second = sweep_instances(self._instances, spill=instance_spill, **common)
        if first is None or second is first:
            return second
        results = ResultSet()
        results.extend(first)
        results.extend(second)
        return results
