"""repro — data-transfer ordering for communication/computation overlap.

Reproduction of *"Performance Models for Data Transfers: A Case Study with
Molecular Chemistry Kernels"* (Kumar, Eyraud-Dubois, Krishnamoorthy, ICPP
2019).  The package provides:

* :mod:`repro.api` — the unified solver facade: :func:`solve`,
  :class:`Study`, the pluggable solver registry and the columnar
  :class:`ResultSet`;
* :mod:`repro.core` — tasks, instances, schedules, bounds and metrics for the
  data-transfer ordering problem (Problem DT);
* :mod:`repro.flowshop` — Johnson's rule, the exchange lemma, Gilmore–Gomory
  no-wait sequencing and the 3-Partition NP-completeness reduction;
* :mod:`repro.heuristics` — the paper's static, dynamic and corrected
  ordering strategies plus the GG/BP baselines;
* :mod:`repro.simulator` — memory-aware executors turning orders into
  feasible schedules;
* :mod:`repro.milp` — the mixed-integer formulation and the windowed lp.k solver;
* :mod:`repro.portfolio` — instance featurization, Table 6 algorithm
  selection, parallel solver racing and the persistent result cache;
* :mod:`repro.chemistry` — simulated NWChem Hartree–Fock and CCSD workloads;
* :mod:`repro.traces` — trace model, IO, generators and workload statistics;
* :mod:`repro.experiments` — the capacity sweeps regenerating every figure;
* :mod:`repro.viz` — ASCII Gantt charts and text boxplots.

Quickstart
----------
>>> from repro import Instance, Task, solve, solver_names
>>> tasks = [Task.from_times("A", comm=3, comp=2), Task.from_times("B", comm=1, comp=3),
...          Task.from_times("C", comm=4, comp=4), Task.from_times("D", comm=2, comp=1)]
>>> instance = Instance(tasks, capacity=6)
>>> result = solve(instance, method="LCMR")   # any name from solver_names()
>>> result.ratio_to_optimal >= 1.0
True
>>> best = min((solve(instance, name) for name in solver_names()
...             if not name.startswith("lp.")), key=lambda r: r.makespan)
>>> best.makespan <= result.makespan
True

Sweeps use the fluent :class:`Study` builder (see :mod:`repro.api`)::

    from repro import Study
    from repro.chemistry import hf_ensemble

    results = (
        Study()
        .traces(hf_ensemble(processes=150, traces=6))
        .capacities(1.0, 2.0, steps=9)
        .solvers("category:dynamic", "OOMAMR")
        .parallel()
        .run()
    )
    results.aggregate("ratio_to_optimal", by=("capacity_factor", "heuristic"))
"""

from .api import (
    ResultSet,
    SolveResult,
    Solver,
    SolverInfo,
    SolverRegistrationError,
    Study,
    UnknownSolverError,
    available_solvers,
    get_solver,
    paper_lineup,
    register_solver,
    solve,
    solver_names,
)
from .core import (
    Instance,
    OnlineMetrics,
    Schedule,
    ScheduledTask,
    ScheduleMetrics,
    Task,
    bounds,
    check_schedule,
    evaluate,
    evaluate_online,
    omim,
    ratio_to_optimal,
    validate_schedule,
)
from .heuristics import Category, Heuristic, all_heuristics, get_heuristic
from .portfolio import (
    CachedSolver,
    EmpiricalSelector,
    InstanceFeatures,
    PortfolioSolver,
    ResultCache,
    SelectingSolver,
    Table6Selector,
    featurize,
)
from .simulator import (
    BurstyArrivals,
    EventTrace,
    MachineModel,
    PoissonArrivals,
    SimulationResult,
    TraceReplayArrivals,
    execute_fixed_order,
    execute_in_batches,
    execute_with_policy,
    run_online,
    simulate,
    simulate_in_batches,
)

__version__ = "1.9.0"

__all__ = [
    "Task",
    "Instance",
    "Schedule",
    "ScheduledTask",
    "ScheduleMetrics",
    "Category",
    "Heuristic",
    # unified solver facade
    "ResultSet",
    "SolveResult",
    "Solver",
    "SolverInfo",
    "SolverRegistrationError",
    "Study",
    "UnknownSolverError",
    "available_solvers",
    "get_solver",
    "paper_lineup",
    "register_solver",
    "solve",
    "solver_names",
    # deprecated pre-facade registry helpers
    "all_heuristics",
    "get_heuristic",
    # core + simulation kernel
    "EventTrace",
    "MachineModel",
    "SimulationResult",
    "bounds",
    "check_schedule",
    "evaluate",
    "execute_fixed_order",
    "execute_in_batches",
    "execute_with_policy",
    "simulate",
    "omim",
    "ratio_to_optimal",
    "validate_schedule",
    # streaming runtime
    "BurstyArrivals",
    "OnlineMetrics",
    "PoissonArrivals",
    "TraceReplayArrivals",
    "evaluate_online",
    "run_online",
    "simulate_in_batches",
    # portfolio layer
    "CachedSolver",
    "EmpiricalSelector",
    "InstanceFeatures",
    "PortfolioSolver",
    "ResultCache",
    "SelectingSolver",
    "Table6Selector",
    "featurize",
    "__version__",
]
