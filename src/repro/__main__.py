"""``python -m repro`` — the registered-solver table (the Table 6 view).

Prints every solver the registry knows — name, category, aliases and its
favorable situation — so users can discover what ``solve(instance, name)``
accepts without reading source.  ``--category`` filters one family::

    python -m repro
    python -m repro --category dynamic
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .api import available_solvers
from .heuristics import Category


def render_solver_table(category: str | None = None) -> str:
    """The solver table as text (one row per registered solver)."""
    infos = list(available_solvers().values())
    if category is not None:
        wanted = Category(category.lower())
        infos = [info for info in infos if info.category is wanted]
        if not infos:
            raise ValueError(f"no registered solvers in category {wanted.value!r}")
    name_width = max(len(info.name) for info in infos)
    category_width = max(len(str(info.category)) for info in infos)
    lines = [
        f"{len(infos)} registered solvers (repro.solve accepts any name or alias)",
        "",
        f"{'solver':<{name_width}}  {'category':<{category_width}}  favorable situation",
    ]
    for info in infos:
        situation = info.favorable_situation or "-"
        lines.append(f"{info.name:<{name_width}}  {str(info.category):<{category_width}}  {situation}")
        if info.aliases:
            lines.append(f"{'':<{name_width}}  {'':<{category_width}}  aliases: {', '.join(info.aliases)}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="List the registered solvers and their favorable situations (Table 6).",
    )
    parser.add_argument(
        "--category",
        choices=[c.value for c in Category],
        default=None,
        help="only show one solver family",
    )
    args = parser.parse_args(argv)
    print(render_solver_table(args.category))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
