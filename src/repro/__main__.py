"""``python -m repro`` — solver discovery, sweeps, shard merging and serving.

Four subcommands:

* ``solvers`` (the default, kept flag-compatible with the original CLI) —
  print every registered solver, its category, aliases and favorable
  situation (the Table 6 view)::

      python -m repro
      python -m repro --category dynamic
      python -m repro solvers --category portfolio

* ``sweep`` — build a :class:`repro.api.Study` from flags and run it, so
  the whole sweep engine (trace ensembles, solver/category specs, capacity
  ranges, arrivals, batching, execution backends) is drivable without
  writing Python::

      python -m repro sweep --workload mixed-intensity --traces 8 \\
          --solvers LCMR MAMR category:corrected \\
          --capacities 1.0 2.0 --steps 9 \\
          --backend processes --jobs 4 --output sweep.json

  A progress line is written to stderr while the sweep runs (``--quiet``
  disables it); the aggregate summary goes to stdout and ``--output``
  writes the full ``ResultSet`` as JSON, CSV or JSONL by file extension
  (``--output -`` streams rows to stdout as chunks merge).  Large sweeps
  scale out: ``--spill`` streams rows to an append-only JSONL file,
  ``--checkpoint DIR`` makes a killed sweep resumable, and ``--shard i/N``
  runs one deterministic slice of the job plane on this host::

      python -m repro sweep --workload ccsd --traces 64 --shard 0/4 \\
          --checkpoint ckpt/ --output shard0.jsonl

* ``merge`` — combine the shard files of one sweep back into a single
  ``ResultSet``, byte-identical to the unsharded run::

      python -m repro merge shard*.jsonl --output combined.csv

* ``serve`` — run the :mod:`repro.serve` scheduling daemon: an asyncio HTTP
  service multiplexing solve/sweep requests over a bounded worker pool with
  admission control, per-request deadlines, one shared result cache and
  live ``/metricsz`` metrics::

      python -m repro serve --port 8765 --workers 4 --queue-limit 32

``--version`` prints the package version.  Bad arguments exit with status 2
(argparse conventions) on every subcommand; unexpected runtime failures
exit 1.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from . import __version__
from .api import DEFAULT_CAPACITY_FACTORS, Study, UnknownSolverError, available_solvers
from .heuristics import Category


def render_solver_table(category: str | None = None) -> str:
    """The solver table as text (one row per registered solver)."""
    infos = list(available_solvers().values())
    if category is not None:
        wanted = Category(category.lower())
        infos = [info for info in infos if info.category is wanted]
        if not infos:
            raise ValueError(f"no registered solvers in category {wanted.value!r}")
    name_width = max(len(info.name) for info in infos)
    category_width = max(len(str(info.category)) for info in infos)
    lines = [
        f"{len(infos)} registered solvers (repro.solve accepts any name or alias)",
        "",
        f"{'solver':<{name_width}}  {'category':<{category_width}}  favorable situation",
    ]
    for info in infos:
        situation = info.favorable_situation or "-"
        lines.append(f"{info.name:<{name_width}}  {str(info.category):<{category_width}}  {situation}")
        if info.aliases:
            lines.append(f"{'':<{name_width}}  {'':<{category_width}}  aliases: {', '.join(info.aliases)}")
    return "\n".join(lines)


def _solvers_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="List the registered solvers and their favorable situations (Table 6).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--category",
        choices=[c.value for c in Category],
        default=None,
        help="only show one solver family",
    )
    args = parser.parse_args(argv)
    print(render_solver_table(args.category))
    return 0


# --------------------------------------------------------------------- #
# sweep subcommand
# --------------------------------------------------------------------- #
def _sweep_parser() -> argparse.ArgumentParser:
    from .traces.generator import REGIMES

    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Build a Study from flags and run it on the chosen execution backend.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    workload = parser.add_argument_group("workload")
    workload.add_argument(
        "--workload",
        default="mixed-intensity",
        choices=sorted(REGIMES) + ["hf", "ccsd"],
        help="synthetic regime, or a simulated chemistry ensemble (hf/ccsd); default: %(default)s",
    )
    workload.add_argument(
        "--traces", type=int, default=4, help="number of per-process traces to sweep (default: %(default)s)"
    )
    workload.add_argument(
        "--tasks", type=int, default=200, help="tasks per synthetic trace (default: %(default)s)"
    )
    workload.add_argument(
        "--processes",
        type=int,
        default=150,
        help="simulated run size for hf/ccsd workloads (default: %(default)s)",
    )
    workload.add_argument("--seed", type=int, default=0, help="workload seed (default: %(default)s)")
    workload.add_argument(
        "--task-limit", type=int, default=None, help="truncate every trace to its first N tasks"
    )

    shape = parser.add_argument_group("sweep shape")
    shape.add_argument(
        "--solvers",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="solver names, aliases or 'category:<name>' specs "
        "(default: the paper's Figure 9/11 line-up)",
    )
    shape.add_argument(
        "--capacities",
        nargs="+",
        type=float,
        default=None,
        metavar="FACTOR",
        help="capacity factors (multiples of each trace's mc); with --steps, "
        "exactly two bounds of an inclusive range (default: 1.0..2.0 in 0.125 steps)",
    )
    shape.add_argument(
        "--steps", type=int, default=None, help="linear steps between the two --capacities bounds"
    )
    shape.add_argument(
        "--arrivals",
        type=float,
        default=None,
        metavar="LOAD",
        help="run on the streaming runtime under Poisson arrivals at this load",
    )
    shape.add_argument(
        "--arrival-seed", type=int, default=0, help="arrival sampling seed (default: %(default)s)"
    )
    shape.add_argument(
        "--batch-size", type=int, default=None, help="Section 6.3 batched execution window"
    )
    shape.add_argument(
        "--pipelined", action="store_true", help="drop the drain barrier between batches"
    )
    shape.add_argument(
        "--no-validate", action="store_true", help="skip per-schedule feasibility checking"
    )

    execution = parser.add_argument_group("execution")
    execution.add_argument(
        "--engine",
        choices=["auto", "object", "columnar", "batched"],
        default=None,
        help="execution engine: 'auto' picks the columnar fast path for large "
        "instances (and the cross-instance batched plane for wide sweeps), "
        "'columnar' requests the per-instance fast path explicitly, "
        "'batched' stacks homogeneous fixed-order sweep lanes into one "
        "numpy step loop (both fall back when unsupported), 'object' "
        "forces the event kernel (default: the legacy recording path)",
    )
    execution.add_argument(
        "--backend",
        choices=["serial", "threads", "processes"],
        default=None,
        help="execution backend (default: REPRO_BACKEND, else threads when --jobs > 1)",
    )
    execution.add_argument(
        "--jobs", type=int, default=None, help="worker count (default: CPU count, capped by REPRO_NUM_JOBS)"
    )
    execution.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="jobs per shard (default: auto; implies parallel execution)",
    )

    scaling = parser.add_argument_group("scaling")
    scaling.add_argument(
        "--spill",
        default=None,
        metavar="PATH",
        help="stream results into an append-only JSONL spill at PATH instead of "
        "RAM (sweeps above REPRO_SPILL_THRESHOLD rows spill to a temporary "
        "file automatically)",
    )
    scaling.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="record every merged chunk in DIR; re-running with the same DIR "
        "skips completed chunks (sharded runs nest a shard-I-of-N/ subdirectory)",
    )
    scaling.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run only jobs i, i+N, i+2N... of the sweep; combine the shard "
        "outputs with 'repro merge'",
    )

    output = parser.add_argument_group("output")
    output.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the full ResultSet to PATH (.json, .csv or .jsonl, by "
        "extension), or '-' to stream rows to stdout as chunks merge; with "
        "--shard, PATH is written in the mergeable shard format",
    )
    output.add_argument(
        "--format",
        choices=["csv", "jsonl"],
        default=None,
        help="row format for --output - (default: csv)",
    )
    output.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="trace the sweep with repro.obs and write a Chrome trace-event "
        "file to FILE (open in Perfetto or chrome://tracing); spans from "
        "process-backend workers are merged in",
    )
    output.add_argument(
        "--quiet", action="store_true", help="suppress the stderr progress line"
    )
    return parser


def _sweep_workload(args):
    if args.workload == "hf":
        from .chemistry import hf_ensemble

        return hf_ensemble(processes=args.processes, traces=args.traces, seed=args.seed)
    if args.workload == "ccsd":
        from .chemistry import ccsd_ensemble

        return ccsd_ensemble(processes=args.processes, traces=args.traces, seed=args.seed)
    from .traces.generator import synthetic_stream

    # Lazy stream, not an eager ensemble: traces are produced chunk by
    # chunk while the sweep runs (byte-identical results either way).
    return synthetic_stream(
        args.workload, processes=args.traces, tasks_per_process=args.tasks, seed=args.seed
    )


def _row_writer(fmt: str, stream):
    """A ``(job_index, records)`` callback streaming rows as chunks merge.

    The emitted bytes match ``ResultSet.to_csv``/``to_jsonl`` exactly (CSV
    header once, then rows), so piping ``--output -`` to a file equals
    writing the file after the sweep — without ever holding every row.
    """
    import csv as _csv

    from .api.results import COLUMNS, encode_record_line

    if fmt == "jsonl":

        def write(_job_index, records):
            for record in records:
                stream.write(encode_record_line(record))
            stream.flush()

        return write

    writer = _csv.writer(stream, lineterminator="\n")
    writer.writerow(COLUMNS)
    stream.flush()

    def write(_job_index, records):
        for record in records:
            writer.writerow([getattr(record, name) for name in COLUMNS])
        stream.flush()

    return write


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


def _progress_line(stream=None, clock=None):
    """A ``(completed, total)`` callback rendering a one-line stderr ticker.

    Beyond the job count, the line reports throughput and an ETA from the
    elapsed wall-clock, plus — when the relevant machinery saw traffic since
    the callback was built — the result-cache hit rate and spill/checkpoint
    activity, all read from the shared :data:`repro.obs.REGISTRY` counters.
    """
    import time as _time

    from . import obs

    stream = stream if stream is not None else sys.stderr
    clock = clock if clock is not None else _time.monotonic
    started = clock()
    counters = (
        "cache_hits_total",
        "cache_misses_total",
        "spill_rows_total",
        "checkpoint_hits_total",
    )
    base = {name: obs.REGISTRY.counter_total(name) for name in counters}
    widest = 0

    def report(completed: int, total: int) -> None:
        nonlocal widest
        line = f"sweep: {completed}/{total} jobs"
        elapsed = clock() - started
        if completed and elapsed > 0:
            rate = completed / elapsed
            line += f" | {rate:.1f} jobs/s"
            if total > completed:
                line += f" | eta {_format_eta((total - completed) / rate)}"
        delta = {name: obs.REGISTRY.counter_total(name) - base[name] for name in counters}
        lookups = delta["cache_hits_total"] + delta["cache_misses_total"]
        if lookups:
            line += f" | cache {100.0 * delta['cache_hits_total'] / lookups:.0f}%"
        if delta["spill_rows_total"]:
            line += f" | spill {int(delta['spill_rows_total'])} rows"
        if delta["checkpoint_hits_total"]:
            line += f" | ckpt {int(delta['checkpoint_hits_total'])} resumed"
        widest = max(widest, len(line))
        stream.write("\r" + line.ljust(widest))
        if completed >= total:
            stream.write("\n")
        stream.flush()

    return report


def render_sweep_summary(results) -> str:
    """Mean ratio-to-OMIM per solver, best solver first — the CLI digest."""
    if not results:
        return "0 measurements — nothing to summarise (empty workload?)"
    means = results.aggregate("ratio_to_optimal", by=("heuristic",), how="mean")
    width = max(len("solver"), *(len(str(name)) for name in means))
    lines = [
        f"{len(results)} measurements "
        f"({len(set(results.column('trace')))} traces x "
        f"{len(set(results.column('capacity_factor')))} capacities x "
        f"{len(means)} solvers)",
        "",
        f"{'solver':<{width}}  mean ratio to OMIM",
    ]
    for name, value in sorted(means.items(), key=lambda item: item[1]):
        lines.append(f"{name:<{width}}  {value:.4f}")
    return "\n".join(lines)


def _sweep_main(argv: Sequence[str]) -> int:
    parser = _sweep_parser()
    args = parser.parse_args(argv)
    stream_rows = args.output == "-"
    if args.output and not stream_rows and not args.output.endswith(
        (".json", ".csv", ".jsonl")
    ):
        # Fail in milliseconds, not after a possibly hours-long sweep.
        parser.error(
            f"--output must end in .json, .csv or .jsonl (or be '-'), got {args.output!r}"
        )
    if args.format is not None and not stream_rows:
        parser.error("--format only applies to --output -")
    shard = None
    if args.shard is not None:
        from .api import parse_shard

        try:
            shard = parse_shard(args.shard)
        except ValueError as error:
            parser.error(str(error))
        if stream_rows:
            parser.error(
                "--shard writes the mergeable shard format; --output - streams "
                "plain rows — give --output a file path instead"
            )
    study = Study().traces(_sweep_workload(args))
    if args.capacities is not None:
        study.capacities(*args.capacities, steps=args.steps)
    elif args.steps is not None:
        study.capacities(DEFAULT_CAPACITY_FACTORS[0], DEFAULT_CAPACITY_FACTORS[-1], steps=args.steps)
    if args.solvers:
        study.solvers(*args.solvers)
    if args.arrivals is not None:
        from .simulator.arrivals import PoissonArrivals

        study.arrivals(PoissonArrivals(load=args.arrivals), seed=args.arrival_seed)
    if args.batch_size is not None:
        study.batched(args.batch_size, pipelined=args.pipelined)
    elif args.pipelined:
        parser.error("--pipelined requires --batch-size")
    if args.task_limit is not None:
        study.task_limit(args.task_limit)
    if args.no_validate:
        study.validate(False)
    if args.engine is not None:
        study.engine(args.engine)
    if args.jobs is not None or args.backend is not None or args.chunk_size is not None:
        study.parallel(args.jobs, backend=args.backend, chunk_size=args.chunk_size)
    if not args.quiet:
        study.on_progress(_progress_line())
    if args.trace:
        study.trace(args.trace)
    if args.spill:
        study.spill(args.spill)
    if args.checkpoint:
        checkpoint_dir = args.checkpoint
        if shard is not None:
            # Each shard resumes independently: its chunk plan covers only
            # its own slice of the job plane, so it needs its own directory.
            checkpoint_dir = os.path.join(
                checkpoint_dir, f"shard-{shard[0]}-of-{shard[1]}"
            )
        study.checkpoint(checkpoint_dir)
    shard_writer = None
    if shard is not None:
        study.shard(shard)
        if args.output:
            from .api.sharding import ShardWriter

            shard_writer = ShardWriter(
                args.output, shard[0], shard[1], jobs_total=args.traces
            )
            study.on_records(shard_writer.append)
    elif stream_rows:
        study.on_records(_row_writer(args.format or "csv", sys.stdout))

    results = study.run()

    if args.trace:
        print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
    if shard_writer is not None:
        shard_writer.close()
        print(
            f"wrote shard {shard[0]}/{shard[1]} ({shard_writer.jobs_written} jobs, "
            f"{len(results)} rows) to {args.output}; combine with 'repro merge'",
            file=sys.stderr,
        )
        return 0
    if stream_rows:
        print(f"streamed {len(results)} rows to stdout", file=sys.stderr)
        return 0
    if args.output:
        if args.output.endswith(".csv"):
            results.to_csv(args.output)
        elif args.output.endswith(".jsonl"):
            results.to_jsonl(args.output)
        else:
            results.to_json(args.output, indent=2)
        print(f"wrote {len(results)} rows to {args.output}", file=sys.stderr)
    print(render_sweep_summary(results))
    return 0


# --------------------------------------------------------------------- #
# merge subcommand
# --------------------------------------------------------------------- #
def _merge_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro merge",
        description="Combine shard files from 'repro sweep --shard i/N' into one "
        "ResultSet, byte-identical to the unsharded sweep.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "shards",
        nargs="+",
        metavar="SHARD",
        help="shard files written by 'repro sweep --shard i/N --output FILE' "
        "(all N shards of one sweep)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the merged ResultSet to PATH (.json, .csv or .jsonl), or "
        "'-' to stream rows to stdout (default: print the summary only)",
    )
    parser.add_argument(
        "--format",
        choices=["csv", "jsonl"],
        default=None,
        help="row format for --output - (default: csv)",
    )
    return parser


def _merge_main(argv: Sequence[str]) -> int:
    parser = _merge_parser()
    args = parser.parse_args(argv)
    stream_rows = args.output == "-"
    if args.output and not stream_rows and not args.output.endswith(
        (".json", ".csv", ".jsonl")
    ):
        parser.error(
            f"--output must end in .json, .csv or .jsonl (or be '-'), got {args.output!r}"
        )
    if args.format is not None and not stream_rows:
        parser.error("--format only applies to --output -")
    from .api.sharding import merge_shards, merge_shards_to_result

    if stream_rows or (args.output and args.output.endswith((".csv", ".jsonl"))):
        # Streaming write: one job in memory per shard, rows out as merged.
        if stream_rows:
            fmt, handle, close = args.format or "csv", sys.stdout, False
        else:
            fmt = "jsonl" if args.output.endswith(".jsonl") else "csv"
            handle, close = open(args.output, "w", encoding="utf-8", newline=""), True
        try:
            write = _row_writer(fmt, handle)
            jobs = rows = 0
            for job_index, records in merge_shards(args.shards):
                write(job_index, records)
                jobs += 1
                rows += len(records)
        finally:
            if close:
                handle.close()
        target = "stdout" if stream_rows else args.output
        print(
            f"merged {len(args.shards)} shards ({jobs} jobs, {rows} rows) to {target}",
            file=sys.stderr,
        )
        return 0
    results = merge_shards_to_result(args.shards)
    if args.output:
        results.to_json(args.output, indent=2)
        print(f"wrote {len(results)} rows to {args.output}", file=sys.stderr)
    print(render_sweep_summary(results))
    return 0


# --------------------------------------------------------------------- #
# serve subcommand
# --------------------------------------------------------------------- #
def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the repro scheduling service (asyncio HTTP daemon).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port; 0 binds an ephemeral port, printed on startup (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker threads executing jobs (default: %(default)s)"
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admitted executing requests before queueing (default: --workers)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="admitted waiting requests beyond --max-inflight; more get HTTP 429 "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-request deadline applied when a request sends none",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="graceful-shutdown patience before giving up on in-flight work "
        "(default: %(default)s)",
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="shared result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-dt)",
    )
    cache.add_argument("--no-cache", action="store_true", help="disable the shared result cache")
    parser.add_argument("--quiet", action="store_true", help="suppress per-request log lines")
    return parser


def _serve_main(argv: Sequence[str]) -> int:
    parser = _serve_parser()
    args = parser.parse_args(argv)
    from .serve import ServerConfig, serve_forever

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            default_deadline_s=args.deadline,
            drain_timeout_s=args.drain_timeout,
            cache_dir="" if args.no_cache else args.cache_dir,
            quiet=args.quiet,
        )
    except ValueError as error:
        parser.error(str(error))
    try:
        return serve_forever(config)
    except KeyboardInterrupt:  # pragma: no cover - interactive ^C race
        return 0


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("--version", "-V"):
        print(f"repro {__version__}")
        return 0
    try:
        if argv and argv[0] == "sweep":
            return _sweep_main(argv[1:])
        if argv and argv[0] == "merge":
            return _merge_main(argv[1:])
        if argv and argv[0] == "serve":
            return _serve_main(argv[1:])
        if argv and argv[0] == "solvers":
            argv = argv[1:]
        return _solvers_main(argv)
    except (ValueError, UnknownSolverError) as error:
        # Late validation failures (bad category names, unknown solvers,
        # malformed studies) exit like argparse errors: message on stderr,
        # status 2.  UnknownSolverError is a KeyError whose str() is quoted.
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # `repro ... | head` must not traceback
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
