"""Global-Arrays-like distributed tensor model.

NWChem stores its large tensors in Global Arrays (GA): a partitioned global
address space in which each process owns a slice and any process can *get* or
*put* arbitrary blocks.  For the data-transfer ordering problem the relevant
abstraction is small: a distributed tensor knows its tilings, can tell how
many bytes a given tile block occupies, and can tell whether a block is local
to a process (no transfer needed) or remote (a GA get over the network).

The placement model is a block-cyclic distribution of tiles over processes,
which is what GA's default data layout approximates for the tile-sparse
tensors used by the HF and CCSD modules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .machine import DOUBLE_BYTES
from .tiling import Tiling

__all__ = ["DistributedTensor", "BlockRequest"]


@dataclass(frozen=True)
class BlockRequest:
    """One tile block fetched by a task: which tensor, which block, how many bytes."""

    tensor: str
    block: tuple[int, ...]
    bytes: float
    local: bool

    @property
    def transferred_bytes(self) -> float:
        """Bytes that actually travel over the network (0 for local blocks)."""
        return 0.0 if self.local else self.bytes


@dataclass(frozen=True)
class DistributedTensor:
    """A tiled tensor distributed block-cyclically over ``processes`` ranks."""

    name: str
    tilings: tuple[Tiling, ...]
    processes: int
    element_bytes: int = DOUBLE_BYTES

    def __post_init__(self) -> None:
        if not self.tilings:
            raise ValueError("a tensor needs at least one dimension")
        if self.processes <= 0:
            raise ValueError("process count must be positive")
        if self.element_bytes <= 0:
            raise ValueError("element size must be positive")

    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        """Number of tensor dimensions."""
        return len(self.tilings)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(t.dimension for t in self.tilings)

    @property
    def block_grid(self) -> tuple[int, ...]:
        return tuple(t.tile_count for t in self.tilings)

    @property
    def total_bytes(self) -> float:
        total = self.element_bytes
        for dim in self.shape:
            total *= dim
        return float(total)

    def blocks(self) -> Iterator[tuple[int, ...]]:
        """Iterate over every block index of the tensor."""
        return itertools.product(*(range(t.tile_count) for t in self.tilings))

    # ------------------------------------------------------------------ #
    def block_shape(self, block: Sequence[int]) -> tuple[int, ...]:
        self._check_block(block)
        return tuple(tiling[i] for tiling, i in zip(self.tilings, block))

    def block_bytes(self, block: Sequence[int]) -> float:
        """Size of one tile block, in bytes."""
        size = self.element_bytes
        for extent in self.block_shape(block):
            size *= extent
        return float(size)

    def owner(self, block: Sequence[int]) -> int:
        """Rank owning ``block`` (block-cyclic over the flattened block grid)."""
        self._check_block(block)
        flat = 0
        for index, count in zip(block, self.block_grid):
            flat = flat * count + index
        return flat % self.processes

    def request(self, block: Sequence[int], *, from_rank: int) -> BlockRequest:
        """Describe the GA get of ``block`` issued by ``from_rank``."""
        return BlockRequest(
            tensor=self.name,
            block=tuple(block),
            bytes=self.block_bytes(block),
            local=self.owner(block) == from_rank,
        )

    # ------------------------------------------------------------------ #
    def _check_block(self, block: Sequence[int]) -> None:
        if len(block) != self.rank:
            raise ValueError(f"block index must have {self.rank} components, got {len(block)}")
        for index, tiling in zip(block, self.tilings):
            if not 0 <= index < tiling.tile_count:
                raise IndexError(f"block index {tuple(block)} out of range for {self.name}")
