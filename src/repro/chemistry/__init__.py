"""Simulated NWChem molecular-chemistry workloads (HF and CCSD)."""

from .ccsd import CCSDSimulator, ContractionDiagram
from .global_arrays import BlockRequest, DistributedTensor
from .hartree_fock import HF_TILE_SIZE, HartreeFockSimulator
from .kernels import KernelSimulator, TaskBlueprint
from .machine import CASCADE, DOUBLE_BYTES, MachineModel
from .molecules import PERIODIC_SNIPPET, SIOSI, URACIL, Element, Molecule
from .tiling import Tiling, adaptive_tiling, fixed_tiling
from .workload import (
    CCSD_SPEC,
    HF_SPEC,
    WorkloadSpec,
    ccsd_ensemble,
    ccsd_trace,
    hf_ensemble,
    hf_trace,
)

__all__ = [
    "BlockRequest",
    "CASCADE",
    "CCSDSimulator",
    "CCSD_SPEC",
    "ContractionDiagram",
    "DOUBLE_BYTES",
    "DistributedTensor",
    "Element",
    "HF_SPEC",
    "HF_TILE_SIZE",
    "HartreeFockSimulator",
    "KernelSimulator",
    "MachineModel",
    "Molecule",
    "PERIODIC_SNIPPET",
    "SIOSI",
    "Tiling",
    "TaskBlueprint",
    "URACIL",
    "WorkloadSpec",
    "adaptive_tiling",
    "ccsd_ensemble",
    "ccsd_trace",
    "fixed_tiling",
    "hf_ensemble",
    "hf_trace",
]
