"""Machine model used to convert data volumes and flop counts into times.

The paper's traces were collected on PNNL's Cascade machine: nodes with
16 Intel Xeon E5-2670 cores, one core per node dedicated to servicing Global
Arrays communication (so 15 worker cores), connected by an InfiniBand FDR
fabric.  Since the real machine is not available, this module models the two
quantities that matter for the data-transfer ordering problem:

* the time to move a block of bytes between the Global Arrays space and a
  process's local memory (latency + volume / bandwidth);
* the time to execute a kernel of a given flop count on one worker core
  (flops / (peak rate x efficiency)).

Only ratios of times matter to the scheduling heuristics (the evaluation
metric is normalised by OMIM), so moderate inaccuracies in the absolute
constants do not change the qualitative results; what the constants control is
the communication/computation balance, which is calibrated per kernel in
:mod:`repro.chemistry.hartree_fock` and :mod:`repro.chemistry.ccsd`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineModel", "CASCADE", "DOUBLE_BYTES"]

#: Size of a double-precision floating point number, in bytes.
DOUBLE_BYTES = 8


@dataclass(frozen=True)
class MachineModel:
    """Per-node performance model.

    Parameters
    ----------
    name:
        Human-readable machine name.
    cores_per_node:
        Physical cores per node.
    service_cores_per_node:
        Cores dedicated to the Global Arrays progress engine (not workers).
    network_bandwidth:
        Sustained bandwidth seen by *one process* when fetching from the
        remote Global Arrays memory, in bytes/second.  This is well below the
        NIC's peak because the 15 worker processes of a node share the fabric
        and the Global Arrays progress core.
    network_latency:
        Per-transfer startup latency in seconds (GA get/put + interconnect).
    flops_per_core:
        Peak double-precision rate of one core, in flop/s.
    compute_efficiency:
        Fraction of peak a tensor kernel typically sustains (tensor transposes
        and small contractions are far from peak).
    """

    name: str
    cores_per_node: int = 16
    service_cores_per_node: int = 1
    network_bandwidth: float = 1.2e9
    network_latency: float = 1.0e-5
    flops_per_core: float = 20.8e9
    compute_efficiency: float = 0.55

    def __post_init__(self) -> None:
        if self.cores_per_node <= self.service_cores_per_node:
            raise ValueError("a node needs at least one worker core")
        if min(self.network_bandwidth, self.flops_per_core) <= 0:
            raise ValueError("bandwidth and flop rate must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute efficiency must lie in (0, 1]")

    @property
    def worker_cores_per_node(self) -> int:
        """Cores that actually execute tasks (15 on Cascade)."""
        return self.cores_per_node - self.service_cores_per_node

    def transfer_seconds(self, volume_bytes: float) -> float:
        """Time to fetch ``volume_bytes`` from the remote memory node."""
        if volume_bytes < 0:
            raise ValueError("volume must be non-negative")
        if volume_bytes == 0:
            return 0.0
        return self.network_latency + volume_bytes / self.network_bandwidth

    def compute_seconds(self, flops: float, *, efficiency: float | None = None) -> float:
        """Time to execute ``flops`` double-precision operations on one core."""
        if flops < 0:
            raise ValueError("flop count must be non-negative")
        eff = self.compute_efficiency if efficiency is None else efficiency
        if not 0 < eff <= 1:
            raise ValueError("efficiency must lie in (0, 1]")
        return flops / (self.flops_per_core * eff)


#: Default model of the PNNL Cascade nodes used in the paper.
CASCADE = MachineModel(name="cascade")
