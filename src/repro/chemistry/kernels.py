"""Common infrastructure for the simulated NWChem kernels.

Both simulated kernels (Hartree–Fock and CCSD) produce the same thing: for
each MPI process, an ordered stream of tasks, where each task fetches a set of
tile blocks from Global Arrays (the communication) and then runs a tensor
kernel on them (the computation).  This module holds the shared pieces:

* :class:`TaskBlueprint` — a kernel-level task description (blocks fetched +
  flop count) before it is turned into a timed :class:`~repro.traces.model.TraceTask`;
* :class:`KernelSimulator` — the base class that distributes blueprints over
  processes round-robin (mimicking Global Arrays' shared task counter) and
  converts them to timed trace tasks with a :class:`~repro.chemistry.machine.MachineModel`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..traces.model import Trace, TraceEnsemble, TraceTask
from .global_arrays import BlockRequest
from .machine import CASCADE, MachineModel

__all__ = ["TaskBlueprint", "KernelSimulator"]


@dataclass(frozen=True)
class TaskBlueprint:
    """A kernel task before timing: what it fetches and how much it computes."""

    name: str
    kind: str
    requests: tuple[BlockRequest, ...]
    flops: float
    #: Extra bytes fetched besides tensor blocks (index buffers, screening data...).
    overhead_bytes: float = 0.0
    #: Kernel efficiency relative to the machine's nominal compute efficiency
    #: (tensor transposes are memory bound and run far below peak).
    efficiency_factor: float = 1.0

    @property
    def transferred_bytes(self) -> float:
        """Bytes moved over the network for this task."""
        return sum(r.transferred_bytes for r in self.requests) + self.overhead_bytes


class KernelSimulator(abc.ABC):
    """Base class for the simulated molecular-chemistry kernels.

    Subclasses implement :meth:`blueprints`, the global ordered list of kernel
    tasks of one run.  The simulator then mimics Global Arrays' dynamic
    load-balancing counter by dealing blueprints to processes round-robin, and
    converts every blueprint into a timed trace task with the machine model.
    """

    #: Application label stored in the generated traces.
    application: str = "kernel"

    def __init__(
        self,
        *,
        processes: int = 150,
        machine: MachineModel = CASCADE,
        seed: int = 2019,
    ) -> None:
        if processes <= 0:
            raise ValueError("process count must be positive")
        self.processes = processes
        self.machine = machine
        self.seed = seed

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def blueprints(self, rng: np.random.Generator) -> Iterator[TaskBlueprint]:
        """Yield every kernel task of the run, in global submission order."""

    # ------------------------------------------------------------------ #
    def timed_task(self, blueprint: TaskBlueprint, index: int) -> TraceTask:
        """Convert a blueprint into a timed trace task."""
        volume = blueprint.transferred_bytes
        comm = self.machine.transfer_seconds(volume) if volume > 0 else 0.0
        efficiency = min(1.0, self.machine.compute_efficiency * blueprint.efficiency_factor)
        comp = (
            self.machine.compute_seconds(blueprint.flops, efficiency=efficiency)
            if blueprint.flops > 0
            else 0.0
        )
        return TraceTask(
            name=f"{blueprint.name}#{index}",
            volume_bytes=volume,
            comm_seconds=comm,
            comp_seconds=comp,
            kind=blueprint.kind,
        )

    def generate(self) -> TraceEnsemble:
        """Simulate the run and return one trace per process."""
        rng = np.random.default_rng(self.seed)
        streams: list[list[TraceTask]] = [[] for _ in range(self.processes)]
        for index, blueprint in enumerate(self.blueprints(rng)):
            rank = index % self.processes
            streams[rank].append(self.timed_task(blueprint, index))
        traces = [
            Trace(
                application=self.application,
                process=rank,
                tasks=stream,
                metadata=self.metadata(),
            )
            for rank, stream in enumerate(streams)
        ]
        return TraceEnsemble(application=self.application, traces=traces, metadata=self.metadata())

    def generate_trace(self, process: int = 0) -> Trace:
        """Single-process convenience wrapper around :meth:`generate`."""
        ensemble = self.generate()
        return ensemble[process]

    # ------------------------------------------------------------------ #
    def metadata(self) -> dict[str, str]:
        return {
            "machine": self.machine.name,
            "processes": str(self.processes),
            "seed": str(self.seed),
        }
