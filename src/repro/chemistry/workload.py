"""High-level entry points: generate the HF and CCSD trace ensembles.

These wrappers bundle the kernel simulators with the scaling knobs the
experiment harness needs (how many processes, how many traces to actually
keep, random seed), and provide the per-application calibration targets the
tests check against the paper:

* HF: nearly homogeneous tasks, communication dominated (roughly 20% possible
  overlap), ``mc`` around 176 KB;
* CCSD: heterogeneous tasks, balanced communication/computation (around 50%
  possible overlap), ``mc`` around 1.8 GB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..traces.model import Trace, TraceEnsemble
from .ccsd import CCSDSimulator
from .hartree_fock import HartreeFockSimulator
from .machine import CASCADE, MachineModel
from .molecules import SIOSI, URACIL

__all__ = [
    "WorkloadSpec",
    "HF_SPEC",
    "CCSD_SPEC",
    "hf_ensemble",
    "ccsd_ensemble",
    "hf_trace",
    "ccsd_trace",
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Calibration targets for one application (used by tests and reports)."""

    application: str
    min_capacity_bytes: float
    min_capacity_tolerance: float
    max_overlap_fraction_range: tuple[float, float]
    tasks_per_process_range: tuple[int, int]


#: Paper-reported characteristics of the HF traces.
HF_SPEC = WorkloadSpec(
    application="HF",
    min_capacity_bytes=176e3,
    min_capacity_tolerance=0.25,
    max_overlap_fraction_range=(0.10, 0.30),
    tasks_per_process_range=(300, 800),
)

#: Paper-reported characteristics of the CCSD traces.
CCSD_SPEC = WorkloadSpec(
    application="CCSD",
    min_capacity_bytes=1.8e9,
    min_capacity_tolerance=0.35,
    max_overlap_fraction_range=(0.35, 0.55),
    tasks_per_process_range=(300, 800),
)


def hf_ensemble(
    *,
    processes: int = 150,
    traces: int | None = None,
    machine: MachineModel = CASCADE,
    seed: int = 2019,
    scf_iterations: int = 1,
) -> TraceEnsemble:
    """Simulated HF (SiOSi, tile size 100) trace ensemble.

    ``processes`` is the size of the simulated run (which fixes how the global
    task list is dealt out); ``traces`` optionally keeps only the first few
    per-process traces, which is how the experiment harness scales a run down.
    """
    simulator = HartreeFockSimulator(
        SIOSI,
        processes=processes,
        machine=machine,
        seed=seed,
        scf_iterations=scf_iterations,
    )
    ensemble = simulator.generate()
    return ensemble if traces is None else ensemble.subset(traces)


def ccsd_ensemble(
    *,
    processes: int = 150,
    traces: int | None = None,
    machine: MachineModel = CASCADE,
    seed: int = 2019,
    cc_iterations: int = 1,
) -> TraceEnsemble:
    """Simulated CCSD (Uracil) trace ensemble."""
    simulator = CCSDSimulator(
        URACIL,
        processes=processes,
        machine=machine,
        seed=seed,
        cc_iterations=cc_iterations,
    )
    ensemble = simulator.generate()
    return ensemble if traces is None else ensemble.subset(traces)


def hf_trace(process: int = 0, **kwargs) -> Trace:
    """One HF per-process trace (see :func:`hf_ensemble` for the knobs)."""
    return hf_ensemble(**kwargs)[process]


def ccsd_trace(process: int = 0, **kwargs) -> Trace:
    """One CCSD per-process trace (see :func:`ccsd_ensemble` for the knobs)."""
    return ccsd_ensemble(**kwargs)[process]
