"""Simulated Coupled-Cluster Singles and Doubles (CCSD) workload.

The paper runs NWChem's CCSD (Tensor Contraction Engine) on Uracil over 150
processes.  The traces differ from HF in three ways (Section 5.1 / Figure 8):

* tile sizes are determined automatically from the orbital structure, so
  tasks are highly heterogeneous;
* communication and computation are roughly balanced overall, so close to
  half of the sequential time could be hidden by a perfect overlap;
* the largest tasks pin on the order of gigabytes of input data — the
  minimum workable capacity ``mc`` reported for the CCSD traces is 1.8 GB.

The simulator models one CCSD iteration as a set of tensor-contraction
*diagrams* operating on tiled occupied/virtual dimensions.  Each task updates
one output block of the doubles residual: it fetches the input blocks of the
two tensors being contracted (Global Arrays gets) and performs the block
contraction (a DGEMM whose cost is the product of the six involved extents).
Tensor-transpose (index-reordering) tasks, which are memory-bound, are issued
alongside — they are the communication-intensive population.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .global_arrays import DistributedTensor
from .kernels import KernelSimulator, TaskBlueprint
from .machine import CASCADE, DOUBLE_BYTES, MachineModel
from .molecules import URACIL, Molecule
from .tiling import Tiling, adaptive_tiling

__all__ = ["CCSDSimulator", "ContractionDiagram"]


@dataclass(frozen=True)
class ContractionDiagram:
    """One CCSD diagram: which spaces are contracted and how often it occurs.

    ``left`` and ``right`` name the index spaces (``"o"`` or ``"v"``) of the two
    input tensors; ``contracted`` those summed over.  ``weight`` scales how many
    block tasks the diagram contributes relative to the dominant ladder term.
    """

    name: str
    left: str
    right: str
    contracted: str
    weight: float = 1.0


#: The diagram mix of a CCSD doubles update, coarse-grained to the terms that
#: dominate data movement: particle-particle ladder, hole-hole ladder, ring
#: terms and the singles-dressed intermediates.
DEFAULT_DIAGRAMS: tuple[ContractionDiagram, ...] = (
    ContractionDiagram("pp_ladder", left="vvvv", right="vvoo", contracted="vv", weight=1.0),
    ContractionDiagram("hh_ladder", left="oooo", right="vvoo", contracted="oo", weight=0.6),
    ContractionDiagram("ring", left="vovo", right="vvoo", contracted="vo", weight=0.8),
    ContractionDiagram("singles_dress", left="vvov", right="vo", contracted="v", weight=0.4),
)


class CCSDSimulator(KernelSimulator):
    """Generates CCSD traces with heterogeneous, balanced comm/comp tasks."""

    application = "CCSD"

    def __init__(
        self,
        molecule: Molecule = URACIL,
        *,
        processes: int = 150,
        machine: MachineModel = CASCADE,
        seed: int = 2019,
        cc_iterations: int = 1,
        occupied_tiles: int = 4,
        virtual_tiles: int = 7,
        basis_scale: float = 6.4,
        diagrams: Sequence[ContractionDiagram] = DEFAULT_DIAGRAMS,
        transpose_fraction: float = 0.35,
        contracted_blocks_per_task: int = 2,
        max_block_bytes: float = 1.77e9,
        apex_interval: int = 50,
    ) -> None:
        super().__init__(processes=processes, machine=machine, seed=seed)
        if cc_iterations <= 0:
            raise ValueError("need at least one CC iteration")
        if not 0 <= transpose_fraction < 1:
            raise ValueError("transpose fraction must lie in [0, 1)")
        if contracted_blocks_per_task <= 0:
            raise ValueError("contracted_blocks_per_task must be positive")
        if apex_interval <= 0:
            raise ValueError("apex_interval must be positive")
        self.molecule = molecule
        self.cc_iterations = cc_iterations
        self.diagrams = tuple(diagrams)
        self.transpose_fraction = transpose_fraction
        self.contracted_blocks_per_task = contracted_blocks_per_task
        self.max_block_bytes = max_block_bytes
        self.apex_interval = apex_interval

        # Orbital spaces.  ``basis_scale`` inflates the virtual space to model
        # the large correlation-consistent basis used in the paper's runs (the
        # published mc of 1.8 GB requires virtual blocks of several hundred
        # orbitals).
        self.n_occupied = molecule.frozen_core_occupied()
        self.n_virtual = int(molecule.virtual_orbitals * basis_scale)

        tiling_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xCC5D]))
        self.occ_tiling: Tiling = adaptive_tiling(
            self.n_occupied, target_tiles=occupied_tiles, rng=tiling_rng, spread=0.5
        )
        # The virtual space always contains one dominant symmetry block whose
        # four-index integral block pins ``max_block_bytes`` of memory — this is
        # the block behind the paper's mc of ~1.8 GB.  The remaining virtual
        # orbitals are split into heterogeneous smaller blocks (clamped so no
        # accidental block outgrows the dominant one).
        dominant = max(2, int(round((max_block_bytes / DOUBLE_BYTES) ** 0.25)))
        dominant = min(dominant, max(2, self.n_virtual - (virtual_tiles - 1)))
        rest = adaptive_tiling(
            self.n_virtual - dominant,
            target_tiles=max(1, virtual_tiles - 1),
            rng=tiling_rng,
            spread=0.5,
        )
        rest_sizes = list(rest.sizes)
        while max(rest_sizes) > dominant:
            largest = rest_sizes.index(max(rest_sizes))
            smallest = rest_sizes.index(min(rest_sizes))
            excess = rest_sizes[largest] - dominant
            rest_sizes[largest] -= excess
            rest_sizes[smallest] += excess
        self.virt_tiling: Tiling = Tiling((dominant, *rest_sizes))

        def tensor(name: str, spaces: str) -> DistributedTensor:
            tilings = tuple(self.occ_tiling if s == "o" else self.virt_tiling for s in spaces)
            return DistributedTensor(
                name=name, tilings=tilings, processes=processes, element_bytes=DOUBLE_BYTES
            )

        self.tensors = {
            "vvvv": tensor("w_vvvv", "vvvv"),
            "oooo": tensor("w_oooo", "oooo"),
            "vovo": tensor("w_vovo", "vovo"),
            "vvov": tensor("w_vvov", "vvov"),
            "vvoo": tensor("t2", "vvoo"),
            "vo": tensor("t1", "vo"),
        }

    # ------------------------------------------------------------------ #
    def _tiling_for(self, space: str) -> Tiling:
        return self.occ_tiling if space == "o" else self.virt_tiling

    def _random_block(self, spaces: str, rng: np.random.Generator) -> tuple[int, ...]:
        return tuple(int(rng.integers(self._tiling_for(s).tile_count)) for s in spaces)

    def _block_extent(self, spaces: str, block: Sequence[int]) -> int:
        extent = 1
        for space, index in zip(spaces, block):
            extent *= self._tiling_for(space)[index]
        return extent

    def diagram_task_count(self, diagram: ContractionDiagram) -> int:
        """Number of block tasks one iteration of ``diagram`` contributes."""
        output_spaces = "vvoo"
        output_blocks = 1
        for space in output_spaces:
            output_blocks *= self._tiling_for(space).tile_count
        contracted_blocks = 1
        for space in diagram.contracted:
            contracted_blocks *= self._tiling_for(space).tile_count
        return max(1, int(output_blocks * contracted_blocks * diagram.weight))

    def task_count_per_iteration(self) -> int:
        total = sum(self.diagram_task_count(d) for d in self.diagrams)
        return int(total / (1.0 - self.transpose_fraction))

    # ------------------------------------------------------------------ #
    def blueprints(self, rng: np.random.Generator) -> Iterator[TaskBlueprint]:
        for iteration in range(self.cc_iterations):
            counter = 0
            for diagram in self.diagrams:
                count = self.diagram_task_count(diagram)
                for local_index in range(count):
                    # The ladder diagram periodically hits the dominant virtual
                    # symmetry block in all four indices: the ~1.8 GB transfers
                    # that define the minimum workable capacity of a trace.
                    force_apex = diagram.left == "vvvv" and local_index % self.apex_interval == 0
                    yield self._contraction_task(
                        iteration, diagram, counter, rng, force_apex=force_apex
                    )
                    counter += 1
                    # Interleave memory-bound index-permutation (transpose)
                    # tasks at the configured rate.
                    if rng.random() < self.transpose_fraction:
                        yield self._transpose_task(iteration, diagram, counter, rng)
                        counter += 1

    # ------------------------------------------------------------------ #
    def _contraction_task(
        self,
        iteration: int,
        diagram: ContractionDiagram,
        counter: int,
        rng: np.random.Generator,
        *,
        force_apex: bool = False,
    ) -> TaskBlueprint:
        rank = counter % self.processes
        left_tensor = self.tensors[diagram.left]
        right_tensor = self.tensors[diagram.right]
        if force_apex:
            left_block = tuple(0 for _ in diagram.left)
        else:
            left_block = self._random_block(diagram.left, rng)
        left_request = left_tensor.request(left_block, from_rank=rank)
        if force_apex and left_request.local:
            # The dominant integral block is far larger than any single
            # process's Global Arrays share, so it always travels the network.
            left_request = type(left_request)(
                tensor=left_request.tensor,
                block=left_request.block,
                bytes=left_request.bytes,
                local=False,
            )

        # The task accumulates one output block over several contracted blocks:
        # it fetches one block of the *right* tensor per contracted block and
        # reuses the (much larger) left block for every partial DGEMM.
        right_requests = []
        flops = 0.0
        contracted_extent = self._block_extent(
            diagram.contracted, left_block[: len(diagram.contracted)]
        )
        left_free = max(1, self._block_extent(diagram.left, left_block) // max(1, contracted_extent))
        for _ in range(self.contracted_blocks_per_task):
            right_block = self._random_block(diagram.right, rng)
            right_requests.append(right_tensor.request(right_block, from_rank=rank))
            right_free = max(
                1, self._block_extent(diagram.right, right_block) // max(1, contracted_extent)
            )
            flops += 2.0 * left_free * right_free * contracted_extent

        return TaskBlueprint(
            name=f"ccsd_it{iteration}_{diagram.name}_{counter}",
            kind=f"contraction/{diagram.name}",
            requests=(left_request, *right_requests),
            flops=flops,
            overhead_bytes=4 * 1024,
            efficiency_factor=1.0,
        )

    def _transpose_task(
        self,
        iteration: int,
        diagram: ContractionDiagram,
        counter: int,
        rng: np.random.Generator,
    ) -> TaskBlueprint:
        rank = counter % self.processes
        tensor = self.tensors[diagram.right if len(diagram.right) == 4 else diagram.left]
        block = self._random_block("vvoo" if tensor.rank == 4 else "vo", rng)
        request = tensor.request(block, from_rank=rank)
        elements = request.bytes / DOUBLE_BYTES
        # An index permutation touches every element a couple of times and is
        # memory-bandwidth bound: model it as ~4 "effective flops" per element
        # at a low efficiency factor.
        return TaskBlueprint(
            name=f"ccsd_it{iteration}_sort_{diagram.name}_{counter}",
            kind="transpose",
            requests=(request,),
            flops=4.0 * elements,
            overhead_bytes=2 * 1024,
            efficiency_factor=0.12,
        )
