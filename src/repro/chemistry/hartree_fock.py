"""Simulated Hartree–Fock (SCF) workload.

The paper runs the double-precision Hartree–Fock module of NWChem on a SiOSi
(silica fragment) input with an explicit tile size of 100, on 150 processes.
The recorded per-process traces have three salient properties (Section 5.1 /
Figure 8):

* tasks are nearly homogeneous (fixed 100-wide tiles over the atomic-orbital
  dimension);
* the workload is communication dominated — at most roughly 20% of the
  sequential time can be hidden by overlap;
* the compute-intensive tasks that do exist have *small* communication times
  (which is why the SCMR heuristic shines at tight capacities);
* the minimum workable memory capacity ``mc`` is about 176 KB, i.e. the
  largest single task fetches two 100x100 double tiles plus bookkeeping data.

The simulator reproduces exactly that structure.  A Fock build iterates over
pairs of (bra, ket) tile blocks of the density/Fock matrices; each such
*quartet task* fetches the two density blocks it needs (Global Arrays get),
evaluates the surviving (heavily screened) two-electron integrals, and
accumulates into a local Fock buffer.  Interleaved with the quartet tasks,
each iteration issues a smaller number of *diagonalisation-preparation* tasks
(matrix-block transforms) that fetch a thin slice but compute more — the
compute-intensive, small-communication population of the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .global_arrays import DistributedTensor
from .kernels import KernelSimulator, TaskBlueprint
from .machine import CASCADE, DOUBLE_BYTES, MachineModel
from .molecules import SIOSI, Molecule
from .tiling import Tiling, fixed_tiling

__all__ = ["HartreeFockSimulator", "HF_TILE_SIZE"]

#: Tile size used by the paper's HF runs.
HF_TILE_SIZE = 100


@dataclass(frozen=True)
class _ScreeningModel:
    """Schwarz-screening survival model for quartet blocks.

    ``survival`` is the average fraction of integrals in a block that survive
    screening; blocks between far-apart tile pairs survive less.  The spread
    is mild, keeping the HF workload close to homogeneous.
    """

    base_survival: float = 0.0015
    spread: float = 0.35

    def sample(self, rng: np.random.Generator) -> float:
        factor = float(np.exp(rng.normal(0.0, self.spread)))
        return min(1.0, self.base_survival * factor)


class HartreeFockSimulator(KernelSimulator):
    """Generates HF (SCF Fock-build) traces with the paper's workload shape."""

    application = "HF"

    def __init__(
        self,
        molecule: Molecule = SIOSI,
        *,
        tile_size: int = HF_TILE_SIZE,
        scf_iterations: int = 1,
        processes: int = 150,
        machine: MachineModel = CASCADE,
        seed: int = 2019,
        screening: _ScreeningModel | None = None,
        flops_per_integral: float = 1.5,
        overhead_bytes: float = 16 * 1024,
        transform_interval: int = 24,
    ) -> None:
        super().__init__(processes=processes, machine=machine, seed=seed)
        if scf_iterations <= 0:
            raise ValueError("need at least one SCF iteration")
        if transform_interval <= 0:
            raise ValueError("transform interval must be positive")
        self.molecule = molecule
        self.tile_size = tile_size
        self.scf_iterations = scf_iterations
        self.screening = screening or _ScreeningModel()
        self.flops_per_integral = flops_per_integral
        self.overhead_bytes = overhead_bytes
        self.transform_interval = transform_interval

        self.ao_tiling: Tiling = fixed_tiling(molecule.basis_functions, tile_size)
        self.density = DistributedTensor(
            name="density",
            tilings=(self.ao_tiling, self.ao_tiling),
            processes=processes,
            element_bytes=DOUBLE_BYTES,
        )
        self.fock = DistributedTensor(
            name="fock",
            tilings=(self.ao_tiling, self.ao_tiling),
            processes=processes,
            element_bytes=DOUBLE_BYTES,
        )

    # ------------------------------------------------------------------ #
    def bra_ket_blocks(self) -> list[tuple[int, int]]:
        """Unique (i <= j) tile-pair blocks of the symmetric density matrix."""
        count = self.ao_tiling.tile_count
        return [(i, j) for i in range(count) for j in range(i, count)]

    def quartet_count_per_iteration(self) -> int:
        pairs = len(self.bra_ket_blocks())
        return pairs * pairs

    # ------------------------------------------------------------------ #
    def blueprints(self, rng: np.random.Generator) -> Iterator[TaskBlueprint]:
        pairs = self.bra_ket_blocks()
        for iteration in range(self.scf_iterations):
            for bra_index, bra in enumerate(pairs):
                for ket_index, ket in enumerate(pairs):
                    yield self._quartet_task(iteration, bra_index, bra, ket_index, ket, rng)
                    # Periodically the worker refreshes a Fock slice for the
                    # upcoming diagonalisation: a thin fetch with a dense
                    # matrix-matrix transform (compute intensive, small comm).
                    if (ket_index + 1) % self.transform_interval == 0:
                        yield self._transform_task(
                            iteration, bra_index * len(pairs) + ket_index, bra, rng
                        )

    # ------------------------------------------------------------------ #
    def _quartet_task(
        self,
        iteration: int,
        bra_index: int,
        bra: tuple[int, int],
        ket_index: int,
        ket: tuple[int, int],
        rng: np.random.Generator,
    ) -> TaskBlueprint:
        """One screened two-electron quartet block (communication-leaning).

        Most quartets only fetch the Coulomb density block ``D(kl)`` — the
        exchange block is already resident from the previous ket sweep.  The
        quartets that touch a new exchange column (roughly one in ten) fetch
        both blocks plus the Schwarz screening buffer; those are the largest
        tasks of the trace and define ``mc`` (about 176 KB with 100x100 tiles).
        """
        rank = (bra_index * len(self.bra_ket_blocks()) + ket_index) % self.processes
        coulomb = self.density.request(ket, from_rank=rank)
        needs_exchange_block = ket[1] == ket[0] or rng.random() < 0.08
        if needs_exchange_block:
            exchange = self.density.request((bra[0], ket[1]), from_rank=rank)
            requests = (coulomb, exchange)
            overhead = self.overhead_bytes
        else:
            requests = (coulomb,)
            overhead = self.overhead_bytes / 4
        shape_bra = self.ao_tiling[bra[0]] * self.ao_tiling[bra[1]]
        shape_ket = self.ao_tiling[ket[0]] * self.ao_tiling[ket[1]]
        survival = self.screening.sample(rng)
        integrals = shape_bra * shape_ket * survival
        return TaskBlueprint(
            name=f"hf_it{iteration}_fock_{bra_index}_{ket_index}",
            kind="fock_quartet",
            requests=requests,
            flops=integrals * self.flops_per_integral,
            overhead_bytes=overhead,
            efficiency_factor=0.8,
        )

    def _transform_task(
        self,
        iteration: int,
        transform_index: int,
        bra: tuple[int, int],
        rng: np.random.Generator,
    ) -> TaskBlueprint:
        """A Fock-slice transform: thin fetch, dense DGEMM (compute-leaning)."""
        bra_index = transform_index
        rank = bra_index % self.processes
        slice_rows = max(8, self.ao_tiling[bra[0]] // 4)
        slice_bytes = slice_rows * self.ao_tiling[bra[1]] * DOUBLE_BYTES
        request = self.fock.request(bra, from_rank=rank)
        thin_request = type(request)(
            tensor=request.tensor,
            block=request.block,
            bytes=float(slice_bytes),
            local=request.local,
        )
        # Transform cost: a slice-times-tile DGEMM (2 * rows * n * n flops),
        # jittered mildly to reflect varying convergence-acceleration work.
        n = self.ao_tiling[bra[1]]
        jitter = float(np.exp(rng.normal(0.0, 0.25)))
        flops = 2.0 * slice_rows * n * n * jitter
        return TaskBlueprint(
            name=f"hf_it{iteration}_trans_{bra_index}",
            kind="fock_transform",
            requests=(thin_request,),
            flops=flops,
            overhead_bytes=2 * 1024,
            efficiency_factor=1.0,
        )
