"""Molecular systems and orbital-space sizes for the simulated NWChem runs.

The paper runs Hartree–Fock on a SiOSi (silica fragment) input and CCSD on
Uracil.  What the data-transfer simulator needs from a molecule is the size of
its orbital spaces: the number of atomic-orbital basis functions (which fixes
the dimensions of the Fock/density matrices manipulated by HF) and the split
between occupied and virtual molecular orbitals (which fixes the dimensions of
the CCSD amplitude tensors).  These are derived here from simple per-element
electron and basis-function counts for a double-zeta-quality basis set — the
precision of these counts only shifts absolute task sizes, not the statistical
structure the evaluation depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["Element", "Molecule", "SIOSI", "URACIL", "PERIODIC_SNIPPET"]


@dataclass(frozen=True)
class Element:
    """Per-element data: nuclear charge and basis functions in a DZ-quality basis."""

    symbol: str
    atomic_number: int
    basis_functions: int


#: The handful of elements appearing in the paper's inputs.
PERIODIC_SNIPPET: Mapping[str, Element] = {
    "H": Element("H", 1, 5),
    "C": Element("C", 6, 14),
    "N": Element("N", 7, 14),
    "O": Element("O", 8, 14),
    "Si": Element("Si", 14, 18),
}


@dataclass(frozen=True)
class Molecule:
    """A molecular system described by its chemical formula.

    ``composition`` maps element symbols to atom counts.  Orbital-space sizes
    are derived assuming a closed-shell system: the number of occupied spatial
    orbitals is half the electron count, everything else is virtual.
    """

    name: str
    composition: Mapping[str, int]
    charge: int = 0

    def __post_init__(self) -> None:
        unknown = sorted(set(self.composition) - set(PERIODIC_SNIPPET))
        if unknown:
            raise ValueError(f"unknown elements {unknown}; extend PERIODIC_SNIPPET")
        if any(count <= 0 for count in self.composition.values()):
            raise ValueError("atom counts must be positive")

    @property
    def atom_count(self) -> int:
        return sum(self.composition.values())

    @property
    def electron_count(self) -> int:
        electrons = sum(
            PERIODIC_SNIPPET[symbol].atomic_number * count
            for symbol, count in self.composition.items()
        )
        return electrons - self.charge

    @property
    def basis_functions(self) -> int:
        """Number of atomic-orbital basis functions (HF matrix dimension)."""
        return sum(
            PERIODIC_SNIPPET[symbol].basis_functions * count
            for symbol, count in self.composition.items()
        )

    @property
    def occupied_orbitals(self) -> int:
        """Occupied spatial orbitals of the closed-shell reference."""
        electrons = self.electron_count
        if electrons % 2:
            raise ValueError(f"{self.name} is open-shell; the simulator assumes closed shells")
        return electrons // 2

    @property
    def virtual_orbitals(self) -> int:
        """Virtual (unoccupied) orbitals in the chosen basis."""
        return self.basis_functions - self.occupied_orbitals

    def frozen_core_occupied(self, frozen: int | None = None) -> int:
        """Occupied orbitals after freezing core orbitals (CCSD convention)."""
        if frozen is None:
            # One frozen core orbital per non-hydrogen first-row atom, five per Si.
            frozen = 0
            for symbol, count in self.composition.items():
                if symbol in ("C", "N", "O"):
                    frozen += count
                elif symbol == "Si":
                    frozen += 5 * count
        occupied = self.occupied_orbitals - frozen
        if occupied <= 0:
            raise ValueError("freezing removed every occupied orbital")
        return occupied


#: SiOSi zeolite fragment used for the paper's HF runs.  The published SiOSi
#: benchmark family (siosi3..siosi7) ranges from hundreds to tens of thousands
#: of basis functions; this member has 2300 basis functions, which with the
#: paper's tile size of 100 yields exactly 23 homogeneous tiles and per-process
#: task counts in the 300-800 range reported in Section 5.
SIOSI = Molecule(name="SiOSi", composition={"Si": 60, "O": 80, "H": 20})

#: Uracil (C4H4N2O2), the CCSD input of the paper.
URACIL = Molecule(name="Uracil", composition={"C": 4, "H": 4, "N": 2, "O": 2})
