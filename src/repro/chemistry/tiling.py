"""Tilings of orbital dimensions.

NWChem's tensor algebra operates on *tiles*: each dimension of a tensor is
split into contiguous blocks and tasks operate on one block per dimension.
Two tiling styles matter for the paper:

* HF takes an explicit ``tilesize`` parameter (the paper uses 100), producing
  nearly homogeneous tiles over the atomic-orbital dimension;
* CCSD derives its tile sizes automatically from the molecular structure
  (spin/spatial symmetry blocks), producing heterogeneous tiles over the
  occupied and virtual dimensions.

A :class:`Tiling` is just the list of tile lengths of one dimension, plus
helpers to look up tile extents and to iterate over tile indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Tiling", "fixed_tiling", "adaptive_tiling"]


@dataclass(frozen=True)
class Tiling:
    """Partition of a dimension of length ``sum(sizes)`` into contiguous tiles."""

    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("a tiling needs at least one tile")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("tile sizes must be positive")

    @property
    def dimension(self) -> int:
        """Total length of the tiled dimension."""
        return sum(self.sizes)

    @property
    def tile_count(self) -> int:
        return len(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.sizes)

    def __getitem__(self, index: int) -> int:
        return self.sizes[index]

    def offsets(self) -> tuple[int, ...]:
        """Start offset of each tile within the dimension."""
        out = []
        cursor = 0
        for size in self.sizes:
            out.append(cursor)
            cursor += size
        return tuple(out)

    @property
    def is_homogeneous(self) -> bool:
        """True when all tiles (except possibly the last remainder) are equal."""
        if len(self.sizes) <= 1:
            return True
        head = self.sizes[:-1]
        return len(set(head)) == 1 and self.sizes[-1] <= head[0]

    def heterogeneity(self) -> float:
        """Coefficient of variation of the tile sizes (0 = fully homogeneous)."""
        sizes = np.asarray(self.sizes, dtype=float)
        if sizes.mean() == 0:
            return 0.0
        return float(sizes.std() / sizes.mean())


def fixed_tiling(dimension: int, tile_size: int) -> Tiling:
    """Split ``dimension`` into tiles of ``tile_size`` (last tile holds the rest)."""
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    if tile_size <= 0:
        raise ValueError("tile size must be positive")
    full, rest = divmod(dimension, tile_size)
    sizes = [tile_size] * full
    if rest:
        sizes.append(rest)
    if not sizes:
        sizes = [dimension]
    return Tiling(tuple(sizes))


def adaptive_tiling(
    dimension: int,
    *,
    target_tiles: int,
    rng: np.random.Generator,
    spread: float = 0.6,
    minimum: int = 1,
) -> Tiling:
    """Heterogeneous tiling mimicking NWChem's symmetry-driven blocking.

    The dimension is split into ``target_tiles`` parts whose sizes follow a
    Dirichlet distribution; ``spread`` controls how uneven the parts are
    (smaller concentration → more heterogeneous).  Each part is at least
    ``minimum`` long.
    """
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    target_tiles = max(1, min(target_tiles, dimension // max(minimum, 1)))
    if target_tiles == 1:
        return Tiling((dimension,))
    concentration = max(1e-3, 1.0 / spread)
    weights = rng.dirichlet(np.full(target_tiles, concentration))
    budget = dimension - minimum * target_tiles
    sizes = (np.floor(weights * budget)).astype(int) + minimum
    # Distribute the rounding remainder over the largest tiles.
    remainder = dimension - int(sizes.sum())
    order = np.argsort(-weights)
    for i in range(remainder):
        sizes[order[i % target_tiles]] += 1
    return Tiling(tuple(int(s) for s in sizes))
