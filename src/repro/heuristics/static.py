"""Static-ordering heuristics (Section 4.1) and the submission-order baseline.

A static heuristic sorts the tasks once, up front, using only their
communication and computation times, then both resources follow that order
with the memory-respecting as-early-as-possible executor.

The five orders of Section 4.1 are:

* **OOSIM** — the order of the optimal infinite-memory schedule (Johnson);
* **IOCMS** — non-decreasing communication time;
* **DOCPS** — non-increasing computation time;
* **IOCCS** — non-decreasing communication + computation time;
* **DOCCS** — non-increasing communication + computation time.

``OS`` (order of submission) simply keeps the arbitrary order in which tasks
were handed to the runtime; it is the reference "do nothing" strategy of the
evaluation section.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.task import Task
from ..flowshop.johnson import johnson_order
from ..simulator.columnar import columnar_johnson_order, columnar_key_order
from ..simulator.engine import resolve_order
from ..simulator.online import OnlinePlanPolicy, WindowedPlanPolicy
from ..simulator.policies import FixedOrderPolicy
from .base import Category, Heuristic

__all__ = [
    "StaticOrderHeuristic",
    "OrderOfSubmission",
    "OptimalOrderInfiniteMemory",
    "IncreasingCommunication",
    "DecreasingComputation",
    "IncreasingCommPlusComp",
    "DecreasingCommPlusComp",
]


class StaticOrderHeuristic(Heuristic):
    """Base class: compute an order, then execute it under the memory constraint."""

    category = Category.STATIC

    def order(self, instance: Instance) -> Sequence[Task]:
        """Return the tasks of ``instance`` in the order to execute them."""
        raise NotImplementedError

    def kernel_policy(self, instance: Instance) -> FixedOrderPolicy:
        return FixedOrderPolicy(
            tuple(resolve_order(instance, self.order(instance))), name=self.name
        )

    def online_policy(self, instance: Instance) -> OnlinePlanPolicy:
        """Streaming form: re-run :meth:`order` on the ready set per arrival.

        The planner sees the arrived, un-transferred tasks as a windowed
        sub-instance (same capacity), so capacity-aware orders — bin packing
        in particular — re-plan against the full capacity each epoch.  With
        every release at zero this reduces to the offline fixed order.
        """

        def planner(ready: Sequence[Task]) -> list[Task]:
            window = Instance(ready, capacity=instance.capacity, name=instance.name)
            return resolve_order(window, self.order(window))

        return OnlinePlanPolicy(planner=planner, name=self.name)

    def window_policy(
        self, instance: Instance, windows: tuple[tuple[Task, ...], ...]
    ) -> WindowedPlanPolicy:
        """Pipelined batches: :meth:`order` plans each window in isolation."""

        def planner(window_tasks: Sequence[Task]) -> list[Task]:
            window = Instance(window_tasks, capacity=instance.capacity, name=instance.name)
            return resolve_order(window, self.order(window))

        return WindowedPlanPolicy(planner=planner, windows=windows, name=self.name)

    def schedule(self, instance: Instance) -> Schedule:
        return self.simulate(instance).schedule


class OrderOfSubmission(StaticOrderHeuristic):
    """OS — keep the (arbitrary) submission order."""

    name = "OS"
    category = Category.SUBMISSION
    description = "Order of submission: tasks are processed in the order they were given."

    def order(self, instance: Instance) -> Sequence[Task]:
        return instance.tasks


class _KeySortedHeuristic(StaticOrderHeuristic):
    """Static order obtained by sorting tasks with a key function."""

    #: Key function; ties are always broken by task name for determinism.
    key: Callable[[Task], float] = staticmethod(lambda task: 0.0)
    reverse: bool = False
    #: Column name of the key (``"comm"``/``"comp"``/``"total"``): lets
    #: large instances sort via the columnar argsort fast path, which is
    #: differential-tested to produce the identical permutation.
    columnar_key: str | None = None

    def order(self, instance: Instance) -> Sequence[Task]:
        if self.columnar_key is not None:
            fast = columnar_key_order(instance, key=self.columnar_key, reverse=self.reverse)
            if fast is not None:
                return fast
        key = type(self).key
        if self.reverse:
            return sorted(instance.tasks, key=lambda t: (-key(t), t.name))
        return sorted(instance.tasks, key=lambda t: (key(t), t.name))


class OptimalOrderInfiniteMemory(StaticOrderHeuristic):
    """OOSIM — Johnson's order executed under the memory constraint."""

    name = "OOSIM"
    description = "Order of the optimal infinite-memory schedule (Johnson's rule)."
    favorable_situation = "Memory capacity is not a restriction (optimal in that case)."

    def order(self, instance: Instance) -> Sequence[Task]:
        fast = columnar_johnson_order(instance)
        if fast is not None:
            return fast
        return johnson_order(instance.tasks)

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_relaxed


class IncreasingCommunication(_KeySortedHeuristic):
    """IOCMS — non-decreasing communication time."""

    name = "IOCMS"
    description = "Tasks sorted by non-decreasing communication time."
    favorable_situation = (
        "Memory capacity is not a restriction and tasks are compute intensive (optimal)."
    )
    key = staticmethod(lambda task: task.comm)
    columnar_key = "comm"

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_relaxed and features.mostly_compute_intensive


class DecreasingComputation(_KeySortedHeuristic):
    """DOCPS — non-increasing computation time."""

    name = "DOCPS"
    description = "Tasks sorted by non-increasing computation time."
    favorable_situation = (
        "Memory capacity is not a restriction and tasks are communication intensive (optimal)."
    )
    key = staticmethod(lambda task: task.comp)
    reverse = True
    columnar_key = "comp"

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_relaxed and features.mostly_communication_intensive


class IncreasingCommPlusComp(_KeySortedHeuristic):
    """IOCCS — non-decreasing communication plus computation time."""

    name = "IOCCS"
    description = "Tasks sorted by non-decreasing communication + computation time."
    favorable_situation = "Moderate memory capacity and most tasks are highly compute intensive."
    key = staticmethod(lambda task: task.total_time)
    columnar_key = "total"

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_moderate and features.mostly_highly_compute_intensive


class DecreasingCommPlusComp(_KeySortedHeuristic):
    """DOCCS — non-increasing communication plus computation time."""

    name = "DOCCS"
    description = "Tasks sorted by non-increasing communication + computation time."
    favorable_situation = (
        "Moderate memory capacity and most tasks are highly communication intensive."
    )
    key = staticmethod(lambda task: task.total_time)
    reverse = True
    columnar_key = "total"

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_moderate and features.mostly_highly_communication_intensive
