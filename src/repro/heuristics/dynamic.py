"""Dynamic-selection heuristics (Section 4.2).

Whenever the communication link is idle, a task is picked among those that
fit in the currently-available memory and induce the minimum idle time on the
computation resource; the tie between those candidates is broken by the
heuristic's criterion:

* **LCMR** — largest communication time;
* **SCMR** — smallest communication time;
* **MAMR** — maximum computation/communication ratio (most "accelerated").

If nothing fits, the link stays idle until the next computation completes and
frees memory.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..simulator.online import WindowedCriterionPolicy
from ..simulator.policies import (
    CriterionPolicy,
    largest_communication,
    maximum_acceleration,
    smallest_communication,
)
from .base import Category, Heuristic

__all__ = [
    "DynamicHeuristic",
    "LargestCommunicationFirst",
    "SmallestCommunicationFirst",
    "MaximumAccelerationFirst",
]


class DynamicHeuristic(Heuristic):
    """Base class wiring a selection criterion into the event-driven executor."""

    category = Category.DYNAMIC
    criterion = staticmethod(smallest_communication)

    def kernel_policy(self, instance: Instance) -> CriterionPolicy:
        return CriterionPolicy(criterion=type(self).criterion, name=self.name)

    def online_policy(self, instance: Instance) -> CriterionPolicy:
        """Dynamic selection is natively online: the criterion re-evaluates
        the candidate set at every decision point, and the streaming kernel
        simply restricts candidates to the tasks that have arrived."""
        return self.kernel_policy(instance)

    def window_policy(self, instance: Instance, windows) -> WindowedCriterionPolicy:
        """Pipelined batches: the criterion picks within the current window."""
        return WindowedCriterionPolicy(
            criterion=type(self).criterion, windows=windows, name=self.name
        )

    def schedule(self, instance: Instance) -> Schedule:
        return self.simulate(instance).schedule


class LargestCommunicationFirst(DynamicHeuristic):
    """LCMR — largest communication task respecting the memory restriction."""

    name = "LCMR"
    description = "Pick the fitting, minimum-idle task with the largest communication time."
    favorable_situation = (
        "Limited memory capacity and a significant share of tasks with large "
        "communication times are compute intensive."
    )
    criterion = staticmethod(largest_communication)

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_tight and features.large_comm_compute_fraction >= 0.5


class SmallestCommunicationFirst(DynamicHeuristic):
    """SCMR — smallest communication task respecting the memory restriction."""

    name = "SCMR"
    description = "Pick the fitting, minimum-idle task with the smallest communication time."
    favorable_situation = (
        "Limited memory capacity and a significant share of tasks with small "
        "communication times are compute intensive."
    )
    criterion = staticmethod(smallest_communication)

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_tight and features.small_comm_compute_fraction >= 0.5


class MaximumAccelerationFirst(DynamicHeuristic):
    """MAMR — maximum computation-to-communication ratio."""

    name = "MAMR"
    description = (
        "Pick the fitting, minimum-idle task with the largest computation/communication ratio."
    )
    favorable_situation = "Limited memory capacity and a significant percentage of tasks of both types."
    criterion = staticmethod(maximum_acceleration)

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_tight and features.mixed_intensity
