"""Registry of every heuristic evaluated in the paper.

The registry is the single source of truth used by the experiment harness,
the benchmarks and the examples: it exposes the heuristics by name, by
category, and as the exact line-ups of Figures 9/11 (all heuristics) and
Figures 10/12/13 (one best variant per category).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .base import Category, Heuristic, HeuristicInfo
from .baselines import BinPackingFirstFit, GilmoreGomory
from .corrected import (
    CorrectedLargestCommunication,
    CorrectedMaximumAcceleration,
    CorrectedSmallestCommunication,
)
from .dynamic import (
    LargestCommunicationFirst,
    MaximumAccelerationFirst,
    SmallestCommunicationFirst,
)
from .static import (
    DecreasingCommPlusComp,
    DecreasingComputation,
    IncreasingCommPlusComp,
    IncreasingCommunication,
    OptimalOrderInfiniteMemory,
    OrderOfSubmission,
)

__all__ = [
    "all_heuristics",
    "get_heuristic",
    "heuristics_by_category",
    "heuristic_names",
    "paper_figure_lineup",
    "category_members",
    "table6_rows",
]

_HEURISTIC_CLASSES = (
    OrderOfSubmission,
    GilmoreGomory,
    BinPackingFirstFit,
    OptimalOrderInfiniteMemory,
    IncreasingCommunication,
    DecreasingComputation,
    IncreasingCommPlusComp,
    DecreasingCommPlusComp,
    LargestCommunicationFirst,
    SmallestCommunicationFirst,
    MaximumAccelerationFirst,
    CorrectedLargestCommunication,
    CorrectedSmallestCommunication,
    CorrectedMaximumAcceleration,
)

#: Order of heuristics on the x-axis of Figures 9 and 11.
PAPER_FIGURE_ORDER = (
    "OS",
    "GG",
    "BP",
    "OOSIM",
    "IOCMS",
    "DOCPS",
    "IOCCS",
    "DOCCS",
    "LCMR",
    "SCMR",
    "MAMR",
    "OOLCMR",
    "OOSCMR",
    "OOMAMR",
)


def all_heuristics() -> dict[str, Heuristic]:
    """Fresh instances of every heuristic, keyed by name, in figure order."""
    instances = {cls.name: cls() for cls in _HEURISTIC_CLASSES}
    return {name: instances[name] for name in PAPER_FIGURE_ORDER}


def heuristic_names() -> tuple[str, ...]:
    return PAPER_FIGURE_ORDER


def get_heuristic(name: str) -> Heuristic:
    """Instantiate a heuristic by its paper acronym (case-insensitive)."""
    lookup = {cls.name.upper(): cls for cls in _HEURISTIC_CLASSES}
    try:
        return lookup[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown heuristic {name!r}; known names: {sorted(lookup)}"
        ) from None


def heuristics_by_category() -> dict[Category, list[Heuristic]]:
    """Heuristics grouped into the paper's categories."""
    groups: dict[Category, list[Heuristic]] = {}
    for heuristic in all_heuristics().values():
        groups.setdefault(heuristic.category, []).append(heuristic)
    return groups


def category_members(category: Category | str) -> list[Heuristic]:
    """All heuristics of one category (accepts the enum or its value)."""
    category = Category(category)
    return heuristics_by_category().get(category, [])


def paper_figure_lineup(names: Iterable[str] | None = None) -> list[Heuristic]:
    """The heuristics of Figures 9/11, optionally restricted to ``names``."""
    registry = all_heuristics()
    if names is None:
        return list(registry.values())
    return [registry[name] for name in names]


def table6_rows() -> list[HeuristicInfo]:
    """Heuristic / favorable-situation rows reproducing Table 6."""
    wanted = (
        "OOSIM",
        "IOCMS",
        "DOCPS",
        "IOCCS",
        "DOCCS",
        "LCMR",
        "SCMR",
        "MAMR",
        "OOLCMR",
        "OOSCMR",
        "OOMAMR",
    )
    registry = all_heuristics()
    return [registry[name].info for name in wanted]
