"""Deprecated heuristic registry — thin shims over :mod:`repro.api.registry`.

The hardcoded ``_HEURISTIC_CLASSES`` tuple is gone: every strategy now lives
in the pluggable solver registry of :mod:`repro.api` (paper acronyms, aliases
and categories included), and third-party solvers register through
``@repro.register_solver`` without touching this module.  The helpers below
keep the historical names working; each emits a :class:`DeprecationWarning`
pointing at its replacement.

The latent failure mode of the old module — ``all_heuristics`` raising a bare
``KeyError`` whenever a class name was missing from ``PAPER_FIGURE_ORDER`` —
is gone too: the line-up is validated explicitly and raises a
:class:`repro.api.SolverRegistrationError` naming the unregistered solver.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from .base import PAPER_FIGURE_ORDER, TABLE6_HEURISTICS, Category, Heuristic, HeuristicInfo

# NOTE: repro.api is imported lazily inside each shim. This module is pulled
# in by ``repro.heuristics.__init__`` while ``repro.api.registry`` may itself
# be mid-import (it needs ``heuristics.base``); a module-level import here
# would close that cycle.

__all__ = [
    "all_heuristics",
    "get_heuristic",
    "heuristics_by_category",
    "heuristic_names",
    "paper_figure_lineup",
    "category_members",
    "table6_rows",
    "PAPER_FIGURE_ORDER",
]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.heuristics.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def all_heuristics() -> dict[str, Heuristic]:
    """Fresh instances of every paper heuristic, keyed by name, in figure order.

    .. deprecated:: 1.1
        Use :func:`repro.api.paper_lineup` (list) or
        :func:`repro.api.available_solvers` (metadata) instead.
    """
    from ..api.registry import paper_lineup

    _deprecated("all_heuristics", "repro.api.paper_lineup")
    return {solver.name: solver for solver in paper_lineup()}


def heuristic_names() -> tuple[str, ...]:
    """.. deprecated:: 1.1  Use :data:`repro.api.PAPER_FIGURE_ORDER`."""
    _deprecated("heuristic_names", "repro.api.PAPER_FIGURE_ORDER")
    return PAPER_FIGURE_ORDER


def get_heuristic(name: str) -> Heuristic:
    """Instantiate a heuristic by its paper acronym (case-insensitive).

    .. deprecated:: 1.1
        Use :func:`repro.api.get_solver`, which also resolves aliases and
        the non-heuristic solvers (``GGX``, ``lp.k``).
    """
    from ..api.registry import UnknownSolverError, get_solver

    _deprecated("get_heuristic", "repro.api.get_solver")
    try:
        return get_solver(name)
    except UnknownSolverError as error:
        raise KeyError(f"unknown heuristic {name!r}; {error}") from None


def heuristics_by_category() -> dict[Category, list[Heuristic]]:
    """Paper heuristics grouped into the paper's categories.

    .. deprecated:: 1.1
        Use ``repro.api.resolve_solvers("category:<name>")`` instead.
    """
    from ..api.registry import paper_lineup

    _deprecated("heuristics_by_category", 'repro.api.resolve_solvers("category:...")')
    groups: dict[Category, list[Heuristic]] = {}
    for solver in paper_lineup():
        groups.setdefault(solver.category, []).append(solver)
    return groups


def category_members(category: Category | str) -> list[Heuristic]:
    """All paper heuristics of one category (accepts the enum or its value).

    .. deprecated:: 1.1
        Use ``repro.api.resolve_solvers(f"category:{name}")`` instead.
    """
    from ..api.registry import paper_lineup

    _deprecated("category_members", 'repro.api.resolve_solvers("category:...")')
    category = Category(category)
    return [solver for solver in paper_lineup() if solver.category is category]


def paper_figure_lineup(names: Iterable[str] | None = None) -> list[Heuristic]:
    """The heuristics of Figures 9/11, optionally restricted to ``names``.

    .. deprecated:: 1.1  Use :func:`repro.api.paper_lineup`.
    """
    from ..api.registry import SolverRegistrationError, paper_lineup

    _deprecated("paper_figure_lineup", "repro.api.paper_lineup")
    if names is None:
        return paper_lineup()
    try:
        return paper_lineup(names)
    except SolverRegistrationError as error:
        # The pre-facade registry raised KeyError for unknown names; keep
        # that contract for legacy callers.
        raise KeyError(f"unknown heuristic in line-up: {error}") from None


def table6_rows() -> list[HeuristicInfo]:
    """Heuristic / favorable-situation rows reproducing Table 6.

    .. deprecated:: 1.1
        Use :func:`repro.api.available_solvers` and read each
        :class:`~repro.api.SolverInfo` instead.
    """
    from ..api.registry import get_solver

    _deprecated("table6_rows", "repro.api.available_solvers")
    return [get_solver(name).info for name in TABLE6_HEURISTICS]
