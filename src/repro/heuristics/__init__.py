"""Data-transfer ordering heuristics (Sections 4.1-4.4 of the paper)."""

from .base import Category, Heuristic, HeuristicInfo
from .baselines import BinPackingFirstFit, GilmoreGomory, first_fit_bins
from .corrected import (
    CorrectedHeuristic,
    CorrectedLargestCommunication,
    CorrectedMaximumAcceleration,
    CorrectedSmallestCommunication,
)
from .dynamic import (
    DynamicHeuristic,
    LargestCommunicationFirst,
    MaximumAccelerationFirst,
    SmallestCommunicationFirst,
)
from .registry import (
    PAPER_FIGURE_ORDER,
    all_heuristics,
    category_members,
    get_heuristic,
    heuristic_names,
    heuristics_by_category,
    paper_figure_lineup,
    table6_rows,
)
from .static import (
    DecreasingCommPlusComp,
    DecreasingComputation,
    IncreasingCommPlusComp,
    IncreasingCommunication,
    OptimalOrderInfiniteMemory,
    OrderOfSubmission,
    StaticOrderHeuristic,
)

__all__ = [
    "Category",
    "Heuristic",
    "HeuristicInfo",
    "StaticOrderHeuristic",
    "DynamicHeuristic",
    "CorrectedHeuristic",
    "OrderOfSubmission",
    "OptimalOrderInfiniteMemory",
    "IncreasingCommunication",
    "DecreasingComputation",
    "IncreasingCommPlusComp",
    "DecreasingCommPlusComp",
    "GilmoreGomory",
    "BinPackingFirstFit",
    "LargestCommunicationFirst",
    "SmallestCommunicationFirst",
    "MaximumAccelerationFirst",
    "CorrectedLargestCommunication",
    "CorrectedSmallestCommunication",
    "CorrectedMaximumAcceleration",
    "PAPER_FIGURE_ORDER",
    "all_heuristics",
    "category_members",
    "first_fit_bins",
    "get_heuristic",
    "heuristic_names",
    "heuristics_by_category",
    "paper_figure_lineup",
    "table6_rows",
]
