"""Static order with dynamic corrections (Section 4.3).

These heuristics precompute the OMIM order (Johnson's rule) and follow it as
long as the next task fits in memory.  When it does not fit — i.e. the link
would sit idle because of the memory constraint — a task is picked dynamically
among the fitting, minimum-idle candidates, the static order is updated, and
execution continues.  The dynamic tie-breaking criterion gives the three
variants OOLCMR, OOSCMR and OOMAMR.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..flowshop.johnson import johnson_order
from ..simulator.columnar import columnar_johnson_order
from ..simulator.online import OnlineCorrectedPolicy, WindowedCorrectedPolicy
from ..simulator.policies import (
    CorrectedOrderPolicy,
    largest_communication,
    maximum_acceleration,
    smallest_communication,
)
from .base import Category, Heuristic

__all__ = [
    "CorrectedHeuristic",
    "CorrectedLargestCommunication",
    "CorrectedSmallestCommunication",
    "CorrectedMaximumAcceleration",
]


class CorrectedHeuristic(Heuristic):
    """Base class: OMIM static order + dynamic correction criterion."""

    category = Category.CORRECTED
    criterion = staticmethod(smallest_communication)

    def kernel_policy(self, instance: Instance) -> CorrectedOrderPolicy:
        ordered = columnar_johnson_order(instance)
        if ordered is None:
            ordered = johnson_order(instance.tasks)
        order = tuple(task.name for task in ordered)
        return CorrectedOrderPolicy(order=order, criterion=type(self).criterion, name=self.name)

    def online_policy(self, instance: Instance) -> OnlineCorrectedPolicy:
        """Streaming form: Johnson's rule re-ranked over the ready set on
        every arrival, corrected among the fitting arrived tasks."""
        return OnlineCorrectedPolicy(
            planner=johnson_order, criterion=type(self).criterion, name=self.name
        )

    def window_policy(self, instance: Instance, windows) -> WindowedCorrectedPolicy:
        """Pipelined batches: Johnson's rule per window, windowed corrections."""
        return WindowedCorrectedPolicy(
            planner=johnson_order,
            criterion=type(self).criterion,
            windows=windows,
            name=self.name,
        )

    def schedule(self, instance: Instance) -> Schedule:
        return self.simulate(instance).schedule


class CorrectedLargestCommunication(CorrectedHeuristic):
    """OOLCMR — OMIM order, corrected with the largest-communication rule."""

    name = "OOLCMR"
    description = "Johnson order; on memory blockage pick the largest-communication fitting task."
    favorable_situation = (
        "Moderate memory capacity and a significant percentage of communication-intensive tasks."
    )
    criterion = staticmethod(largest_communication)

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_moderate and features.significant_communication_share


class CorrectedSmallestCommunication(CorrectedHeuristic):
    """OOSCMR — OMIM order, corrected with the smallest-communication rule."""

    name = "OOSCMR"
    description = "Johnson order; on memory blockage pick the smallest-communication fitting task."
    favorable_situation = (
        "Moderate memory capacity and a significant percentage of compute-intensive tasks."
    )
    criterion = staticmethod(smallest_communication)

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_moderate and features.significant_compute_share


class CorrectedMaximumAcceleration(CorrectedHeuristic):
    """OOMAMR — OMIM order, corrected with the maximum-acceleration rule."""

    name = "OOMAMR"
    description = (
        "Johnson order; on memory blockage pick the fitting task with the largest comp/comm ratio."
    )
    favorable_situation = (
        "Moderate memory capacity and a significant percentage of highly compute and "
        "communication intensive tasks."
    )
    criterion = staticmethod(maximum_acceleration)

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_moderate and features.highly_intense_mix
