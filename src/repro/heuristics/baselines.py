"""Baseline static heuristics from previous work (Section 4.4).

* **GG** — the Gilmore–Gomory order for the 2-machine *no-wait* flowshop.
  The order is computed as if no extra memory were available (the no-wait
  assumption) and then executed under the actual memory capacity, exactly as
  in the paper; that mismatch explains why GG underperforms.
* **BP** — a First-Fit bin-packing pass groups tasks whose memory footprints
  fit together under the capacity; the execution order is bin 0's tasks, then
  bin 1's, and so on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.instance import Instance
from ..core.task import Task
from ..flowshop.gilmore_gomory import gilmore_gomory_order
from ..flowshop.nowait import held_karp_nowait_order
from .base import Category
from .static import StaticOrderHeuristic

__all__ = ["GilmoreGomory", "ExactNoWait", "BinPackingFirstFit", "first_fit_bins"]


class GilmoreGomory(StaticOrderHeuristic):
    """GG — Gilmore–Gomory no-wait sequence under the memory constraint."""

    name = "GG"
    category = Category.STATIC
    description = (
        "Order from the Gilmore-Gomory no-wait two-machine flowshop algorithm, "
        "executed under the memory capacity."
    )
    favorable_situation = (
        "No extra memory beyond a single task in flight (the no-wait assumption it optimises for)."
    )

    def order(self, instance: Instance) -> Sequence[Task]:
        return gilmore_gomory_order(instance.tasks).order

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_pressure >= 0.95


class ExactNoWait(StaticOrderHeuristic):
    """GGX — *exact* no-wait sequence, executed under the memory capacity.

    Same modelling assumption as GG (no extra memory beyond the task in
    flight), but the no-wait sequencing problem is solved exactly with the
    Held–Karp dynamic program when the instance is small enough
    (``exact_limit`` tasks); beyond that the polynomial Gilmore–Gomory
    procedure takes over.  Useful as a tight baseline on the worked examples
    and as the "flowshop exact" member of the solver registry.
    """

    name = "GGX"
    category = Category.STATIC
    description = (
        "Exact no-wait two-machine flowshop order (Held-Karp up to exact_limit tasks, "
        "Gilmore-Gomory beyond), executed under the memory capacity."
    )
    favorable_situation = (
        "Small batches with no extra memory beyond a single task in flight."
    )

    #: Largest instance solved exactly (Held-Karp is O(2^n n^2)).
    exact_limit: int = 16

    def order(self, instance: Instance) -> Sequence[Task]:
        if len(instance.tasks) <= self.exact_limit:
            return held_karp_nowait_order(instance.tasks)[0]
        return gilmore_gomory_order(instance.tasks).order

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_pressure >= 0.95 and features.task_count <= cls.exact_limit


def first_fit_bins(tasks: Sequence[Task], capacity: float) -> list[list[Task]]:
    """First-Fit bin packing of ``tasks`` by memory footprint.

    Tasks are considered in the given (submission) order; each is placed in the
    first bin whose residual capacity accommodates its memory, a new bin being
    opened when none does.  With an infinite capacity a single bin is returned.
    """
    if not math.isfinite(capacity):
        return [list(tasks)] if tasks else []
    bins: list[list[Task]] = []
    residual: list[float] = []
    for task in tasks:
        if task.memory > capacity + 1e-12:
            raise ValueError(
                f"task {task.name!r} needs {task.memory:g} memory but bins have capacity {capacity:g}"
            )
        for index, space in enumerate(residual):
            if task.memory <= space + 1e-12:
                bins[index].append(task)
                residual[index] = space - task.memory
                break
        else:
            bins.append([task])
            residual.append(capacity - task.memory)
    return bins


class BinPackingFirstFit(StaticOrderHeuristic):
    """BP — First-Fit bins by memory footprint, executed bin after bin."""

    name = "BP"
    category = Category.STATIC
    description = "First-Fit bin packing by memory footprint; bins are processed in creation order."
    favorable_situation = "Very tight memory capacities where grouping by footprint avoids blocking."

    def order(self, instance: Instance) -> Sequence[Task]:
        bins = first_fit_bins(instance.tasks, instance.capacity)
        return [task for bucket in bins for task in bucket]

    @classmethod
    def favors(cls, features) -> bool:
        return features.memory_pressure >= 0.9
