"""Common heuristic interface and category metadata.

Every heuristic of the paper maps a Problem DT instance to a feasible
schedule.  They are grouped into the four categories compared in Figures 10,
12 and 13:

* ``submission`` — the trivial *order of submission* baseline (OS);
* ``static`` — order computed up front (Section 4.1 + the Gilmore-Gomory and
  bin-packing baselines of Section 4.4);
* ``dynamic`` — task picked on the fly when the link is idle (Section 4.2);
* ``corrected`` — static order with dynamic corrections (Section 4.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..simulator.engine import SimulationResult, simulate as _simulate
from ..simulator.policies import SelectionPolicy
from ..simulator.resources import MachineModel

__all__ = ["Category", "Heuristic", "HeuristicInfo", "PAPER_FIGURE_ORDER", "TABLE6_HEURISTICS"]

#: The proposed heuristics listed in Table 6 (with their favorable
#: situations), in the paper's row order.
TABLE6_HEURISTICS: tuple[str, ...] = (
    "OOSIM",
    "IOCMS",
    "DOCPS",
    "IOCCS",
    "DOCCS",
    "LCMR",
    "SCMR",
    "MAMR",
    "OOLCMR",
    "OOSCMR",
    "OOMAMR",
)

#: Order of heuristics on the x-axis of Figures 9 and 11 of the paper.
#: Lives here (not in the registry) so both the solver registry and the
#: legacy shims can import it without a cycle.
PAPER_FIGURE_ORDER: tuple[str, ...] = (
    "OS",
    "GG",
    "BP",
    "OOSIM",
    "IOCMS",
    "DOCPS",
    "IOCCS",
    "DOCCS",
    "LCMR",
    "SCMR",
    "MAMR",
    "OOLCMR",
    "OOSCMR",
    "OOMAMR",
)


class Category(str, Enum):
    """Heuristic families used for the per-category comparisons of the paper."""

    SUBMISSION = "submission"
    STATIC = "static"
    DYNAMIC = "dynamic"
    CORRECTED = "corrected"
    MILP = "milp"
    PORTFOLIO = "portfolio"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class HeuristicInfo:
    """Descriptive metadata attached to each heuristic (Table 6)."""

    name: str
    category: Category
    description: str
    favorable_situation: str = ""


class Heuristic(abc.ABC):
    """A strategy that orders the data transfers of an instance.

    Subclasses implement :meth:`schedule`; the instance's memory capacity is
    always respected by construction (the executors enforce it), so the result
    is feasible whenever every task individually fits in memory.
    """

    #: Short identifier used in reports and figures (e.g. ``"IOCMS"``).
    name: str = "heuristic"
    #: Category for the best-variant-per-category comparisons.
    category: Category = Category.STATIC
    #: One-line description.
    description: str = ""
    #: Favorable scenario quoted from Table 6 of the paper.
    favorable_situation: str = ""

    @abc.abstractmethod
    def schedule(self, instance: Instance) -> Schedule:
        """Return a feasible schedule of ``instance``."""

    @classmethod
    def favors(cls, features) -> bool:
        """Machine-readable form of :attr:`favorable_situation` (Table 6).

        ``features`` is an :class:`~repro.portfolio.features.InstanceFeatures`
        vector; each Table 6 heuristic overrides this with the explicit
        predicate its prose row describes, so algorithm selectors
        (:class:`~repro.portfolio.selector.Table6Selector`) can act on the
        situation instead of parsing it.  The default claims nothing.
        """
        return False

    def kernel_policy(self, instance: Instance) -> SelectionPolicy | None:
        """Policy expressing this heuristic on the unified simulation kernel.

        Returns ``None`` when the heuristic does not run on the kernel (the
        MILP wrappers); such heuristics fall back to :meth:`schedule` in
        :meth:`simulate` and support neither machine models nor event traces.
        """
        return None

    def online_policy(self, instance: Instance) -> SelectionPolicy | None:
        """Policy expressing this heuristic on the streaming runtime.

        Online policies only ever see the *arrived* tasks and re-rank the
        ready set on every arrival (:mod:`repro.simulator.online`).  Returns
        ``None`` when the heuristic has no online form (the MILP wrappers);
        such heuristics reject release-dated instances in :meth:`simulate`.
        """
        return None

    def window_policy(
        self, instance: Instance, windows: "tuple[tuple, ...]"
    ) -> SelectionPolicy | None:
        """Policy for *pipelined* batched execution over the given windows.

        ``windows`` partitions the submission order into batches; the policy
        schedules one window at a time but never drains the pipeline — the
        next window's transfers start as soon as link and memory allow
        (:mod:`repro.simulator.online`).  Returns ``None`` when the
        heuristic has no windowed form (the MILP wrappers)."""
        return None

    @property
    def runs_on_kernel(self) -> bool:
        """Whether this heuristic executes on the unified kernel."""
        return type(self).kernel_policy is not Heuristic.kernel_policy

    def simulate(
        self,
        instance: Instance,
        *,
        machine: MachineModel | None = None,
        record: bool = False,
        engine: str | None = None,
    ) -> SimulationResult:
        """Run this heuristic on the kernel, optionally on a custom machine.

        ``record=True`` additionally returns the structured
        :class:`~repro.simulator.events.EventTrace` of the run.  Instances
        whose tasks carry release (arrival) dates are routed through the
        heuristic's :meth:`online_policy` — arrival-awareness is a property
        of the data, not a separate execution mode.  ``engine`` selects the
        execution engine (``"auto"`` | ``"object"`` | ``"columnar"``, see
        :func:`repro.simulator.columnar.resolve_engine`); the columnar fast
        path is used when it supports the configuration, falling back to
        the object kernel otherwise.
        """
        if instance.has_releases:
            policy = self.online_policy(instance)
            if policy is None:
                raise ValueError(
                    f"heuristic {self.name!r} has no online policy and cannot "
                    "schedule release-dated instances; drop the release dates "
                    "(Instance.without_releases()) for an offline plan"
                )
            return _simulate(instance, policy, machine=machine, record=record, engine=engine)
        policy = self.kernel_policy(instance)
        if policy is None:
            if machine is not None:
                raise ValueError(
                    f"heuristic {self.name!r} does not run on the simulation kernel "
                    "and cannot target a custom machine model"
                )
            if record:
                raise ValueError(
                    f"heuristic {self.name!r} does not run on the simulation kernel "
                    "and cannot record an event trace"
                )
            return SimulationResult(schedule=self.schedule(instance), trace=None)
        return _simulate(instance, policy, machine=machine, record=record, engine=engine)

    def __call__(self, instance: Instance) -> Schedule:
        return self.schedule(instance)

    @property
    def info(self) -> HeuristicInfo:
        return HeuristicInfo(
            name=self.name,
            category=self.category,
            description=self.description,
            favorable_situation=self.favorable_situation,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, category={self.category.value!r})"
