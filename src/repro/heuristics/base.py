"""Common heuristic interface and category metadata.

Every heuristic of the paper maps a Problem DT instance to a feasible
schedule.  They are grouped into the four categories compared in Figures 10,
12 and 13:

* ``submission`` — the trivial *order of submission* baseline (OS);
* ``static`` — order computed up front (Section 4.1 + the Gilmore-Gomory and
  bin-packing baselines of Section 4.4);
* ``dynamic`` — task picked on the fly when the link is idle (Section 4.2);
* ``corrected`` — static order with dynamic corrections (Section 4.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from enum import Enum

from ..core.instance import Instance
from ..core.schedule import Schedule

__all__ = ["Category", "Heuristic", "HeuristicInfo", "PAPER_FIGURE_ORDER", "TABLE6_HEURISTICS"]

#: The proposed heuristics listed in Table 6 (with their favorable
#: situations), in the paper's row order.
TABLE6_HEURISTICS: tuple[str, ...] = (
    "OOSIM",
    "IOCMS",
    "DOCPS",
    "IOCCS",
    "DOCCS",
    "LCMR",
    "SCMR",
    "MAMR",
    "OOLCMR",
    "OOSCMR",
    "OOMAMR",
)

#: Order of heuristics on the x-axis of Figures 9 and 11 of the paper.
#: Lives here (not in the registry) so both the solver registry and the
#: legacy shims can import it without a cycle.
PAPER_FIGURE_ORDER: tuple[str, ...] = (
    "OS",
    "GG",
    "BP",
    "OOSIM",
    "IOCMS",
    "DOCPS",
    "IOCCS",
    "DOCCS",
    "LCMR",
    "SCMR",
    "MAMR",
    "OOLCMR",
    "OOSCMR",
    "OOMAMR",
)


class Category(str, Enum):
    """Heuristic families used for the per-category comparisons of the paper."""

    SUBMISSION = "submission"
    STATIC = "static"
    DYNAMIC = "dynamic"
    CORRECTED = "corrected"
    MILP = "milp"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class HeuristicInfo:
    """Descriptive metadata attached to each heuristic (Table 6)."""

    name: str
    category: Category
    description: str
    favorable_situation: str = ""


class Heuristic(abc.ABC):
    """A strategy that orders the data transfers of an instance.

    Subclasses implement :meth:`schedule`; the instance's memory capacity is
    always respected by construction (the executors enforce it), so the result
    is feasible whenever every task individually fits in memory.
    """

    #: Short identifier used in reports and figures (e.g. ``"IOCMS"``).
    name: str = "heuristic"
    #: Category for the best-variant-per-category comparisons.
    category: Category = Category.STATIC
    #: One-line description.
    description: str = ""
    #: Favorable scenario quoted from Table 6 of the paper.
    favorable_situation: str = ""

    @abc.abstractmethod
    def schedule(self, instance: Instance) -> Schedule:
        """Return a feasible schedule of ``instance``."""

    def __call__(self, instance: Instance) -> Schedule:
        return self.schedule(instance)

    @property
    def info(self) -> HeuristicInfo:
        return HeuristicInfo(
            name=self.name,
            category=self.category,
            description=self.description,
            favorable_situation=self.favorable_situation,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, category={self.category.value!r})"
