"""Mixed-integer programming formulation and the windowed lp.k heuristic."""

from .formulation import DataTransferMilp, MilpResult, solve_exact
from .iterative import IterativeMilpHeuristic, iterative_milp_schedule

__all__ = [
    "DataTransferMilp",
    "MilpResult",
    "IterativeMilpHeuristic",
    "iterative_milp_schedule",
    "solve_exact",
]
