"""Mixed-integer linear programming formulation of Problem DT (Section 4.5).

The formulation is the paper's, with one variable block per task pair:

* continuous ``s_i`` / ``s'_i`` — start of the communication / computation of
  task ``i`` (ends are ``s_i + CM_i`` and ``s'_i + CP_i``);
* continuous ``l`` — the makespan being minimised;
* binary ``a_ij`` — 1 when the communication of ``j`` completes before the
  communication of ``i`` starts (order on the link);
* binary ``b_ij`` — 1 when the computation of ``j`` completes before the
  computation of ``i`` starts (order on the processing unit);
* binary ``c_ij`` — 1 when the computation of ``j`` completes before the
  communication of ``i`` starts (memory of ``j`` already released).

The memory constraint counts, at the start of each communication, every task
transferred before it (``a``) whose computation has not yet completed (``c``).
The paper adds the strengthening constraints ``a_ij + a_ji = 1``,
``b_ij + b_ji = 1``, ``c_ij <= a_ij``, ``c_ij <= b_ij`` and
``c_ij + c_ji <= 1``; they are included here as well.

The solver is :func:`scipy.optimize.milp` (HiGHS).  The paper used GLPK
v4.65; the model is identical, only the solver differs (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task

__all__ = ["MilpResult", "DataTransferMilp", "solve_exact"]

#: Tolerance used when post-processing fractional solver output.
_EPS = 1e-6


@dataclass(frozen=True)
class MilpResult:
    """Outcome of one MILP solve."""

    schedule: Schedule
    makespan: float
    status: int
    message: str
    optimal: bool

    @property
    def feasible(self) -> bool:
        return len(self.schedule) > 0 or self.makespan == 0.0


@dataclass
class _FixedPlacement:
    """A task whose events are imposed (used by the windowed lp.k solver)."""

    task: Task
    comm_start: float
    comp_start: float


class DataTransferMilp:
    """Builder/solver for the Problem DT MILP.

    Parameters
    ----------
    instance:
        Capacity and task set; only the tasks passed to :meth:`solve` are
        scheduled (the instance provides the memory capacity).
    time_limit:
        Wall-clock limit (seconds) handed to HiGHS for each solve.
    """

    def __init__(self, instance: Instance, *, time_limit: float | None = 60.0):
        self.instance = instance
        self.time_limit = time_limit

    # ------------------------------------------------------------------ #
    def solve(
        self,
        tasks: Sequence[Task] | None = None,
        *,
        fixed: Sequence[_FixedPlacement] | Mapping[str, tuple[float, float]] | None = None,
        comm_release: float = 0.0,
        comp_release: float = 0.0,
    ) -> MilpResult:
        """Solve the MILP for ``tasks`` (defaults to the whole instance).

        ``fixed`` imposes the events of already-committed tasks (their start
        variables get equality bounds); ``comm_release`` / ``comp_release``
        lower-bound the start of the free tasks on each resource, modelling
        resources still busy with earlier work.
        """
        free_tasks = list(self.instance.tasks if tasks is None else tasks)
        fixed_list = self._normalise_fixed(fixed)
        all_tasks = free_tasks + [f.task for f in fixed_list]
        n = len(all_tasks)
        if n == 0:
            return MilpResult(Schedule.empty(), 0.0, status=0, message="empty", optimal=True)

        capacity = self.instance.capacity
        raw_horizon = (
            sum(t.comm + t.comp for t in all_tasks)
            + max(comm_release, comp_release)
            + max((f.comp_start + f.task.comp for f in fixed_list), default=0.0)
        )
        # The solver's absolute feasibility tolerances (~1e-6) would otherwise
        # allow tolerance-sized overlaps of memory intervals when task times
        # are tiny (trace times are in seconds, often sub-millisecond), so all
        # times are rescaled to a horizon of ~1e3 inside the model and scaled
        # back when the solution is read out.
        scale = 1000.0 / raw_horizon if raw_horizon > 0 else 1.0
        comm_release *= scale
        comp_release *= scale
        horizon = raw_horizon * scale
        big_m = horizon if horizon > 0 else 1.0

        index = {task.name: i for i, task in enumerate(all_tasks)}
        n_free = len(free_tasks)

        # Variable layout: [s_0..s_{n-1} | sp_0..sp_{n-1} | l | a_(i,j) | b_(i,j) | c_(i,j)]
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        pair_index = {pair: k for k, pair in enumerate(pairs)}
        n_pairs = len(pairs)
        n_vars = 2 * n + 1 + 3 * n_pairs
        s_of = lambda i: i
        sp_of = lambda i: n + i
        l_var = 2 * n
        a_of = lambda i, j: 2 * n + 1 + pair_index[(i, j)]
        b_of = lambda i, j: 2 * n + 1 + n_pairs + pair_index[(i, j)]
        c_of = lambda i, j: 2 * n + 1 + 2 * n_pairs + pair_index[(i, j)]

        lower = np.zeros(n_vars)
        upper = np.full(n_vars, math.inf)
        integrality = np.zeros(n_vars)
        upper[2 * n + 1 :] = 1.0
        integrality[2 * n + 1 :] = 1.0

        # Resource-release lower bounds for free tasks; equality bounds for fixed ones.
        for i, task in enumerate(all_tasks):
            if i < n_free:
                lower[s_of(i)] = comm_release
                lower[sp_of(i)] = max(comm_release + task.comm * scale, comp_release)
            else:
                placement = fixed_list[i - n_free]
                lower[s_of(i)] = upper[s_of(i)] = placement.comm_start * scale
                lower[sp_of(i)] = upper[sp_of(i)] = placement.comp_start * scale
        upper[[s_of(i) for i in range(n)]] = np.minimum(upper[[s_of(i) for i in range(n)]], big_m)
        upper[[sp_of(i) for i in range(n)]] = np.minimum(upper[[sp_of(i) for i in range(n)]], big_m)
        upper[l_var] = big_m

        rows: list[np.ndarray] = []
        lbs: list[float] = []
        ubs: list[float] = []

        def add(coeffs: dict[int, float], lb: float, ub: float) -> None:
            row = np.zeros(n_vars)
            for var, coeff in coeffs.items():
                row[var] += coeff
            rows.append(row)
            lbs.append(lb)
            ubs.append(ub)

        comm = [t.comm * scale for t in all_tasks]
        comp = [t.comp * scale for t in all_tasks]
        mem = [t.memory for t in all_tasks]

        for i in range(n):
            # Task completes before the makespan:  sp_i + CP_i <= l
            add({sp_of(i): 1.0, l_var: -1.0}, -math.inf, -comp[i])
            # Valid ordering: s_i + CM_i <= sp_i
            add({s_of(i): 1.0, sp_of(i): -1.0}, -math.inf, -comm[i])

        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                # Exclusive use of the communication link.
                add({s_of(j): 1.0, s_of(i): -1.0, a_of(i, j): big_m}, -math.inf, big_m - comm[j])
                # Exclusive use of the computation resource.
                add({sp_of(j): 1.0, sp_of(i): -1.0, b_of(i, j): big_m}, -math.inf, big_m - comp[j])
                # c_ij consistency: sp_j + CP_j <= s_i + (1 - c_ij) * M
                add({sp_of(j): 1.0, s_of(i): -1.0, c_of(i, j): big_m}, -math.inf, big_m - comp[j])
                #                   s_i <= sp_j + CP_j + c_ij * M   (strict form relaxed)
                add({s_of(i): 1.0, sp_of(j): -1.0, c_of(i, j): -big_m}, -math.inf, comp[j])
                # Strengthening: c_ij <= a_ij, c_ij <= b_ij, c_ij + c_ji <= 1.
                add({c_of(i, j): 1.0, a_of(i, j): -1.0}, -math.inf, 0.0)
                add({c_of(i, j): 1.0, b_of(i, j): -1.0}, -math.inf, 0.0)
                if i < j:
                    add({c_of(i, j): 1.0, c_of(j, i): 1.0}, -math.inf, 1.0)
                    add({a_of(i, j): 1.0, a_of(j, i): 1.0}, 1.0, 1.0)
                    add({b_of(i, j): 1.0, b_of(j, i): 1.0}, 1.0, 1.0)

        if math.isfinite(capacity):
            for i in range(n):
                coeffs: dict[int, float] = {}
                for r in range(n):
                    if r == i:
                        continue
                    coeffs[a_of(i, r)] = mem[r]
                    coeffs[c_of(i, r)] = -mem[r]
                add(coeffs, -math.inf, capacity - mem[i])

        objective = np.zeros(n_vars)
        objective[l_var] = 1.0

        options: dict[str, float] = {}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        result = milp(
            c=objective,
            constraints=LinearConstraint(np.array(rows), np.array(lbs), np.array(ubs)),
            integrality=integrality,
            bounds=Bounds(lower, upper),
            options=options or None,
        )

        if result.x is None:
            return MilpResult(
                Schedule.empty(),
                makespan=math.inf,
                status=result.status,
                message=result.message,
                optimal=False,
            )

        entries = []
        for i, task in enumerate(all_tasks):
            # Clamp solver tolerance noise (tiny negatives, computation starting
            # a hair before the transfer completes).
            comm_start = max(0.0, float(result.x[s_of(i)]) / scale)
            comp_start = max(0.0, float(result.x[sp_of(i)]) / scale)
            comp_start = max(comp_start, comm_start + task.comm)
            entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
        schedule = Schedule(entries)
        return MilpResult(
            schedule=schedule,
            makespan=schedule.makespan,
            status=result.status,
            message=result.message,
            optimal=result.status == 0,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _normalise_fixed(
        fixed: Sequence[_FixedPlacement] | Mapping[str, tuple[float, float]] | None,
    ) -> list[_FixedPlacement]:
        if fixed is None:
            return []
        if isinstance(fixed, Mapping):
            raise TypeError("mapping form requires task objects; pass _FixedPlacement entries")
        return list(fixed)


def retime_by_orders(instance: Instance, schedule: Schedule) -> Schedule:
    """Re-time ``schedule`` as-early-as-possible while keeping its two orders.

    MILP solutions carry the solver's integer/primal feasibility tolerances,
    which can translate into infinitesimal overlaps of memory intervals.  The
    repaired schedule keeps the communication and computation orders chosen by
    the solver but recomputes exact event times with the memory-aware
    executor; if the executor cannot realise the orders (which only happens
    when the original solution was materially infeasible), the input schedule
    is returned unchanged.
    """
    from ..simulator.static_executor import execute_two_orders

    if len(schedule) == 0:
        return schedule
    comm_order = schedule.communication_order()
    comp_order = schedule.computation_order()
    repaired = execute_two_orders(instance, comm_order, comp_order)
    return schedule if repaired is None else repaired


def solve_exact(instance: Instance, *, time_limit: float | None = 60.0) -> MilpResult:
    """Solve the full MILP for ``instance`` (practical only for small task sets).

    The returned schedule is re-timed with :func:`retime_by_orders` so that it
    is exactly feasible (the raw solver output may carry tolerance noise).
    """
    result = DataTransferMilp(instance, time_limit=time_limit).solve()
    if len(result.schedule) == 0:
        return result
    repaired = retime_by_orders(instance, result.schedule)
    return MilpResult(
        schedule=repaired,
        makespan=repaired.makespan,
        status=result.status,
        message=result.message,
        optimal=result.optimal,
    )
