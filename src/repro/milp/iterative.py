"""Windowed MILP heuristic (``lp.k`` in Figure 7).

Solving the full MILP is hopeless beyond a handful of tasks, so the paper
solves it *iteratively* on consecutive windows of ``k = 3..6`` tasks taken in
submission order.  At each window boundary the events of tasks that already
started but have not finished are fixed, and the remaining events stay
flexible.  Here this is realised as follows for each window:

* the new ``k`` tasks are free variables;
* committed tasks whose computation has not completed by the time the link
  becomes available again are included with *fixed* events (they still hold
  memory and occupy the processor);
* the free tasks may not start a transfer before the link has finished the
  committed transfers, nor a computation before the processor has finished the
  committed computations.

The makespan of the concatenation of every window is the heuristic's value,
reported as ``lp.k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.validation import TOLERANCE
from ..heuristics.base import Category, Heuristic
from .formulation import DataTransferMilp, _FixedPlacement, retime_by_orders

__all__ = ["IterativeMilpHeuristic", "iterative_milp_schedule"]


def iterative_milp_schedule(
    instance: Instance,
    window: int,
    *,
    time_limit_per_window: float | None = 10.0,
) -> Schedule:
    """Schedule ``instance`` with the windowed MILP of window size ``window``."""
    if window <= 0:
        raise ValueError("window size must be positive")
    solver = DataTransferMilp(instance, time_limit=time_limit_per_window)
    committed: list[ScheduledTask] = []
    comm_available = 0.0
    comp_available = 0.0

    tasks = list(instance.tasks)
    for start in range(0, len(tasks), window):
        chunk = tasks[start : start + window]
        active = [
            _FixedPlacement(task=e.task, comm_start=e.comm_start, comp_start=e.comp_start)
            for e in committed
            if e.comp_end > comm_available + TOLERANCE
        ]
        result = solver.solve(
            chunk,
            fixed=active,
            comm_release=comm_available,
            comp_release=comp_available,
        )
        if result.schedule is None or math.isinf(result.makespan):
            raise RuntimeError(
                f"window MILP failed (status {result.status}): {result.message}"
            )
        placed = {e.name: e for e in result.schedule}
        for task in chunk:
            entry = placed[task.name]
            committed.append(
                ScheduledTask(task=task, comm_start=entry.comm_start, comp_start=entry.comp_start)
            )
        comm_available = max(e.comm_end for e in committed)
        comp_available = max(e.comp_end for e in committed)

    # Re-time the concatenation of all windows to strip solver tolerance noise
    # (the orders are kept, only the event times are recomputed exactly).
    return retime_by_orders(instance, Schedule(committed))


@dataclass
class IterativeMilpHeuristic(Heuristic):
    """``lp.k`` — iterative MILP with windows of ``window`` tasks."""

    window: int = 4
    time_limit_per_window: float | None = 10.0

    category = Category.MILP
    description = "Mixed-integer program solved over successive windows of the submission order."
    favorable_situation = "Very small task batches, where the window covers the whole problem."

    def __post_init__(self) -> None:
        self.name = f"lp.{self.window}"

    def schedule(self, instance: Instance) -> Schedule:
        return iterative_milp_schedule(
            instance, self.window, time_limit_per_window=self.time_limit_per_window
        )
