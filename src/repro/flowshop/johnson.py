"""Johnson's algorithm for the two-machine flowshop (Algorithm 1 of the paper).

With an unconstrained memory, Problem DT reduces to the classic 2-machine
flowshop ``F2 || Cmax``: the communication time is the processing time on the
first machine and the computation time the processing time on the second.
Johnson's rule yields an optimal permutation:

1. tasks with ``comp >= comm`` (compute intensive) first, by non-decreasing
   communication time;
2. then tasks with ``comp < comm`` (communication intensive), by
   non-increasing computation time.

The schedule built from that order (both resources processing tasks in the
same order, each as early as possible) achieves the optimal makespan, called
**OMIM** in the paper and used as the lower bound of every experiment.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task

__all__ = ["johnson_order", "johnson_schedule", "sequence_schedule_infinite_memory", "omim_makespan"]


def johnson_order(tasks: Iterable[Task]) -> list[Task]:
    """Return the tasks ordered by Johnson's rule.

    Ties are broken by task name so the order is deterministic, which keeps
    every downstream experiment reproducible.
    """
    tasks = list(tasks)
    compute_intensive = [t for t in tasks if t.comp >= t.comm]
    communication_intensive = [t for t in tasks if t.comp < t.comm]
    compute_intensive.sort(key=lambda t: (t.comm, t.name))
    communication_intensive.sort(key=lambda t: (-t.comp, t.name))
    return compute_intensive + communication_intensive


def sequence_schedule_infinite_memory(tasks: Sequence[Task]) -> Schedule:
    """Schedule ``tasks`` in the given order on both resources, ignoring memory.

    This is the inner loop of Algorithm 1: each transfer starts as soon as the
    link is free, each computation as soon as both its transfer and the
    processing unit are done with earlier work.
    """
    comm_available = 0.0
    comp_available = 0.0
    entries: list[ScheduledTask] = []
    for task in tasks:
        comm_start = comm_available
        comp_start = max(comm_start + task.comm, comp_available)
        entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
        comm_available = comm_start + task.comm
        comp_available = comp_start + task.comp
    return Schedule(entries)


def johnson_schedule(instance: Instance) -> Schedule:
    """Optimal infinite-memory schedule of ``instance`` (Algorithm 1)."""
    return sequence_schedule_infinite_memory(johnson_order(instance.tasks))


def omim_makespan(instance: Instance) -> float:
    """Optimal Makespan with Infinite Memory — the paper's lower bound."""
    return johnson_schedule(instance).makespan
