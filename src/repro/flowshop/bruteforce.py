"""Exhaustive-search optima for small Problem DT instances.

These searches are exponential and only intended for tests, examples and the
Proposition 1 reproduction (Table 2 / Figure 3), where the paper itself uses
exhaustive search to establish the best permutation schedule.

Two notions of optimum are provided:

* :func:`best_permutation_schedule` — best schedule over all task orders when
  both resources follow the *same* order (the convention of every heuristic in
  the paper) and events are scheduled as early as possible under the memory
  constraint.
* :func:`best_schedule_allowing_reordering` — best schedule when the
  computation order may differ from the communication order.  Used to exhibit
  the Proposition 1 gap.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.task import Task
from ..simulator.static_executor import execute_fixed_order, execute_two_orders

__all__ = [
    "best_permutation_schedule",
    "best_schedule_allowing_reordering",
    "enumerate_permutation_makespans",
]

_MAX_TASKS = 8


def _guard(instance: Instance, limit: int = _MAX_TASKS) -> None:
    if len(instance) > limit:
        raise ValueError(
            f"brute force limited to {limit} tasks, instance has {len(instance)}"
        )


def enumerate_permutation_makespans(instance: Instance) -> dict[tuple[str, ...], float]:
    """Makespan of every same-order schedule, keyed by the task-name order."""
    _guard(instance)
    result: dict[tuple[str, ...], float] = {}
    for perm in itertools.permutations(instance.tasks):
        schedule = execute_fixed_order(instance, perm)
        result[tuple(t.name for t in perm)] = schedule.makespan
    return result


def best_permutation_schedule(instance: Instance) -> tuple[Schedule, float]:
    """Optimal same-order schedule (exhaustive over task orders)."""
    _guard(instance)
    best: Schedule | None = None
    best_makespan = math.inf
    for perm in itertools.permutations(instance.tasks):
        schedule = execute_fixed_order(instance, perm)
        if schedule.makespan < best_makespan - 1e-12:
            best_makespan = schedule.makespan
            best = schedule
    assert best is not None
    return best, best_makespan


def best_schedule_allowing_reordering(instance: Instance) -> tuple[Schedule, float]:
    """Best schedule over all pairs (communication order, computation order).

    Events are placed as early as possible given the two orders; this may not
    reach the absolute optimum of Problem DT (which could require inserted
    idle time), but it is enough to certify the Proposition 1 gap because the
    paper's improved schedule is itself an as-early-as-possible schedule for a
    pair of orders.
    """
    _guard(instance, limit=7)
    best: Schedule | None = None
    best_makespan = math.inf
    tasks = list(instance.tasks)
    for comm_perm in itertools.permutations(tasks):
        for comp_perm in itertools.permutations(tasks):
            schedule = execute_two_orders(instance, comm_perm, comp_perm)
            if schedule is None:
                continue
            if schedule.makespan < best_makespan - 1e-12:
                best_makespan = schedule.makespan
                best = schedule
    assert best is not None
    return best, best_makespan
