"""Flowshop substrate: Johnson's rule, exchange lemma, no-wait sequencing,
exhaustive search and the 3-Partition NP-completeness reduction."""

from .bruteforce import (
    best_permutation_schedule,
    best_schedule_allowing_reordering,
    enumerate_permutation_makespans,
)
from .exchange import SwapOutcome, evaluate_swap, lemma1_applies, lemma1_case
from .gilmore_gomory import GilmoreGomoryResult, gilmore_gomory_order
from .johnson import (
    johnson_order,
    johnson_schedule,
    omim_makespan,
    sequence_schedule_infinite_memory,
)
from .nowait import (
    brute_force_nowait_order,
    held_karp_nowait_order,
    nowait_makespan,
    nowait_transition_cost,
)
from .npcomplete import (
    DTReduction,
    ThreePartitionInstance,
    partition_from_schedule,
    reduce_three_partition,
    schedule_from_partition,
    solve_three_partition,
)

__all__ = [
    "DTReduction",
    "GilmoreGomoryResult",
    "SwapOutcome",
    "ThreePartitionInstance",
    "best_permutation_schedule",
    "best_schedule_allowing_reordering",
    "brute_force_nowait_order",
    "enumerate_permutation_makespans",
    "evaluate_swap",
    "gilmore_gomory_order",
    "held_karp_nowait_order",
    "johnson_order",
    "johnson_schedule",
    "lemma1_applies",
    "lemma1_case",
    "nowait_makespan",
    "nowait_transition_cost",
    "omim_makespan",
    "partition_from_schedule",
    "reduce_three_partition",
    "schedule_from_partition",
    "sequence_schedule_infinite_memory",
    "solve_three_partition",
]
