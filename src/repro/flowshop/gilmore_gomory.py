"""Gilmore–Gomory sequencing for the no-wait two-machine flowshop.

The paper (Section 4.4) borrows the classical Gilmore–Gomory procedure for
"sequencing a one state-variable machine" to build a static task order: each
task is a job whose start state is its communication time and whose end state
is its computation time; the cost of scheduling task ``k`` right after task
``j`` is the non-overlapped communication time ``max(comm_k - comp_j, 0)``.
Minimising the total cost over a single tour is exactly the no-wait 2-machine
flowshop makespan problem, which Gilmore and Gomory solve in polynomial time.

The implementation follows the classical three phases:

1. **Assignment** — sort the ``comp`` values (machine-2 / end states) and the
   ``comm`` values (machine-1 / start states) and match them rank by rank.
   This minimises the total transition cost over *all* successor assignments,
   but generally yields several sub-tours.
2. **Patching** — merge sub-tours with adjacent interchanges (in end-state
   order).  Interchanges are selected Kruskal-style by increasing marginal
   cost until a single tour remains.
3. **Reconstruction** — apply the selected interchanges to the successor map.
   Several application orders are tried (the classical rule splits interchanges
   into two groups applied in opposite index orders); the realised tour with
   the smallest no-wait makespan is returned.

A dummy job with zero times closes the tour, so the returned object is an open
sequence starting right after the dummy — i.e. a task order usable by the
static-order executor.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.task import Task
from .nowait import nowait_makespan

__all__ = ["gilmore_gomory_order", "GilmoreGomoryResult"]


_DUMMY_NAME = "__gg_dummy__"


@dataclass(frozen=True)
class GilmoreGomoryResult:
    """Outcome of the Gilmore–Gomory sequencing."""

    order: tuple[Task, ...]
    makespan: float
    assignment_cost: float
    patching_cost: float

    @property
    def lower_bound(self) -> float:
        """Assignment + patching cost plus total computation time.

        The classical analysis guarantees an application order achieving this
        value; the realised ``makespan`` may exceed it only if the heuristic
        reconstruction picked a sub-optimal application order.
        """
        return self.assignment_cost + self.patching_cost


class _DisjointSet:
    """Union-find over sub-tour identifiers (used by the Kruskal patching)."""

    def __init__(self, size: int):
        self._parent = list(range(size))

    def find(self, x: int) -> int:
        while self._parent[x] != x:
            self._parent[x] = self._parent[self._parent[x]]
            x = self._parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True


def _transition(end_state: float, start_state: float) -> float:
    """Cost of moving the machine from ``end_state`` to ``start_state``."""
    return max(start_state - end_state, 0.0)


def _cycles_of(successor: Sequence[int]) -> list[list[int]]:
    seen = [False] * len(successor)
    cycles = []
    for start in range(len(successor)):
        if seen[start]:
            continue
        cycle = []
        node = start
        while not seen[node]:
            seen[node] = True
            cycle.append(node)
            node = successor[node]
        cycles.append(cycle)
    return cycles


def _tour_from_successors(successor: Sequence[int], start: int) -> list[int]:
    tour = []
    node = successor[start]
    while node != start:
        tour.append(node)
        node = successor[node]
    return tour


def _apply_interchanges(successor: list[int], positions: Sequence[int], order: Sequence[int]) -> list[int]:
    """Swap the successors of ``p`` and ``p+1`` for each selected position."""
    result = list(successor)
    for p in order:
        result[positions[p]], result[positions[p + 1]] = (
            result[positions[p + 1]],
            result[positions[p]],
        )
    return result


def gilmore_gomory_order(tasks: Iterable[Task]) -> GilmoreGomoryResult:
    """Sequence ``tasks`` with the Gilmore–Gomory procedure.

    Returns the order together with its no-wait makespan and the cost split
    between the assignment and the patching phases.
    """
    tasks = list(tasks)
    if not tasks:
        return GilmoreGomoryResult(order=(), makespan=0.0, assignment_cost=0.0, patching_cost=0.0)
    if len(tasks) == 1:
        only = tasks[0]
        return GilmoreGomoryResult(
            order=(only,),
            makespan=nowait_makespan([only]),
            assignment_cost=only.comm,
            patching_cost=0.0,
        )

    dummy = Task(name=_DUMMY_NAME, comm=0.0, comp=0.0)
    jobs = [dummy] + tasks
    n = len(jobs)

    # ------------------------------------------------------------------ #
    # Phase 1: rank-matching assignment.
    # ``positions`` lists job indices by non-decreasing end state (comp); the
    # k-th such job receives as successor the job with the k-th smallest start
    # state (comm).
    # ------------------------------------------------------------------ #
    positions = sorted(range(n), key=lambda i: (jobs[i].comp, jobs[i].name))
    by_start = sorted(range(n), key=lambda i: (jobs[i].comm, jobs[i].name))
    successor = [0] * n
    for rank in range(n):
        successor[positions[rank]] = by_start[rank]
    assignment_cost = sum(
        _transition(jobs[i].comp, jobs[successor[i]].comm) for i in range(n)
    )

    # ------------------------------------------------------------------ #
    # Phase 2: Kruskal patching over the assignment's sub-tours.
    # Candidate interchanges swap the successors of positions k and k+1 (in
    # end-state order); the marginal cost is evaluated against the original
    # assignment, as in the classical analysis.
    # ------------------------------------------------------------------ #
    cycles = _cycles_of(successor)
    cycle_of = [0] * n
    for cycle_id, cycle in enumerate(cycles):
        for node in cycle:
            cycle_of[node] = cycle_id

    patching_cost = 0.0
    selected: list[int] = []
    if len(cycles) > 1:
        def marginal(k: int) -> float:
            i, j = positions[k], positions[k + 1]
            before = _transition(jobs[i].comp, jobs[successor[i]].comm) + _transition(
                jobs[j].comp, jobs[successor[j]].comm
            )
            after = _transition(jobs[i].comp, jobs[successor[j]].comm) + _transition(
                jobs[j].comp, jobs[successor[i]].comm
            )
            return after - before

        candidates = sorted(range(n - 1), key=lambda k: (marginal(k), k))
        dsu = _DisjointSet(len(cycles))
        for k in candidates:
            i, j = positions[k], positions[k + 1]
            if dsu.union(cycle_of[i], cycle_of[j]):
                selected.append(k)
                patching_cost += marginal(k)
            if len(selected) == len(cycles) - 1:
                break

    # ------------------------------------------------------------------ #
    # Phase 3: reconstruction.  The classical rule applies one group of
    # interchanges by decreasing index and the other by increasing index; we
    # try the natural candidate orders and keep the best realised tour (each
    # candidate is guaranteed to be a single Hamiltonian tour because every
    # selected interchange merges two distinct sub-tours).
    # ------------------------------------------------------------------ #
    selected.sort()
    orders_to_try: list[list[int]] = []
    if selected:
        increasing = list(range(len(selected)))
        decreasing = increasing[::-1]
        group_up = [idx for idx, k in enumerate(selected) if jobs[successor[positions[k]]].comm >= jobs[positions[k]].comp]
        group_down = [idx for idx in increasing if idx not in group_up]
        classical = sorted(group_up, key=lambda idx: -selected[idx]) + sorted(
            group_down, key=lambda idx: selected[idx]
        )
        reversed_classical = classical[::-1]
        orders_to_try = [classical, reversed_classical, increasing, decreasing]
        if len(selected) <= 7:
            orders_to_try.extend(list(p) for p in itertools.permutations(increasing))
    else:
        orders_to_try = [[]]

    best_order: tuple[Task, ...] | None = None
    best_makespan = float("inf")
    dummy_index = 0
    seen_signatures: set[tuple[int, ...]] = set()
    for application in orders_to_try:
        signature = tuple(application)
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        patched = _apply_interchanges(successor, positions, [selected[idx] for idx in application])
        if len(_cycles_of(patched)) != 1:
            continue
        tour_indices = _tour_from_successors(patched, dummy_index)
        order = tuple(jobs[i] for i in tour_indices)
        makespan = nowait_makespan(order)
        if makespan < best_makespan - 1e-12:
            best_makespan = makespan
            best_order = order

    assert best_order is not None, "patched assignment should always contain a single tour"
    return GilmoreGomoryResult(
        order=best_order,
        makespan=best_makespan,
        assignment_cost=assignment_cost,
        patching_cost=patching_cost,
    )
