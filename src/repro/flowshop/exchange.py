"""Exchange-argument utilities (Lemma 1 of the paper).

Lemma 1 states that swapping two contiguous tasks ``A`` and ``B`` (``A``
before ``B``) in an infinite-memory permutation schedule does not *improve*
the makespan when one of the following holds:

(i)   ``CP_A >= CM_A``, ``CP_B >= CM_B`` and ``CM_A <= CM_B``;
(ii)  ``CP_A <  CM_A``, ``CP_B <  CM_B`` and ``CP_A >= CP_B``;
(iii) ``CP_A >= CM_A`` and ``CP_B <  CM_B``.

Those are exactly the configurations in which Johnson's rule keeps ``A``
before ``B``; the optimality proof (Theorem 1) converts any optimal schedule
to Johnson's by repeated swaps covered by the lemma.  The helpers here let the
test-suite check the lemma exhaustively and by property-based search.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.task import Task

__all__ = ["lemma1_applies", "lemma1_case", "SwapOutcome", "evaluate_swap"]


def lemma1_case(first: Task, second: Task) -> int | None:
    """Return the Lemma 1 case (1, 2 or 3) that applies, or ``None``.

    ``first`` plays the role of task ``A`` (scheduled first) and ``second`` of
    task ``B``.
    """
    a, b = first, second
    if a.comp >= a.comm and b.comp >= b.comm and a.comm <= b.comm:
        return 1
    if a.comp < a.comm and b.comp < b.comm and a.comp >= b.comp:
        return 2
    if a.comp >= a.comm and b.comp < b.comm:
        return 3
    return None


def lemma1_applies(first: Task, second: Task) -> bool:
    """True when swapping ``first`` and ``second`` cannot improve the makespan."""
    return lemma1_case(first, second) is not None


@dataclass(frozen=True, slots=True)
class SwapOutcome:
    """Resource availability after scheduling two tasks in both orders.

    ``original`` schedules ``(A, B)``, ``swapped`` schedules ``(B, A)``; both
    start from the same early-availability times ``t1`` (communication) and
    ``t2`` (computation).  Each field holds ``(comm_available, comp_available)``
    after the pair completes.
    """

    original: tuple[float, float]
    swapped: tuple[float, float]

    @property
    def swap_improves(self) -> bool:
        """True when the swapped order finishes strictly earlier on the processor.

        Both orders finish at the same time on the communication link, so the
        computation-resource availability decides (the proof of Lemma 1 argues
        on exactly this quantity).
        """
        return self.swapped[1] < self.original[1] - 1e-12


def _schedule_pair(first: Task, second: Task, t1: float, t2: float) -> tuple[float, float]:
    comm_a = t1 + first.comm
    comp_a = max(comm_a, t2) + first.comp
    comm_b = comm_a + second.comm
    comp_b = max(comm_b, comp_a) + second.comp
    return comm_b, comp_b


def evaluate_swap(first: Task, second: Task, *, t1: float = 0.0, t2: float = 0.0) -> SwapOutcome:
    """Compare the (A, B) and (B, A) orders starting from availabilities ``t1``, ``t2``."""
    if t1 < 0 or t2 < 0:
        raise ValueError("availability times must be non-negative")
    return SwapOutcome(
        original=_schedule_pair(first, second, t1, t2),
        swapped=_schedule_pair(second, first, t1, t2),
    )
