"""NP-completeness machinery: the 3-Partition reduction of Theorem 2 (Table 1).

The paper proves Problem DT NP-complete by reducing 3-Partition to it.  Given
``3m`` integers ``a_1..a_3m`` summing to ``m * b``, the reduction builds the
``4m + 1`` tasks of Table 1:

===========================  ===================  =================
Task                          Communication time   Computation time
===========================  ===================  =================
``K_0``                       0                     3
``K_1 .. K_{m-1}``            ``b' = b + 6x``       3
``K_m``                       ``b'``                0
``A_i`` (``1 <= i <= 3m``)    1                     ``a_i + 2x``
===========================  ===================  =================

with ``x = max(a_i)``, memory capacity ``C = b' + 3`` and target makespan
``L = m (b' + 3)``.  A feasible schedule of makespan ``L`` exists iff the
3-Partition instance is a yes-instance, and the correspondence is
constructive: the triplet executed while ``K_i`` communicates is the ``i``-th
part of the partition.

This module provides the forward construction, the two directions of the
correspondence (partition → schedule of makespan ``L`` and feasible schedule →
partition), and a small exact 3-Partition solver used by tests and the
Table 1 benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task
from ..core.validation import TOLERANCE, check_schedule

__all__ = [
    "ThreePartitionInstance",
    "DTReduction",
    "reduce_three_partition",
    "schedule_from_partition",
    "partition_from_schedule",
    "solve_three_partition",
]


@dataclass(frozen=True)
class ThreePartitionInstance:
    """A 3-Partition instance: ``3m`` positive integers summing to ``m * b``."""

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.values) % 3 != 0 or not self.values:
            raise ValueError("3-Partition requires a positive multiple of 3 values")
        if any(v <= 0 for v in self.values):
            raise ValueError("3-Partition values must be positive")
        if sum(self.values) % self.m != 0:
            raise ValueError("sum of values must be divisible by m")

    @property
    def m(self) -> int:
        return len(self.values) // 3

    @property
    def target(self) -> int:
        """The per-triplet sum ``b``."""
        return sum(self.values) // self.m

    @property
    def max_value(self) -> int:
        return max(self.values)


@dataclass(frozen=True)
class DTReduction:
    """Problem DT instance produced from a 3-Partition instance."""

    source: ThreePartitionInstance
    instance: Instance
    target_makespan: float
    scaled_target: float  # b' = b + 6x
    padding: int  # x = max(a_i)

    @property
    def capacity(self) -> float:
        return self.instance.capacity

    def separator_tasks(self) -> list[Task]:
        """The ``K_0 .. K_m`` tasks, in index order."""
        return [self.instance[f"K{i}"] for i in range(self.source.m + 1)]

    def item_tasks(self) -> list[Task]:
        """The ``A_1 .. A_3m`` tasks, in index order."""
        return [self.instance[f"A{i}"] for i in range(1, 3 * self.source.m + 1)]


def reduce_three_partition(values: Sequence[int] | ThreePartitionInstance) -> DTReduction:
    """Build the Table 1 instance for a 3-Partition input."""
    source = values if isinstance(values, ThreePartitionInstance) else ThreePartitionInstance(tuple(values))
    m = source.m
    b = source.target
    x = source.max_value
    b_prime = b + 6 * x

    tasks: list[Task] = [Task.from_times("K0", comm=0, comp=3)]
    for i in range(1, m):
        tasks.append(Task.from_times(f"K{i}", comm=b_prime, comp=3))
    tasks.append(Task.from_times(f"K{m}", comm=b_prime, comp=0))
    for i, value in enumerate(source.values, start=1):
        tasks.append(Task.from_times(f"A{i}", comm=1, comp=value + 2 * x))

    capacity = b_prime + 3
    instance = Instance(tasks, capacity=capacity, name=f"3par/m={m}/b={b}")
    target = m * (b_prime + 3)
    return DTReduction(
        source=source,
        instance=instance,
        target_makespan=float(target),
        scaled_target=float(b_prime),
        padding=x,
    )


def schedule_from_partition(
    reduction: DTReduction, triplets: Sequence[Sequence[int]]
) -> Schedule:
    """Build the Figure 2 schedule from a valid partition.

    ``triplets`` contains ``m`` index triplets into ``source.values`` (0-based),
    each summing to ``b``.  The returned schedule is feasible for the reduced
    instance and has makespan exactly ``L``.
    """
    source = reduction.source
    m = source.m
    b = source.target
    if len(triplets) != m:
        raise ValueError(f"expected {m} triplets, got {len(triplets)}")
    used = sorted(i for triplet in triplets for i in triplet)
    if used != list(range(3 * m)):
        raise ValueError("triplets must partition the value indices exactly")
    for triplet in triplets:
        if len(triplet) != 3:
            raise ValueError("every part must contain exactly three values")
        if sum(source.values[i] for i in triplet) != b:
            raise ValueError(
                f"triplet {tuple(triplet)} sums to "
                f"{sum(source.values[i] for i in triplet)}, expected {b}"
            )

    instance = reduction.instance
    segment = reduction.scaled_target + 3.0  # b' + 3, duration of one block
    entries: list[ScheduledTask] = []

    # Separator tasks: K_i communicates during [i*segment + 3 - 3, ...]; more
    # precisely K_0 communicates (0 time) and computes over [0, 3]; K_i
    # (1 <= i <= m) communicates over [(i-1)*segment + 3, i*segment] and
    # computes over [i*segment, i*segment + 3] (K_m has zero computation).
    k_tasks = reduction.separator_tasks()
    entries.append(ScheduledTask(task=k_tasks[0], comm_start=0.0, comp_start=0.0))
    for i in range(1, m + 1):
        comm_start = (i - 1) * segment + 3.0
        comp_start = comm_start + reduction.scaled_target
        entries.append(ScheduledTask(task=k_tasks[i], comm_start=comm_start, comp_start=comp_start))

    # Item tasks of triplet i: their unit communications run back to back during
    # K_{i-1}'s computation, their computations run back to back during K_i's
    # communication.
    for block, triplet in enumerate(triplets):
        comm_cursor = block * segment
        comp_cursor = block * segment + 3.0
        for position, index in enumerate(triplet):
            task = instance[f"A{index + 1}"]
            comm_start = comm_cursor + position  # unit communication times
            comp_start = comp_cursor
            entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
            comp_cursor += task.comp

    schedule = Schedule(entries)
    return check_schedule(schedule, instance)


def partition_from_schedule(reduction: DTReduction, schedule: Schedule) -> list[list[int]]:
    """Extract the 3-Partition solution encoded by a feasible makespan-``L`` schedule.

    The ``i``-th part collects the items whose computation runs during the
    communication of ``K_i`` (Theorem 2's argument).  Raises ``ValueError``
    when the schedule does not have the required block structure, which (per
    the theorem) only happens if its makespan exceeds ``L``.
    """
    source = reduction.source
    m = source.m
    b = source.target
    parts: list[list[int]] = []
    for i in range(1, m + 1):
        separator = schedule.entry(f"K{i}")
        window = (separator.comm_start, separator.comm_end)
        members = []
        for index in range(1, 3 * m + 1):
            item = schedule.entry(f"A{index}")
            if window[0] - TOLERANCE <= item.comp_start and item.comp_end <= window[1] + TOLERANCE:
                members.append(index - 1)
        if len(members) != 3:
            raise ValueError(
                f"communication window of K{i} covers {len(members)} item computations, expected 3"
            )
        total = sum(source.values[j] for j in members)
        if total != b:
            raise ValueError(f"items under K{i} sum to {total}, expected {b}")
        parts.append(members)
    return parts


def solve_three_partition(instance: ThreePartitionInstance) -> list[list[int]] | None:
    """Exact backtracking solver for small 3-Partition instances (tests only).

    Returns ``m`` index triplets or ``None`` when no partition exists.  The
    search enumerates triplets containing the smallest unassigned index, which
    keeps the branching factor manageable for the instance sizes used in the
    test-suite and benchmarks (up to a few dozen values).
    """
    values = instance.values
    m = instance.m
    b = instance.target
    remaining = set(range(len(values)))
    solution: list[list[int]] = []

    def backtrack() -> bool:
        if not remaining:
            return True
        anchor = min(remaining)
        rest = sorted(remaining - {anchor})
        for second, third in itertools.combinations(rest, 2):
            if values[anchor] + values[second] + values[third] != b:
                continue
            triplet = [anchor, second, third]
            for idx in triplet:
                remaining.discard(idx)
            solution.append(triplet)
            if backtrack():
                return True
            solution.pop()
            for idx in triplet:
                remaining.add(idx)
        return False

    if backtrack():
        return solution
    return None
