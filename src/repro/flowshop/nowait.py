"""No-wait two-machine flowshop utilities.

The Gilmore–Gomory heuristic of the paper (Section 4.4) sequences tasks as if
they were jobs of a *no-wait* 2-machine flowshop: a job must start on the
second machine immediately when it leaves the first one (in Problem DT terms,
a task would start computing the instant its transfer completes).  The
makespan of a no-wait sequence ``j1, ..., jn`` is

    comm(j1) + sum_i comp(ji) + sum_{i>=2} max(comm(ji) - comp(j(i-1)), 0)

This module provides the makespan evaluation, an exact Held–Karp dynamic
program and a brute-force search (both for small instances, used to validate
the Gilmore–Gomory implementation), expressed on :class:`~repro.core.task.Task`.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence

from ..core.task import Task

__all__ = [
    "nowait_makespan",
    "nowait_transition_cost",
    "brute_force_nowait_order",
    "held_karp_nowait_order",
]


def nowait_transition_cost(previous: Task | None, nxt: Task) -> float:
    """Idle time forced on the communication link when ``nxt`` follows ``previous``.

    With no predecessor the cost is the full communication time of ``nxt``
    (the processing unit always waits for the first transfer).
    """
    if previous is None:
        return nxt.comm
    return max(nxt.comm - previous.comp, 0.0)


def nowait_makespan(sequence: Sequence[Task]) -> float:
    """Makespan of ``sequence`` under the no-wait policy."""
    if not sequence:
        return 0.0
    total = sum(t.comp for t in sequence)
    previous: Task | None = None
    for task in sequence:
        total += nowait_transition_cost(previous, task)
        previous = task
    return total


def brute_force_nowait_order(tasks: Iterable[Task]) -> tuple[list[Task], float]:
    """Exhaustively find an optimal no-wait order (factorial time, tests only)."""
    tasks = list(tasks)
    if len(tasks) > 9:
        raise ValueError("brute force restricted to at most 9 tasks")
    best_order = list(tasks)
    best_value = nowait_makespan(tasks)
    for perm in itertools.permutations(tasks):
        value = nowait_makespan(perm)
        if value < best_value - 1e-12:
            best_value = value
            best_order = list(perm)
    return best_order, best_value


def held_karp_nowait_order(tasks: Iterable[Task]) -> tuple[list[Task], float]:
    """Exact no-wait sequencing via Held–Karp (O(2^n n^2), n <= ~16)."""
    tasks = list(tasks)
    n = len(tasks)
    if n == 0:
        return [], 0.0
    if n > 16:
        raise ValueError("Held-Karp restricted to at most 16 tasks")
    total_comp = sum(t.comp for t in tasks)

    # dp[(mask, last)] = minimal accumulated transition cost over the tasks in
    # ``mask`` ending with ``last``.
    dp: dict[tuple[int, int], float] = {}
    parent: dict[tuple[int, int], int | None] = {}
    for i, task in enumerate(tasks):
        dp[(1 << i, i)] = task.comm
        parent[(1 << i, i)] = None

    for mask in range(1, 1 << n):
        for last in range(n):
            key = (mask, last)
            if key not in dp:
                continue
            base = dp[key]
            for nxt in range(n):
                if mask & (1 << nxt):
                    continue
                new_mask = mask | (1 << nxt)
                cost = base + nowait_transition_cost(tasks[last], tasks[nxt])
                new_key = (new_mask, nxt)
                if cost < dp.get(new_key, math.inf) - 1e-15:
                    dp[new_key] = cost
                    parent[new_key] = last

    full = (1 << n) - 1
    best_last = min(range(n), key=lambda last: dp[(full, last)])
    order_indices: list[int] = []
    mask, last = full, best_last
    while last is not None:
        order_indices.append(last)
        prev = parent[(mask, last)]
        mask ^= 1 << last
        last = prev  # type: ignore[assignment]
    order_indices.reverse()
    order = [tasks[i] for i in order_indices]
    return order, dp[(full, best_last)] + total_comp
