"""Drivers regenerating every evaluation table and figure of the paper.

Each ``figureNN`` function runs the corresponding experiment at the requested
scale and returns a :class:`FigureResult` carrying both the raw records and a
plain-text rendering that mirrors the paper's figure (boxplot statistics or
per-capacity series).  The benchmark suite calls these drivers once per
figure and prints the rendering, so ``pytest benchmarks/ --benchmark-only``
regenerates the whole evaluation section.

Figure index (see DESIGN.md for the full mapping):

* Figure 4/5/6 — worked-example schedules of the three heuristic families;
* Figure 7 — all heuristics + lp.k on one HF trace across capacities;
* Figure 8 — workload characteristics of the HF and CCSD ensembles;
* Figure 9/10 — HF: all heuristics / best variant per category;
* Figure 11/12 — CCSD: all heuristics / best variant per category;
* Figure 13 — batched scheduling, best variant per category, both kernels;
* Table 2/Proposition 1 — permutation vs. free-order optimum;
* Table 6 — favorable situations (qualitative check on regime workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..api.registry import PAPER_FIGURE_ORDER, get_solver
from ..api.results import ResultSet
from ..api.study import Study
from ..chemistry.workload import ccsd_ensemble, hf_ensemble
from ..core.paper_instances import (
    corrected_example_instance,
    dynamic_example_instance,
    proposition1_instance,
    static_example_instance,
)
from ..flowshop.bruteforce import best_permutation_schedule, best_schedule_allowing_reordering
from ..flowshop.johnson import johnson_schedule, omim_makespan
from ..heuristics.base import TABLE6_HEURISTICS
from ..milp.iterative import IterativeMilpHeuristic
from ..traces.model import TraceEnsemble
from ..traces.stats import characterise_ensemble, summarise
from ..viz.boxplot import render_series_table, render_summary_table
from ..viz.gantt import render_gantt
from .aggregate import best_variant_series, summaries_by_capacity
from .config import ExperimentConfig, scaled_config

__all__ = [
    "FigureResult",
    "figure04_static_examples",
    "figure05_dynamic_examples",
    "figure06_corrected_examples",
    "figure07_milp_comparison",
    "figure08_workload_characteristics",
    "figure09_hf_heuristics",
    "figure10_hf_best_variants",
    "figure11_ccsd_heuristics",
    "figure12_ccsd_best_variants",
    "figure13_batches",
    "table02_proposition1",
    "table06_favorable_situations",
    "ALL_FIGURES",
]


@dataclass
class FigureResult:
    """Output of one figure driver: raw data plus a printable rendering."""

    name: str
    description: str
    text: str
    records: ResultSet = field(default_factory=ResultSet)
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.name} ==\n{self.description}\n\n{self.text}\n"


# --------------------------------------------------------------------------- #
# Worked examples (Figures 4-6)
# --------------------------------------------------------------------------- #
def _example_figure(name: str, description: str, instance, heuristic_names) -> FigureResult:
    blocks = []
    makespans = {}
    omim = omim_makespan(instance)
    blocks.append(f"instance {instance.name}  capacity={instance.capacity:g}  OMIM={omim:g}")
    blocks.append(render_gantt(johnson_schedule(instance.without_memory_constraint())))
    blocks[-1] = "OMIM (infinite memory):\n" + blocks[-1]
    for heuristic_name in heuristic_names:
        schedule = get_solver(heuristic_name).schedule(instance)
        makespans[heuristic_name] = schedule.makespan
        blocks.append(f"{heuristic_name} (makespan {schedule.makespan:g}):\n" + render_gantt(schedule))
    return FigureResult(
        name=name,
        description=description,
        text="\n\n".join(blocks),
        data={"makespans": makespans, "omim": omim},
    )


def figure04_static_examples(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 4 — static heuristics on the Table 3 task set (capacity 6)."""
    return _example_figure(
        "figure04",
        "Static-order heuristic schedules for the Table 3 instance, capacity 6.",
        static_example_instance(),
        ("OOSIM", "IOCMS", "DOCPS", "IOCCS", "DOCCS"),
    )


def figure05_dynamic_examples(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 5 — dynamic heuristics on the Table 4 task set (capacity 6)."""
    return _example_figure(
        "figure05",
        "Dynamic heuristic schedules for the Table 4 instance, capacity 6.",
        dynamic_example_instance(),
        ("LCMR", "SCMR", "MAMR"),
    )


def figure06_corrected_examples(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 6 — corrected heuristics on the Table 5 task set (capacity 9)."""
    return _example_figure(
        "figure06",
        "Static-order-with-dynamic-corrections schedules for the Table 5 instance, capacity 9.",
        corrected_example_instance(),
        ("OOLCMR", "OOSCMR", "OOMAMR"),
    )


# --------------------------------------------------------------------------- #
# Evaluation figures (7-13)
# --------------------------------------------------------------------------- #
def _solver_specs(config: ExperimentConfig) -> tuple[str, ...]:
    """Solver names for the sweep (``config.heuristics`` or the full line-up)."""
    return config.heuristics if config.heuristics is not None else PAPER_FIGURE_ORDER


def _study(config: ExperimentConfig) -> Study:
    """A Study pre-configured with the capacities and parallelism of ``config``."""
    study = Study().capacities(*config.capacity_factors)
    if config.n_jobs is not None:
        study.parallel(config.n_jobs)
    return study


def _hf(config: ExperimentConfig) -> TraceEnsemble:
    return hf_ensemble(processes=config.processes, traces=config.traces, seed=config.seed)


def _ccsd(config: ExperimentConfig) -> TraceEnsemble:
    return ccsd_ensemble(processes=config.processes, traces=config.traces, seed=config.seed)


def figure07_milp_comparison(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 7 — every heuristic plus lp.3..lp.6 on a single HF trace."""
    config = config or scaled_config()
    trace = hf_ensemble(processes=config.processes, traces=1, seed=config.seed)[0]
    milp_solvers = [IterativeMilpHeuristic(window=window) for window in config.milp_windows]
    records = (
        _study(config)
        .traces(trace)
        .solvers(*_solver_specs(config), *milp_solvers)
        .task_limit(config.milp_task_limit)
        .run()
    )
    summaries = summaries_by_capacity(records)
    sections = [
        render_summary_table(
            summaries[factor],
            title=f"capacity = {factor:g} mc",
            value_label="makespan ratio to OMIM (single HF trace)",
        )
        for factor in sorted(summaries)
    ]
    return FigureResult(
        name="figure07",
        description=(
            "Proposed heuristics versus the windowed MILP heuristic (lp.k) on a single "
            f"HF trace truncated to {config.milp_task_limit} tasks, capacities mc..2mc."
        ),
        text="\n\n".join(sections),
        records=records,
        data={"trace": trace.label, "mc_bytes": trace.min_capacity_bytes},
    )


def figure08_workload_characteristics(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 8 — HF and CCSD workload characteristics normalised by OMIM."""
    config = config or scaled_config()
    sections = []
    data = {}
    for label, ensemble in (("HF", _hf(config)), ("CCSD", _ccsd(config))):
        characteristics = characterise_ensemble(ensemble)
        groups = {
            "sum comm": summarise(c.sum_comm_ratio for c in characteristics),
            "sum comp": summarise(c.sum_comp_ratio for c in characteristics),
            "max(sum comm, sum comp)": summarise(c.area_bound_ratio for c in characteristics),
            "sum comm + sum comp": summarise(c.sequential_ratio for c in characteristics),
        }
        overlap = summarise(c.max_overlap_fraction for c in characteristics)
        mc = summarise(c.min_capacity_bytes for c in characteristics)
        sections.append(
            render_summary_table(
                groups,
                title=f"{label} workload ({len(ensemble)} traces)",
                value_label="ratio to OMIM",
            )
            + f"\nmax possible overlap fraction: median {overlap.median:.3f}"
            + f"\nminimum memory capacity mc: median {mc.median:.3g} bytes"
        )
        data[label] = {"overlap": overlap, "mc": mc, "groups": groups}
    return FigureResult(
        name="figure08",
        description="Workload characteristics of the simulated HF and CCSD traces (Figure 8).",
        text="\n\n".join(sections),
        data=data,
    )


def _heuristic_boxplot_figure(
    name: str,
    description: str,
    ensemble: TraceEnsemble,
    config: ExperimentConfig,
) -> FigureResult:
    records = _study(config).traces(ensemble).solvers(*_solver_specs(config)).run()
    summaries = summaries_by_capacity(records)
    sections = [
        render_summary_table(
            summaries[factor],
            title=f"capacity = {factor:g} mc",
            value_label=f"ratio to optimal across {len(ensemble)} traces",
        )
        for factor in sorted(summaries)
    ]
    return FigureResult(
        name=name,
        description=description,
        text="\n\n".join(sections),
        records=records,
    )


def figure09_hf_heuristics(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 9 — distribution of every heuristic's ratio on the HF traces."""
    config = config or scaled_config()
    return _heuristic_boxplot_figure(
        "figure09",
        "Comparison of all heuristics on the HF traces for capacities mc..2mc.",
        _hf(config),
        config,
    )


def figure11_ccsd_heuristics(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 11 — distribution of every heuristic's ratio on the CCSD traces."""
    config = config or scaled_config()
    return _heuristic_boxplot_figure(
        "figure11",
        "Comparison of all heuristics on the CCSD traces for capacities mc..2mc.",
        _ccsd(config),
        config,
    )


def _best_variant_figure(
    name: str,
    description: str,
    ensemble: TraceEnsemble,
    config: ExperimentConfig,
    *,
    batch_size: int | None = None,
) -> FigureResult:
    study = _study(config).traces(ensemble).solvers(*_solver_specs(config))
    if batch_size is not None:
        study.batched(batch_size)
    records = study.run()
    series = best_variant_series(records)
    text = render_series_table(
        series,
        title=f"{ensemble.application}: best variant of each category",
        x_label="capacity (x mc)",
        y_label="median ratio to optimal",
    )
    return FigureResult(name=name, description=description, text=text, records=records)


def figure10_hf_best_variants(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 10 — best variant of each category on the HF traces."""
    config = config or scaled_config()
    return _best_variant_figure(
        "figure10",
        "Best variant of each heuristic category (HF traces), median ratio per capacity.",
        _hf(config),
        config,
    )


def figure12_ccsd_best_variants(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 12 — best variant of each category on the CCSD traces."""
    config = config or scaled_config()
    return _best_variant_figure(
        "figure12",
        "Best variant of each heuristic category (CCSD traces), median ratio per capacity.",
        _ccsd(config),
        config,
    )


def figure13_batches(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 13 — batched scheduling (batches of 100 tasks), both applications."""
    config = config or scaled_config()
    sections = []
    records = ResultSet()
    for ensemble in (_hf(config), _ccsd(config)):
        result = _best_variant_figure(
            f"figure13-{ensemble.application}",
            "",
            ensemble,
            config,
            batch_size=config.batch_size,
        )
        records.extend(result.records)
        sections.append(
            f"Best variants of {ensemble.application} (batches of {config.batch_size} tasks)\n"
            + result.text
        )
    return FigureResult(
        name="figure13",
        description=(
            "Best variant of each category when heuristics are applied to successive "
            f"batches of {config.batch_size} tasks (Section 6.3)."
        ),
        text="\n\n".join(sections),
        records=records,
    )


# --------------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------------- #
def table02_proposition1(config: ExperimentConfig | None = None) -> FigureResult:
    """Table 2 / Proposition 1 — same-order vs. free-order optimal schedules."""
    instance = proposition1_instance()
    permutation_schedule, permutation_makespan = best_permutation_schedule(instance)
    free_schedule, free_makespan = best_schedule_allowing_reordering(instance)
    lines = [
        f"instance {instance.name}, capacity {instance.capacity:g}",
        f"OMIM (no memory constraint): {omim_makespan(instance):g}",
        f"best schedule with identical orders on both resources: {permutation_makespan:g}",
        f"best schedule allowing different orders:              {free_makespan:g}",
        "",
        "best same-order schedule:",
        render_gantt(permutation_schedule),
        "",
        "best different-order schedule:",
        render_gantt(free_schedule),
    ]
    return FigureResult(
        name="table02",
        description=(
            "Proposition 1: with limited memory, allowing different communication and "
            "computation orders strictly improves the optimal makespan."
        ),
        text="\n".join(lines),
        data={
            "permutation_makespan": permutation_makespan,
            "free_makespan": free_makespan,
        },
    )


def table06_favorable_situations(config: ExperimentConfig | None = None) -> FigureResult:
    """Table 6 — each heuristic with its favorable situation."""
    rows = [get_solver(name).info for name in TABLE6_HEURISTICS]
    width = max(len(r.name) for r in rows) + 1
    lines = [f"{'heuristic':<{width}} favorable situation"]
    lines.extend(f"{row.name:<{width}} {row.favorable_situation}" for row in rows)
    return FigureResult(
        name="table06",
        description="Heuristics and the situations in which they are expected to shine (Table 6).",
        text="\n".join(lines),
        data={"rows": rows},
    )


#: Every figure/table driver, keyed by its identifier (used by examples and docs).
ALL_FIGURES: Mapping[str, Callable[[ExperimentConfig | None], FigureResult]] = {
    "figure04": figure04_static_examples,
    "figure05": figure05_dynamic_examples,
    "figure06": figure06_corrected_examples,
    "figure07": figure07_milp_comparison,
    "figure08": figure08_workload_characteristics,
    "figure09": figure09_hf_heuristics,
    "figure10": figure10_hf_best_variants,
    "figure11": figure11_ccsd_heuristics,
    "figure12": figure12_ccsd_best_variants,
    "figure13": figure13_batches,
    "table02": table02_proposition1,
    "table06": table06_favorable_situations,
}
