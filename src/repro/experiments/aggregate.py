"""Aggregation of sweep results into the distributions the figures report.

Figures 9/11 show, for each memory capacity, the distribution of the
ratio-to-optimal of every heuristic across the trace ensemble; Figures 10/12/13
show, per capacity, only the *best variant of each category* (the variant with
the lowest median ratio).  Every helper accepts either a columnar
:class:`~repro.api.ResultSet` (the native output of a
:class:`~repro.api.Study`) or any iterable of
:class:`~repro.api.RunRecord` (the legacy shape), and the heavy lifting is
done on whole columns via :meth:`ResultSet.group_by`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..api.results import ResultSet, RunRecord
from ..heuristics.base import Category
from ..traces.stats import DistributionSummary, summarise

__all__ = [
    "group_by_capacity_and_heuristic",
    "summaries_by_capacity",
    "best_variant_per_category",
    "best_variant_series",
    "CategoryPick",
]


def group_by_capacity_and_heuristic(
    records: ResultSet | Iterable[RunRecord],
) -> dict[float, dict[str, list[RunRecord]]]:
    """``{capacity factor: {heuristic: [records]}}`` preserving insertion order."""
    results = ResultSet.coerce(records)
    return {
        factor: {
            heuristic: inner.to_records()
            for heuristic, inner in group.group_by("heuristic").items()
        }
        for factor, group in results.group_by("capacity_factor").items()
    }


def summaries_by_capacity(
    records: ResultSet | Iterable[RunRecord],
) -> dict[float, dict[str, DistributionSummary]]:
    """Ratio-to-optimal five-number summaries, per capacity factor and heuristic."""
    results = ResultSet.coerce(records)
    return {
        factor: {
            heuristic: summarise(inner.column("ratio_to_optimal"))
            for heuristic, inner in group.group_by("heuristic").items()
        }
        for factor, group in results.group_by("capacity_factor").items()
    }


@dataclass(frozen=True)
class CategoryPick:
    """The best heuristic of one category at one capacity."""

    category: str
    heuristic: str
    capacity_factor: float
    summary: DistributionSummary


def best_variant_per_category(
    records: ResultSet | Iterable[RunRecord],
    *,
    categories: Sequence[Category | str] = (
        Category.SUBMISSION,
        Category.STATIC,
        Category.DYNAMIC,
        Category.CORRECTED,
    ),
) -> dict[float, list[CategoryPick]]:
    """Best (lowest median ratio) heuristic per category, per capacity factor."""
    results = ResultSet.coerce(records)
    wanted = [str(Category(c)) for c in categories]
    result: dict[float, list[CategoryPick]] = {}
    for factor, group in results.group_by("capacity_factor").items():
        by_pair = group.group_by("category", "heuristic")
        picks: list[CategoryPick] = []
        for category in wanted:
            candidates = {
                heuristic: summarise(runs.column("ratio_to_optimal"))
                for (cat, heuristic), runs in by_pair.items()
                if cat == category
            }
            if not candidates:
                continue
            best_name = min(candidates, key=lambda name: candidates[name].median)
            picks.append(
                CategoryPick(
                    category=category,
                    heuristic=best_name,
                    capacity_factor=factor,
                    summary=candidates[best_name],
                )
            )
        result[factor] = picks
    return result


def best_variant_series(
    records: ResultSet | Iterable[RunRecord],
    *,
    categories: Sequence[Category | str] = (
        Category.SUBMISSION,
        Category.STATIC,
        Category.DYNAMIC,
        Category.CORRECTED,
    ),
    label_with_heuristic: bool = False,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 10/12/13 series: per category, (capacity factor, median ratio) points."""
    picks = best_variant_per_category(records, categories=categories)
    series: dict[str, list[tuple[float, float]]] = {}
    for factor in sorted(picks):
        for pick in picks[factor]:
            label = (
                f"{pick.category}:{pick.heuristic}" if label_with_heuristic else pick.category
            )
            series.setdefault(label, []).append((factor, pick.summary.median))
    return series
