"""Aggregation of run records into the distributions the figures report.

Figures 9/11 show, for each memory capacity, the distribution of the
ratio-to-optimal of every heuristic across the trace ensemble; Figures 10/12/13
show, per capacity, only the *best variant of each category* (the variant with
the lowest median ratio).  This module turns flat lists of
:class:`~repro.experiments.runner.RunRecord` into exactly those structures.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..heuristics.base import Category
from ..traces.stats import DistributionSummary, summarise
from .runner import RunRecord

__all__ = [
    "group_by_capacity_and_heuristic",
    "summaries_by_capacity",
    "best_variant_per_category",
    "best_variant_series",
    "CategoryPick",
]


def group_by_capacity_and_heuristic(
    records: Iterable[RunRecord],
) -> dict[float, dict[str, list[RunRecord]]]:
    """``{capacity factor: {heuristic: [records]}}`` preserving insertion order."""
    grouped: dict[float, dict[str, list[RunRecord]]] = defaultdict(lambda: defaultdict(list))
    for record in records:
        grouped[record.capacity_factor][record.heuristic].append(record)
    return {factor: dict(inner) for factor, inner in grouped.items()}


def summaries_by_capacity(
    records: Iterable[RunRecord],
) -> dict[float, dict[str, DistributionSummary]]:
    """Ratio-to-optimal five-number summaries, per capacity factor and heuristic."""
    grouped = group_by_capacity_and_heuristic(records)
    return {
        factor: {
            heuristic: summarise(r.ratio_to_optimal for r in runs)
            for heuristic, runs in inner.items()
        }
        for factor, inner in grouped.items()
    }


@dataclass(frozen=True)
class CategoryPick:
    """The best heuristic of one category at one capacity."""

    category: str
    heuristic: str
    capacity_factor: float
    summary: DistributionSummary


def best_variant_per_category(
    records: Iterable[RunRecord],
    *,
    categories: Sequence[Category | str] = (
        Category.SUBMISSION,
        Category.STATIC,
        Category.DYNAMIC,
        Category.CORRECTED,
    ),
) -> dict[float, list[CategoryPick]]:
    """Best (lowest median ratio) heuristic per category, per capacity factor."""
    wanted = [str(Category(c)) for c in categories]
    by_capacity: dict[float, dict[tuple[str, str], list[RunRecord]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for record in records:
        by_capacity[record.capacity_factor][(record.category, record.heuristic)].append(record)

    result: dict[float, list[CategoryPick]] = {}
    for factor, groups in by_capacity.items():
        picks: list[CategoryPick] = []
        for category in wanted:
            candidates = {
                heuristic: summarise(r.ratio_to_optimal for r in runs)
                for (cat, heuristic), runs in groups.items()
                if cat == category
            }
            if not candidates:
                continue
            best_name = min(candidates, key=lambda name: candidates[name].median)
            picks.append(
                CategoryPick(
                    category=category,
                    heuristic=best_name,
                    capacity_factor=factor,
                    summary=candidates[best_name],
                )
            )
        result[factor] = picks
    return result


def best_variant_series(
    records: Iterable[RunRecord],
    *,
    categories: Sequence[Category | str] = (
        Category.SUBMISSION,
        Category.STATIC,
        Category.DYNAMIC,
        Category.CORRECTED,
    ),
    label_with_heuristic: bool = False,
) -> dict[str, list[tuple[float, float]]]:
    """Figure 10/12/13 series: per category, (capacity factor, median ratio) points."""
    picks = best_variant_per_category(records, categories=categories)
    series: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for factor in sorted(picks):
        for pick in picks[factor]:
            label = (
                f"{pick.category}:{pick.heuristic}" if label_with_heuristic else pick.category
            )
            series[label].append((factor, pick.summary.median))
    return dict(series)
