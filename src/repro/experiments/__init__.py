"""Experiment harness regenerating every table and figure of the paper.

The sweep engine itself lives in :mod:`repro.api` (``Study``/``ResultSet``);
this package hosts the figure drivers, the aggregation helpers and the
experiment scaling knobs.  ``run_on_instance``/``sweep_trace``/
``sweep_ensemble`` are deprecated shims kept for backwards compatibility.
"""

from ..api.results import ResultSet
from .aggregate import (
    CategoryPick,
    best_variant_per_category,
    best_variant_series,
    group_by_capacity_and_heuristic,
    summaries_by_capacity,
)
from .config import PAPER_CAPACITY_FACTORS, ExperimentConfig, scaled_config
from .figures import (
    ALL_FIGURES,
    FigureResult,
    figure04_static_examples,
    figure05_dynamic_examples,
    figure06_corrected_examples,
    figure07_milp_comparison,
    figure08_workload_characteristics,
    figure09_hf_heuristics,
    figure10_hf_best_variants,
    figure11_ccsd_heuristics,
    figure12_ccsd_best_variants,
    figure13_batches,
    table02_proposition1,
    table06_favorable_situations,
)
from .runner import RunRecord, run_on_instance, sweep_ensemble, sweep_trace

__all__ = [
    "ALL_FIGURES",
    "CategoryPick",
    "ExperimentConfig",
    "FigureResult",
    "PAPER_CAPACITY_FACTORS",
    "ResultSet",
    "RunRecord",
    "best_variant_per_category",
    "best_variant_series",
    "figure04_static_examples",
    "figure05_dynamic_examples",
    "figure06_corrected_examples",
    "figure07_milp_comparison",
    "figure08_workload_characteristics",
    "figure09_hf_heuristics",
    "figure10_hf_best_variants",
    "figure11_ccsd_heuristics",
    "figure12_ccsd_best_variants",
    "figure13_batches",
    "group_by_capacity_and_heuristic",
    "run_on_instance",
    "scaled_config",
    "summaries_by_capacity",
    "sweep_ensemble",
    "sweep_trace",
    "table02_proposition1",
    "table06_favorable_situations",
]
