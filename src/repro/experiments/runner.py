"""Deprecated sweep helpers — thin shims over the :mod:`repro.api` engine.

``run_on_instance`` / ``sweep_trace`` / ``sweep_ensemble`` predate the
facade; new code should use :func:`repro.solve` for single runs and
:class:`repro.api.Study` for sweeps, which also adds parallel execution and
columnar results.  The shims keep the historical ``list[RunRecord]`` return
type and emit a :class:`DeprecationWarning` pointing at the replacement.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..api.engine import run_solvers_on_instance, sweep_traces
from ..api.results import RunRecord
from ..core.instance import Instance
from ..heuristics.base import Heuristic
from ..simulator.resources import MachineModel
from ..traces.model import Trace, TraceEnsemble

__all__ = ["RunRecord", "run_on_instance", "sweep_trace", "sweep_ensemble"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.experiments.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_on_instance(
    instance: Instance,
    heuristics: Sequence[Heuristic],
    *,
    reference: float | None = None,
    validate: bool = True,
    application: str = "",
    capacity_factor: float = float("nan"),
    batch_size: int | None = None,
    machine: MachineModel | None = None,
) -> list[RunRecord]:
    """Run every heuristic on one instance and return the measurements.

    .. deprecated:: 1.1
        Use :func:`repro.solve` (one solver) or
        ``Study().instances(instance).solvers(...)`` (many).
    """
    _deprecated("run_on_instance", "repro.solve or repro.api.Study")
    return run_solvers_on_instance(
        instance,
        heuristics,
        reference=reference,
        validate=validate,
        application=application,
        capacity_factor=capacity_factor,
        batch_size=batch_size,
        machine=machine,
    )


def sweep_trace(
    trace: Trace,
    *,
    capacity_factors: Sequence[float],
    heuristics: Sequence[Heuristic] | None = None,
    validate: bool = True,
    batch_size: int | None = None,
    task_limit: int | None = None,
) -> list[RunRecord]:
    """Capacity sweep (mc .. 2mc) of every heuristic on one trace.

    .. deprecated:: 1.1
        Use ``Study().traces(trace).capacities(...).run()``.
    """
    _deprecated("sweep_trace", "repro.api.Study")
    results = sweep_traces(
        [trace],
        capacity_factors=capacity_factors,
        solver_specs=tuple(heuristics) if heuristics is not None else (),
        validate=validate,
        batch_size=batch_size,
        task_limit=task_limit,
    )
    return results.to_records()


def sweep_ensemble(
    ensemble: TraceEnsemble,
    *,
    capacity_factors: Sequence[float],
    heuristics: Sequence[Heuristic] | None = None,
    validate: bool = True,
    batch_size: int | None = None,
    task_limit: int | None = None,
) -> list[RunRecord]:
    """Capacity sweep over every trace of an ensemble.

    .. deprecated:: 1.1
        Use ``Study().traces(ensemble).capacities(...).parallel().run()``.
    """
    _deprecated("sweep_ensemble", "repro.api.Study")
    results = sweep_traces(
        [ensemble],
        capacity_factors=capacity_factors,
        solver_specs=tuple(heuristics) if heuristics is not None else (),
        validate=validate,
        batch_size=batch_size,
        task_limit=task_limit,
    )
    return results.to_records()
