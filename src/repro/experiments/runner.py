"""Running heuristics over traces and memory-capacity sweeps.

This is the engine behind every evaluation figure: take a trace, build the
instances for a range of capacities (``factor * mc``), run a set of heuristics
on each, validate the resulting schedules, and record the ratio to OMIM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.instance import Instance
from ..core.metrics import evaluate
from ..core.validation import check_schedule
from ..flowshop.johnson import omim_makespan
from ..heuristics.base import Category, Heuristic
from ..heuristics.registry import paper_figure_lineup
from ..simulator.batch import execute_in_batches
from ..traces.model import Trace, TraceEnsemble

__all__ = ["RunRecord", "run_on_instance", "sweep_trace", "sweep_ensemble"]


@dataclass(frozen=True)
class RunRecord:
    """One (trace, capacity, heuristic) measurement."""

    application: str
    trace: str
    heuristic: str
    category: str
    capacity_factor: float
    capacity: float
    makespan: float
    omim: float
    ratio_to_optimal: float
    task_count: int

    @property
    def key(self) -> tuple[str, float]:
        return (self.heuristic, self.capacity_factor)


def run_on_instance(
    instance: Instance,
    heuristics: Sequence[Heuristic],
    *,
    reference: float | None = None,
    validate: bool = True,
    application: str = "",
    capacity_factor: float = float("nan"),
    batch_size: int | None = None,
) -> list[RunRecord]:
    """Run every heuristic on one instance and return the measurements.

    ``batch_size`` switches to the Section 6.3 batched execution mode, where a
    heuristic is applied to successive windows of the submission order.
    """
    reference = omim_makespan(instance) if reference is None else reference
    records = []
    for heuristic in heuristics:
        if batch_size is None:
            schedule = heuristic.schedule(instance)
        else:
            schedule = execute_in_batches(instance, heuristic.schedule, batch_size=batch_size)
        if validate:
            check_schedule(schedule, instance)
        metrics = evaluate(schedule, instance, heuristic=heuristic.name, reference=reference)
        records.append(
            RunRecord(
                application=application or instance.name.split("/")[0],
                trace=instance.name,
                heuristic=heuristic.name,
                category=str(heuristic.category),
                capacity_factor=capacity_factor,
                capacity=instance.capacity,
                makespan=metrics.makespan,
                omim=metrics.omim,
                ratio_to_optimal=metrics.ratio_to_optimal,
                task_count=len(instance),
            )
        )
    return records


def sweep_trace(
    trace: Trace,
    *,
    capacity_factors: Sequence[float],
    heuristics: Sequence[Heuristic] | None = None,
    validate: bool = True,
    batch_size: int | None = None,
    task_limit: int | None = None,
) -> list[RunRecord]:
    """Capacity sweep (mc .. 2mc) of every heuristic on one trace."""
    heuristics = list(heuristics) if heuristics is not None else paper_figure_lineup()
    if task_limit is not None and task_limit < len(trace):
        trace = Trace(
            application=trace.application,
            process=trace.process,
            tasks=trace.tasks[:task_limit],
            metadata={**trace.metadata, "task_limit": str(task_limit)},
        )
    base_instance = trace.to_instance()
    reference = omim_makespan(base_instance)
    mc = trace.min_capacity_bytes
    records: list[RunRecord] = []
    for factor in capacity_factors:
        instance = trace.to_instance(mc * factor)
        records.extend(
            run_on_instance(
                instance,
                heuristics,
                reference=reference,
                validate=validate,
                application=trace.application,
                capacity_factor=factor,
                batch_size=batch_size,
            )
        )
    return records


def sweep_ensemble(
    ensemble: TraceEnsemble,
    *,
    capacity_factors: Sequence[float],
    heuristics: Sequence[Heuristic] | None = None,
    validate: bool = True,
    batch_size: int | None = None,
    task_limit: int | None = None,
) -> list[RunRecord]:
    """Capacity sweep over every trace of an ensemble."""
    records: list[RunRecord] = []
    for trace in ensemble:
        records.extend(
            sweep_trace(
                trace,
                capacity_factors=capacity_factors,
                heuristics=heuristics,
                validate=validate,
                batch_size=batch_size,
                task_limit=task_limit,
            )
        )
    return records
