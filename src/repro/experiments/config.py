"""Experiment configuration and scaling.

The paper's full evaluation uses 150 traces per application, 300-800 tasks per
trace, 9 memory capacities and 14 heuristics — hours of simulation in pure
Python.  The harness therefore supports three scales, selected explicitly or
through the ``REPRO_SCALE`` environment variable:

* ``ci`` — a handful of traces and capacities, seconds per figure (default for
  the benchmark suite so that ``pytest benchmarks/`` finishes quickly);
* ``default`` — a medium slice that already shows every qualitative trend;
* ``paper`` — the full 150-process, 9-capacity sweep.

Every figure driver takes an :class:`ExperimentConfig`, so any intermediate
scale can be requested programmatically as well.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Sequence

__all__ = ["ExperimentConfig", "scaled_config", "PAPER_CAPACITY_FACTORS"]

#: Capacity factors used by the paper: mc to 2 mc in steps of 0.125 mc.
PAPER_CAPACITY_FACTORS: tuple[float, ...] = tuple(1.0 + 0.125 * i for i in range(9))


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment driver."""

    #: Number of per-process traces evaluated per application.
    traces: int = 6
    #: Number of simulated processes in the generating run (fixes task counts).
    processes: int = 150
    #: Memory capacities, as multiples of each trace's minimum capacity ``mc``.
    capacity_factors: tuple[float, ...] = PAPER_CAPACITY_FACTORS
    #: Heuristics evaluated (paper acronyms); ``None`` means the full Figure 9/11 line-up.
    heuristics: tuple[str, ...] | None = None
    #: Window sizes for the lp.k MILP heuristic (Figure 7).
    milp_windows: tuple[int, ...] = (3, 4, 5, 6)
    #: Cap on the number of tasks of the trace used for the MILP figure
    #: (the MILP is slow; the paper itself uses a single trace file).
    milp_task_limit: int = 60
    #: Batch size for the Section 6.3 experiment.
    batch_size: int = 100
    #: Seed for workload generation.
    seed: int = 2019
    #: Thread count for parallel ensemble sweeps (``None`` = sequential,
    #: ``0``/``-1`` = one thread per CPU; see :meth:`repro.api.Study.parallel`).
    n_jobs: int | None = None

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


_SCALES: dict[str, ExperimentConfig] = {
    "ci": ExperimentConfig(
        traces=2,
        capacity_factors=(1.0, 1.25, 1.5, 1.75, 2.0),
        milp_windows=(3, 4),
        milp_task_limit=24,
    ),
    "default": ExperimentConfig(traces=6),
    "paper": ExperimentConfig(traces=150),
}


def scaled_config(scale: str | None = None) -> ExperimentConfig:
    """Configuration for a named scale (or the ``REPRO_SCALE`` environment variable)."""
    if scale is None:
        scale = os.environ.get("REPRO_SCALE", "ci")
    try:
        return _SCALES[scale.lower()]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}") from None
