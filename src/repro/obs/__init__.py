"""``repro.obs`` — unified tracing, metrics, and kernel profiling.

Stdlib-only instrumentation shared by every layer of the stack:

* :mod:`~repro.obs.spans` — hierarchical timed spans with ``contextvars``
  propagation; zero-cost no-op while disabled;
* :mod:`~repro.obs.metrics` — the labelled counter/gauge/summary registry
  (:data:`REGISTRY` is the process-wide instance) with a picklable wire
  format so sweep workers ship deltas back with their chunk results;
* :mod:`~repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), Prometheus text, JSONL span logs, plus the
  trace validator CI runs;
* :mod:`~repro.obs.stats` — per-run :class:`KernelStats` from the
  simulation engines.

Activation surfaces, all equivalent:

* ``REPRO_TRACE=1`` (env) enables tracing process-wide;
  ``REPRO_TRACE=/path/trace.json`` additionally writes a Chrome trace
  at interpreter exit;
* ``solve(..., trace="trace.json")`` / ``Study().trace("trace.json")``
  trace one call;
* ``repro sweep --trace trace.json`` traces a sweep, merging spans from
  every worker process into one file.
"""

from __future__ import annotations

import atexit
import contextlib
import os

from .export import (
    chrome_trace,
    chrome_trace_events,
    prometheus_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_log,
)
from .metrics import DEFAULT_WINDOW, REGISTRY, MetricsRegistry, Summary, quantile
from .spans import (
    NOOP_SPAN,
    add_spans,
    clear,
    current_span_id,
    disable,
    enable,
    export_since,
    is_enabled,
    mark,
    now,
    record_span,
    set_enabled,
    span,
)
from .stats import KernelStats

__all__ = [
    "DEFAULT_WINDOW",
    "KernelStats",
    "MetricsRegistry",
    "NOOP_SPAN",
    "REGISTRY",
    "Summary",
    "TRACE_ENV_VAR",
    "absorb_payload",
    "add_spans",
    "chrome_trace",
    "chrome_trace_events",
    "clear",
    "current_span_id",
    "disable",
    "disable_autoexport",
    "enable",
    "export_since",
    "is_enabled",
    "mark",
    "now",
    "prometheus_lines",
    "quantile",
    "record_span",
    "set_autoexport",
    "set_enabled",
    "span",
    "trace_to",
    "validate_chrome_trace",
    "worker_baseline",
    "worker_payload",
    "write_chrome_trace",
    "write_span_log",
]

#: Environment switch: truthy enables tracing; a path value additionally
#: writes a Chrome trace there at interpreter exit.
TRACE_ENV_VAR = "REPRO_TRACE"

_FALSY = {"", "0", "false", "off", "no"}
_TRUTHY = {"1", "true", "on", "yes"}

_autoexport_path: str | None = None
_autoexport_pid: int | None = None


def set_autoexport(path: str) -> None:
    """Write buffered spans to ``path`` as a Chrome trace at process exit.

    The registration is pinned to the current pid so forked sweep workers
    never clobber the parent's trace file on their own exit.
    """
    global _autoexport_path, _autoexport_pid
    _autoexport_path = str(path)
    _autoexport_pid = os.getpid()


def disable_autoexport() -> None:
    """Cancel any exit-time trace export (called in sweep worker init)."""
    global _autoexport_path, _autoexport_pid
    _autoexport_path = None
    _autoexport_pid = None


@atexit.register
def _export_on_exit() -> None:  # pragma: no cover - exercised via subprocess
    if _autoexport_path is None or _autoexport_pid != os.getpid():
        return
    records = export_since(0)
    if records:
        with contextlib.suppress(OSError):
            write_chrome_trace(_autoexport_path, records)


def _configure_from_env() -> None:
    value = os.environ.get(TRACE_ENV_VAR, "").strip()
    if value.lower() in _FALSY:
        return
    enable()
    if value.lower() not in _TRUTHY:
        set_autoexport(value)


@contextlib.contextmanager
def trace_to(path: str | os.PathLike | None = None):
    """Enable tracing for the ``with`` body; optionally export on exit.

    Restores the previous enabled state afterwards.  When ``path`` is
    given, the spans recorded inside the body (including any merged from
    workers) are written there as a Chrome trace file.
    """
    previous = is_enabled()
    marker = mark()
    enable()
    try:
        yield
    finally:
        set_enabled(previous)
        if path is not None:
            write_chrome_trace(path, export_since(marker))


def worker_baseline() -> tuple[int, dict]:
    """Snapshot a worker's span/metrics position before running a chunk."""
    return mark(), REGISTRY.wire_snapshot()


def worker_payload(baseline: tuple[int, dict]) -> dict:
    """Everything recorded since ``baseline``, picklable for the job wire."""
    marker, wire = baseline
    return {"spans": export_since(marker), "metrics": REGISTRY.delta_since(wire)}


def absorb_payload(payload: dict | None) -> None:
    """Merge a shipped worker payload into this process's tracer/registry."""
    if not payload:
        return
    add_spans(payload.get("spans") or ())
    REGISTRY.merge_wire(payload.get("metrics") or {})


_configure_from_env()
