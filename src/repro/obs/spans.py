"""Hierarchical timed spans with ``contextvars`` propagation.

The tracer is a module-level singleton: one flag, one lock, one buffer of
finished span records.  Call sites guard with :func:`is_enabled` (a plain
module-global read) and :func:`span` returns a shared no-op object when
tracing is off, so the disabled path costs one attribute load and one
branch — no allocation, no lock.

Span records are plain dicts so they pickle over the PR 5 job wire and
serialize straight to JSONL/Chrome trace events:

``{"name", "ts", "dur", "pid", "tid", "id", "parent", "args"?}``

``ts`` is a :func:`time.perf_counter` reading.  On Linux that clock is
``CLOCK_MONOTONIC``, which is shared across processes, so spans recorded
in forked/spawned sweep workers land on the same timeline as the parent
and a merged trace lines up without clock translation.

Parent/child nesting rides on a :class:`contextvars.ContextVar`, which
gives correct attribution both across threads (each thread has its own
context) and across ``await`` points in the serve daemon.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time

__all__ = [
    "NOOP_SPAN",
    "add_spans",
    "clear",
    "current_span_id",
    "disable",
    "enable",
    "export_since",
    "is_enabled",
    "mark",
    "now",
    "record_span",
    "set_enabled",
    "span",
]

#: The span clock. ``perf_counter`` is CLOCK_MONOTONIC on Linux: comparable
#: across the processes of one sweep, never subject to wall-clock steps.
now = time.perf_counter

_enabled: bool = False
_lock = threading.Lock()
_finished: list[dict] = []
_ids = itertools.count(1)
_parent: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_obs_parent", default=None
)


def is_enabled() -> bool:
    """Whether tracing is on. The one check every instrumentation site makes."""
    return _enabled


def set_enabled(value: bool) -> None:
    global _enabled
    _enabled = bool(value)


def enable() -> None:
    set_enabled(True)


def disable() -> None:
    set_enabled(False)


def current_span_id() -> int | None:
    """The id of the innermost open span in this context, if any."""
    return _parent.get()


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **args) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class Span:
    """One live span; records itself into the module buffer on exit."""

    __slots__ = ("name", "args", "start", "_id", "_parent_id", "_token")

    def __init__(self, name: str, args: dict):
        self.name = name
        self.args = args
        self.start = 0.0
        self._id = 0
        self._parent_id: int | None = None
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "Span":
        self._id = next(_ids)
        self._parent_id = _parent.get()
        self._token = _parent.set(self._id)
        self.start = now()
        return self

    def annotate(self, **args) -> "Span":
        """Attach key/value arguments to the span while it is open."""
        self.args.update(args)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = now()
        if self._token is not None:
            _parent.reset(self._token)
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        record = {
            "name": self.name,
            "ts": self.start,
            "dur": end - self.start,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "id": self._id,
            "parent": self._parent_id,
        }
        if self.args:
            record["args"] = self.args
        with _lock:
            _finished.append(record)
        return False


def span(name: str, **args):
    """A context manager timing ``name``; the shared no-op when disabled."""
    if not _enabled:
        return NOOP_SPAN
    return Span(name, args)


def record_span(name: str, start: float, end: float, **args) -> None:
    """Record an already-measured interval as a span (no-op when disabled).

    For hot loops that time themselves with two ``perf_counter`` reads and
    must not restructure their bodies into ``with`` blocks.  ``start`` and
    ``end`` are :func:`now` readings; the parent is taken from the current
    context.
    """
    if not _enabled:
        return
    record = {
        "name": name,
        "ts": start,
        "dur": end - start,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "id": next(_ids),
        "parent": _parent.get(),
    }
    if args:
        record["args"] = args
    with _lock:
        _finished.append(record)


def add_spans(records) -> None:
    """Merge externally-recorded span dicts (e.g. shipped from a worker)."""
    if not records:
        return
    with _lock:
        _finished.extend(records)


def mark() -> int:
    """An opaque cursor into the span buffer; pass to :func:`export_since`."""
    with _lock:
        return len(_finished)


def export_since(marker: int = 0) -> list[dict]:
    """All finished span records appended at or after ``marker``."""
    with _lock:
        return list(_finished[marker:])


def clear() -> None:
    """Drop every buffered span record."""
    with _lock:
        del _finished[:]
