"""Per-run kernel profiling counters.

:class:`KernelStats` is produced by both simulation engines (the object
loop in :mod:`repro.simulator.engine` and the columnar fast path in
:mod:`repro.simulator.columnar`) and rides on
:class:`~repro.simulator.engine.SimulationResult` /
:class:`~repro.api.solve.SolveResult`; the deterministic fields surface
as ``ResultSet`` columns.

Two kinds of field, deliberately separated:

* **deterministic** — ``tasks``, ``events``, ``memory_wait_s``,
  ``ledger_ops`` are pure functions of the instance and policy.  Both
  engines accumulate ``memory_wait_s`` by adding the *same float
  operands in the same order*, so the value is bit-identical across
  engines and safe to expose as a byte-identity-checked sweep column.
* **wall-clock** — ``policy_select_s`` and ``elapsed_s`` are real timer
  readings, only measured while tracing is enabled (0.0 otherwise) and
  never written into result rows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelStats"]


@dataclass(frozen=True)
class KernelStats:
    """Counters from one kernel run.

    ``events`` counts discrete simulation events: one arrival firing plus,
    per placed task, memory acquire, transfer start/end, compute
    start/end and memory release — the same six the event trace records.
    ``memory_wait_s`` is total simulated time the link sat idle solely
    because the next chosen task's memory did not fit (the paper's
    memory-stall metric); waits for *arrivals* are not counted.
    ``ledger_ops`` counts memory-ledger mutations (acquire + release per
    placed task).
    """

    engine: str = ""
    tasks: int = 0
    events: int = 0
    memory_wait_s: float = 0.0
    ledger_ops: int = 0
    policy_select_s: float = 0.0
    elapsed_s: float = 0.0

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Combine stats from two runs (batch windows merging into one)."""
        return KernelStats(
            engine=self.engine if self.engine == other.engine else "mixed",
            tasks=self.tasks + other.tasks,
            events=self.events + other.events,
            memory_wait_s=self.memory_wait_s + other.memory_wait_s,
            ledger_ops=self.ledger_ops + other.ledger_ops,
            policy_select_s=self.policy_select_s + other.policy_select_s,
            elapsed_s=self.elapsed_s + other.elapsed_s,
        )
