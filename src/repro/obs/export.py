"""Exporters: Chrome trace-event JSON, Prometheus text, JSONL span logs.

One renderer per format, shared by every surface that emits it:
``/metricsz`` and the metrics exporter both go through
:func:`prometheus_lines`; ``--trace`` files, :func:`repro.obs.trace_to`
and the tracing demo all go through :func:`write_chrome_trace`.

The Chrome trace output is the `trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto and ``chrome://tracing``: duration events as matched
``B``/``E`` pairs, timestamps in microseconds, grouped by ``pid``/``tid``.
:func:`validate_chrome_trace` checks exactly the invariants those viewers
rely on (required keys, per-track monotonic timestamps, balanced
begin/end pairs) and is what the CI smoke step runs against a traced
sweep.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "prometheus_lines",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_span_log",
]


def chrome_trace_events(spans: Iterable[dict]) -> list[dict]:
    """Render span records as Chrome trace duration events (B/E pairs).

    Spans are grouped per ``(pid, tid)`` track and re-assembled into the
    parent/child forest recorded by the tracer, so begin/end pairs nest
    properly and timestamps are monotone per track even when concurrent
    asyncio tasks interleaved on one thread.  Timestamps are microseconds
    relative to the earliest span.
    """
    spans = [s for s in spans if s.get("dur", 0.0) >= 0.0]
    if not spans:
        return []
    t0 = min(s["ts"] for s in spans)
    events: list[dict] = []
    groups: dict[tuple, list[dict]] = {}
    for s in spans:
        groups.setdefault((s.get("pid", 0), s.get("tid", 0)), []).append(s)
    for (pid, tid), group in sorted(groups.items()):
        ids = {s["id"] for s in group if s.get("id")}
        children: dict[int, list[dict]] = {}
        roots: list[dict] = []
        ordered = sorted(group, key=lambda s: (s["ts"], -(s["ts"] + s["dur"])))
        for s in ordered:
            parent = s.get("parent")
            if parent is not None and parent in ids and parent != s.get("id"):
                children.setdefault(parent, []).append(s)
            else:
                roots.append(s)
        cursor = 0.0  # monotone per-track clamp, in µs

        def emit(s: dict, lo: float, hi: float) -> None:
            nonlocal cursor
            start = min(max(s["ts"], lo), hi)
            end = min(max(s["ts"] + s["dur"], start), hi)
            begin_ts = max((start - t0) * 1e6, cursor)
            cursor = begin_ts
            begin = {
                "name": s["name"],
                "cat": "repro",
                "ph": "B",
                "ts": round(begin_ts, 3),
                "pid": pid,
                "tid": tid,
            }
            if s.get("args"):
                begin["args"] = s["args"]
            events.append(begin)
            for child in children.get(s.get("id"), []):
                emit(child, start, end)
            end_ts = max((end - t0) * 1e6, cursor)
            cursor = end_ts
            events.append(
                {"name": s["name"], "ph": "E", "ts": round(end_ts, 3), "pid": pid, "tid": tid}
            )

        for root in roots:
            emit(root, root["ts"], root["ts"] + root["dur"])
    return events


def chrome_trace(spans: Iterable[dict]) -> dict:
    """The full Chrome trace JSON document for ``spans``."""
    return {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | os.PathLike, spans: Iterable[dict]) -> int:
    """Write ``spans`` as a Chrome trace file; returns the event count."""
    document = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(document["traceEvents"])


def write_span_log(path: str | os.PathLike, spans: Iterable[dict]) -> int:
    """Write raw span records as JSONL (one span dict per line)."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def validate_chrome_trace(source) -> dict:
    """Validate a Chrome trace document; raises ``ValueError`` on violation.

    ``source`` may be a dict (already parsed), a JSON string, or a path.
    Checks the invariants trace viewers rely on: a ``traceEvents`` list,
    the required keys on every event, non-decreasing timestamps per
    ``(pid, tid)`` track, and balanced, name-matched ``B``/``E`` pairs.
    Returns summary statistics (event/span/track counts, max nesting).
    """
    if isinstance(source, dict):
        document = source
    else:
        text = str(source)
        if "\n" not in text and not text.lstrip().startswith("{") and os.path.exists(text):
            with open(text, encoding="utf-8") as handle:
                document = json.load(handle)
        else:
            document = json.loads(text)
    if not isinstance(document, dict) or not isinstance(document.get("traceEvents"), list):
        raise ValueError("trace document must be an object with a 'traceEvents' list")
    events = document["traceEvents"]
    required = ("name", "ph", "ts", "pid", "tid")
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    pids, tids = set(), set()
    spans = 0
    max_depth = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{index} is not an object")
        missing = [key for key in required if key not in event]
        if missing:
            raise ValueError(f"event #{index} missing required keys: {missing}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or math.isnan(ts):
            raise ValueError(f"event #{index} has a non-numeric ts: {ts!r}")
        track = (event["pid"], event["tid"])
        pids.add(event["pid"])
        tids.add(track)
        if ts < last_ts.get(track, -math.inf):
            raise ValueError(
                f"event #{index} ts {ts} goes backwards on track pid={track[0]} tid={track[1]}"
            )
        last_ts[track] = ts
        phase = event["ph"]
        if phase == "B":
            stack = stacks.setdefault(track, [])
            stack.append(event["name"])
            max_depth = max(max_depth, len(stack))
        elif phase == "E":
            stack = stacks.get(track)
            if not stack:
                raise ValueError(f"event #{index}: 'E' without a matching 'B'")
            opened = stack.pop()
            if opened != event["name"]:
                raise ValueError(
                    f"event #{index}: 'E' for {event['name']!r} but {opened!r} is open"
                )
            spans += 1
    unclosed = {track: stack for track, stack in stacks.items() if stack}
    if unclosed:
        raise ValueError(f"unbalanced 'B' events left open: {unclosed}")
    return {
        "events": len(events),
        "spans": spans,
        "pids": len(pids),
        "tracks": len(tids),
        "max_depth": max_depth,
    }


def _format_number(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def prometheus_lines(snapshot: dict, *, prefix: str = "repro_") -> list[str]:
    """Prometheus-shaped text lines for a registry snapshot.

    Counters render as ``{prefix}{name}{labels} value``; summaries as
    ``{prefix}{name}_seconds{labels,quantile="0.5"|"0.99"}`` (NaN
    quantiles skipped) plus ``{prefix}{name}_count{labels}``; gauges as
    ``{prefix}{name} value`` with NaN rendered literally.
    """
    lines: list[str] = []
    for name, series in snapshot.get("counters", {}).items():
        for label_text, value in series.items():
            labels = f"{{{label_text}}}" if label_text else ""
            lines.append(f"{prefix}{name}{labels} {_format_number(value)}")
    for name, series in snapshot.get("summaries", {}).items():
        for label_text, stats in series.items():
            for key, q in (("p50_s", "0.5"), ("p99_s", "0.99")):
                value = stats[key]
                if not math.isnan(value):
                    joined = f"{label_text}," if label_text else ""
                    lines.append(
                        f'{prefix}{name}_seconds{{{joined}quantile="{q}"}} {value:.6f}'
                    )
            labels = f"{{{label_text}}}" if label_text else ""
            lines.append(f"{prefix}{name}_count{labels} {stats['count']}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"{prefix}{name} {_format_number(value)}")
    return lines
