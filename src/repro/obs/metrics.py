"""Labelled counters, gauges and latency summaries behind one lock.

The registry is the stack-wide aggregation point: cache hits, spill
bytes, checkpoint activity, sweep chunk lifecycle and serve request
latencies all land here, whether recorded in this process or shipped
back over the PR 5 job wire from a sweep worker.

Three instrument kinds:

* **counters** — monotonically increasing floats keyed by
  ``(name, labels)``;
* **gauges** — either a live callable sampled at snapshot time or a
  plain last-write-wins value;
* **summaries** — bounded windows of recent observations with
  nearest-rank quantile views plus lifetime count/total (the former
  ``serve.metrics.LatencyWindow``, generalised with labels).

Everything mutates under one lock; snapshots are consistent cuts.  The
wire format (:meth:`MetricsRegistry.wire_snapshot` /
:meth:`~MetricsRegistry.delta_since` / :meth:`~MetricsRegistry.merge_wire`)
is plain lists-of-JSON-scalars so it pickles cheaply and survives both
fork- and spawn-start workers: a worker snapshots at chunk start, runs,
and ships only the delta, so inherited parent counts are never double
counted.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Callable

__all__ = [
    "DEFAULT_WINDOW",
    "REGISTRY",
    "MetricsRegistry",
    "Summary",
    "quantile",
]

#: Samples kept per summary; ~2k observations of history bounds memory
#: while making p99 meaningful (20 tail samples at the default window).
DEFAULT_WINDOW = 2048

_LabelKey = tuple[tuple[str, str], ...]


def quantile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of ``samples`` by the nearest-rank method."""
    if not samples:
        return math.nan
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Summary:
    """A bounded window of recent samples with quantile views.

    ``count``/``total``/``max`` are lifetime aggregates (they keep growing
    past the window); the quantiles and mean track the window so they
    describe current behaviour rather than averaging over the whole run.
    """

    __slots__ = ("_samples", "count", "total", "max")

    def __init__(self, maxlen: int = DEFAULT_WINDOW):
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0
        self.max = math.nan

    def observe(self, value: float) -> None:
        self._samples.append(value)
        self.count += 1
        self.total += value
        if math.isnan(self.max) or value > self.max:
            self.max = value

    def merge(self, count: int, total: float, mx: float, samples: list[float]) -> None:
        """Fold in a shipped delta without re-counting its observations."""
        self._samples.extend(samples)
        self.count += count
        self.total += total
        if not math.isnan(mx) and (math.isnan(self.max) or mx > self.max):
            self.max = mx

    def samples_since(self, baseline_count: int) -> list[float]:
        """The (windowed tail of) samples observed after ``baseline_count``."""
        fresh = self.count - baseline_count
        if fresh <= 0:
            return []
        window = list(self._samples)
        return window[-fresh:] if fresh < len(window) else window

    def snapshot(self) -> dict[str, float]:
        samples = list(self._samples)
        return {
            "count": self.count,
            "p50_s": quantile(samples, 0.50),
            "p99_s": quantile(samples, 0.99),
            "mean_s": (sum(samples) / len(samples)) if samples else math.nan,
            "max_s": max(samples) if samples else math.nan,
        }


class MetricsRegistry:
    """Thread-safe counters/gauges/summaries with labels."""

    def __init__(self, *, window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._window = window
        self._counters: dict[tuple[str, _LabelKey], float] = {}
        self._summaries: dict[tuple[str, _LabelKey], Summary] = {}
        self._gauges: dict[str, Callable[[], float] | float] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to counter ``name`` with the given labels."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one sample into summary ``name`` with the given labels."""
        key = (name, _label_key(labels))
        with self._lock:
            summary = self._summaries.get(key)
            if summary is None:
                summary = self._summaries[key] = Summary(self._window)
            summary.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to a plain value (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a live gauge sampled at snapshot/render time."""
        with self._lock:
            self._gauges[name] = fn

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def value(self, name: str, **labels) -> float:
        """Current value of counter ``name`` (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of counter ``name`` across every label combination."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def counter_series(self, name: str) -> dict[_LabelKey, float]:
        """Label set -> value for every series of counter ``name``."""
        with self._lock:
            return {labels: v for (n, labels), v in self._counters.items() if n == name}

    def summary_series(self, name: str) -> dict[_LabelKey, dict[str, float]]:
        """Label set -> snapshot for every series of summary ``name``."""
        with self._lock:
            return {
                labels: s.snapshot()
                for (n, labels), s in self._summaries.items()
                if n == name
            }

    def sample_gauges(self) -> dict[str, float]:
        with self._lock:
            gauges = dict(self._gauges)
        sampled: dict[str, float] = {}
        for name, fn in sorted(gauges.items()):
            if callable(fn):
                try:
                    sampled[name] = float(fn())
                except Exception:  # a dead gauge must never take a scrape down
                    sampled[name] = math.nan
            else:
                sampled[name] = fn
        return sampled

    def snapshot(self) -> dict:
        """The whole registry as one JSON-ready dict."""
        with self._lock:
            counters = dict(self._counters)
            summaries = {key: s.snapshot() for key, s in self._summaries.items()}
        counter_view: dict[str, dict[str, float]] = {}
        for (name, labels), value in sorted(counters.items()):
            label_text = ",".join(f'{k}="{v}"' for k, v in labels)
            counter_view.setdefault(name, {})[label_text] = value
        summary_view: dict[str, dict[str, dict[str, float]]] = {}
        for (name, labels), stats in sorted(summaries.items()):
            label_text = ",".join(f'{k}="{v}"' for k, v in labels)
            summary_view.setdefault(name, {})[label_text] = stats
        return {
            "counters": counter_view,
            "summaries": summary_view,
            "gauges": self.sample_gauges(),
        }

    # ------------------------------------------------------------------ #
    # Wire (worker -> parent)
    # ------------------------------------------------------------------ #
    def wire_snapshot(self) -> dict:
        """A picklable cumulative snapshot of counters and summaries."""
        with self._lock:
            counters = [
                [name, list(labels), value]
                for (name, labels), value in self._counters.items()
            ]
            summaries = [
                [name, list(labels), summary.count, summary.total, summary.max]
                for (name, labels), summary in self._summaries.items()
            ]
        return {"counters": counters, "summaries": summaries}

    def delta_since(self, baseline: dict) -> dict:
        """What was recorded since ``baseline`` (a prior wire snapshot)."""
        base_counters = {
            (name, tuple(tuple(pair) for pair in labels)): value
            for name, labels, value in baseline.get("counters", [])
        }
        base_counts = {
            (name, tuple(tuple(pair) for pair in labels)): count
            for name, labels, count, _total, _mx in baseline.get("summaries", [])
        }
        with self._lock:
            counters = [
                [name, list(labels), value - base_counters.get((name, labels), 0.0)]
                for (name, labels), value in self._counters.items()
                if value != base_counters.get((name, labels), 0.0)
            ]
            summaries = []
            for (name, labels), summary in self._summaries.items():
                base = base_counts.get((name, labels), 0)
                if summary.count <= base:
                    continue
                fresh = summary.samples_since(base)
                summaries.append(
                    [
                        name,
                        list(labels),
                        summary.count - base,
                        sum(fresh),
                        max(fresh) if fresh else math.nan,
                        fresh,
                    ]
                )
        return {"counters": counters, "summaries": summaries}

    def merge_wire(self, wire: dict) -> None:
        """Fold a shipped delta (from :meth:`delta_since`) into this registry."""
        if not wire:
            return
        with self._lock:
            for name, labels, value in wire.get("counters", []):
                key = (name, tuple(tuple(pair) for pair in labels))
                self._counters[key] = self._counters.get(key, 0.0) + value
            for name, labels, count, total, mx, samples in wire.get("summaries", []):
                key = (name, tuple(tuple(pair) for pair in labels))
                summary = self._summaries.get(key)
                if summary is None:
                    summary = self._summaries[key] = Summary(self._window)
                summary.merge(count, total, mx, samples)

    def reset(self) -> None:
        """Drop every counter/summary and every plain-value gauge."""
        with self._lock:
            self._counters.clear()
            self._summaries.clear()
            self._gauges = {
                name: fn for name, fn in self._gauges.items() if callable(fn)
            }


#: The process-wide registry every layer records into.
REGISTRY = MetricsRegistry()
