"""Job table for submitted sweeps: status, progress, streamed events.

A ``POST /sweep`` answers immediately with a job id; the work happens in
the background.  Each :class:`ServeJob` carries the full lifecycle —
``queued → running → done | failed | cancelled`` — plus an append-only
event log that ``GET /jobs/<id>/stream`` replays and then follows live
(the events are exactly the ``Study().on_progress`` ticks, marshalled onto
the event loop).

All mutation happens on the event loop thread (worker threads hand updates
over via ``loop.call_soon_threadsafe``), so the table needs no locks; the
per-job ``asyncio.Condition`` wakes streaming readers whenever the event
log grows.
"""

from __future__ import annotations

import asyncio
import itertools
import time

__all__ = ["JobTable", "ServeJob", "TERMINAL_STATES"]

#: Lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class ServeJob:
    """One submitted background job and its observable lifecycle."""

    def __init__(self, job_id: str, kind: str, detail: dict | None = None):
        self.id = job_id
        self.kind = kind
        self.detail = detail or {}
        self.status = QUEUED
        self.created_at = time.time()
        self.finished_at: float | None = None
        self.completed = 0
        self.total: int | None = None
        self.result: dict | None = None
        self.error: dict | None = None
        self.events: list[dict] = []
        self._changed = asyncio.Condition()

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def snapshot(self, *, include_result: bool = True) -> dict:
        """The ``GET /jobs/<id>`` view."""
        body = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "created_at": self.created_at,
            "progress": {"completed": self.completed, "total": self.total},
            **self.detail,
        }
        if self.finished_at is not None:
            body["elapsed_s"] = self.finished_at - self.created_at
        if self.error is not None:
            body["error"] = self.error
        if include_result and self.result is not None:
            body["result"] = self.result
        return body


class JobTable:
    """Loop-confined registry of background jobs (newest kept, bounded)."""

    def __init__(self, *, keep: int = 256):
        self._jobs: dict[str, ServeJob] = {}
        self._sequence = itertools.count(1)
        self._keep = keep

    def create(self, kind: str, detail: dict | None = None) -> ServeJob:
        job = ServeJob(f"{kind}-{next(self._sequence):06d}", kind, detail)
        self._jobs[job.id] = job
        self._evict()
        return job

    def _evict(self) -> None:
        # Drop the oldest *terminal* jobs beyond the retention bound; live
        # jobs are never evicted, however many pile up behind admission.
        excess = len(self._jobs) - self._keep
        if excess <= 0:
            return
        for job_id in [jid for jid, job in self._jobs.items() if job.terminal][:excess]:
            del self._jobs[job_id]

    def get(self, job_id: str) -> ServeJob | None:
        return self._jobs.get(job_id)

    def list(self) -> list[dict]:
        return [job.snapshot(include_result=False) for job in self._jobs.values()]

    # ------------------------------------------------------------------ #
    # Lifecycle transitions (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _publish(self, job: ServeJob, event: dict) -> None:
        job.events.append({"seq": len(job.events), "t": time.time(), **event})
        self._notify(job)

    def _notify(self, job: ServeJob) -> None:
        async def wake() -> None:
            async with job._changed:
                job._changed.notify_all()

        asyncio.ensure_future(wake())

    def start(self, job: ServeJob) -> None:
        job.status = RUNNING
        self._publish(job, {"event": "started"})

    def progress(self, job: ServeJob, completed: int, total: int) -> None:
        job.completed, job.total = completed, total
        self._publish(job, {"event": "progress", "completed": completed, "total": total})

    def finish(self, job: ServeJob, result: dict) -> None:
        job.status = DONE
        job.result = result
        job.finished_at = time.time()
        self._publish(job, {"event": "done", "rows": result.get("rows")})

    def fail(self, job: ServeJob, error: dict) -> None:
        job.status = FAILED
        job.error = error
        job.finished_at = time.time()
        self._publish(job, {"event": "failed", "error": error})

    def cancel(self, job: ServeJob, error: dict) -> None:
        job.status = CANCELLED
        job.error = error
        job.finished_at = time.time()
        self._publish(job, {"event": "cancelled", "error": error})

    # ------------------------------------------------------------------ #
    # Streaming
    # ------------------------------------------------------------------ #
    async def follow(self, job: ServeJob, *, from_seq: int = 0):
        """Yield events from ``from_seq`` on, then live until terminal."""
        cursor = from_seq
        while True:
            while cursor < len(job.events):
                yield job.events[cursor]
                cursor += 1
            if job.terminal:
                return
            async with job._changed:
                if cursor >= len(job.events) and not job.terminal:
                    await job._changed.wait()
