"""Request metrics for the serving daemon — a thin view over ``repro.obs``.

Historically this module owned its own counter/latency machinery; PR 9
moved that into :mod:`repro.obs.metrics`, and what remains here is the
serve-shaped surface on top of it:

* :class:`LatencyWindow` — the obs :class:`~repro.obs.metrics.Summary`
  under its historical name (bounded sample window, lifetime count,
  nearest-rank quantile snapshot);
* :class:`ServerMetrics` — per-endpoint/outcome request counts, latency
  summaries and live gauges, recorded into a *private*
  :class:`~repro.obs.metrics.MetricsRegistry` so independent server
  instances (tests, embedded daemons) never share state;
* ``quantile`` — re-exported from :mod:`repro.obs.metrics`.

``render()`` produces the Prometheus text served at ``/metricsz`` via the
shared :func:`repro.obs.prometheus_lines` renderer — one formatting path
for the daemon scrape endpoint and the obs exporter.
"""

from __future__ import annotations

import time

from ..obs.export import prometheus_lines
from ..obs.metrics import DEFAULT_WINDOW, MetricsRegistry, Summary, quantile

__all__ = ["DEFAULT_WINDOW", "LatencyWindow", "ServerMetrics", "quantile"]


class LatencyWindow(Summary):
    """Sliding window of request latencies (the obs ``Summary``, renamed).

    ``count`` is a lifetime total; the quantiles/mean/max in
    :meth:`snapshot` describe only the most recent ``maxlen`` samples, so
    a long-running server reports current behaviour, not its whole
    history.
    """

    def __init__(self, maxlen: int = DEFAULT_WINDOW) -> None:
        super().__init__(maxlen)


class ServerMetrics:
    """Request counters, latency windows and gauges for one server.

    Each instance owns a private registry: counters keyed
    ``(endpoint, outcome)``, one latency summary per endpoint, and live
    gauges sampled at snapshot/render time.  All mutation is lock-guarded
    by the registry, so worker threads and the asyncio loop can record
    concurrently.
    """

    def __init__(self, *, window: int = DEFAULT_WINDOW) -> None:
        self.started_at = time.time()
        self._registry = MetricsRegistry(window=window)

    def observe(self, endpoint: str, outcome: str, seconds: float) -> None:
        """Record one finished request: its route, outcome and latency."""
        self._registry.inc("requests", endpoint=endpoint, outcome=outcome)
        self._registry.observe("request_latency", seconds, endpoint=endpoint)

    def add_gauge(self, name: str, fn) -> None:
        """Register a live gauge; a failing gauge reads as NaN, never raises."""
        self._registry.register_gauge(name, fn)

    def snapshot(self) -> dict:
        """The whole metrics state as one JSON-ready dict."""
        requests: dict[str, dict[str, int]] = {}
        for labels, value in sorted(self._registry.counter_series("requests").items()):
            series = dict(labels)
            requests.setdefault(series["endpoint"], {})[series["outcome"]] = int(value)
        latency = {
            dict(labels)["endpoint"]: stats
            for labels, stats in sorted(
                self._registry.summary_series("request_latency").items()
            )
        }
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": requests,
            "requests_total": int(self._registry.counter_total("requests")),
            "latency": latency,
            "gauges": self._registry.sample_gauges(),
        }

    def render(self) -> str:
        """Prometheus-shaped plain text (the ``/metricsz`` body)."""
        snap = self.snapshot()
        lines = [
            "# repro.serve metrics",
            f"repro_uptime_seconds {snap['uptime_s']:.3f}",
            f"repro_requests_total {snap['requests_total']}",
        ]
        lines.extend(prometheus_lines(self._registry.snapshot()))
        return "\n".join(lines) + "\n"
