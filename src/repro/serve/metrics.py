"""Live serving metrics: request counters, latency quantiles, gauges.

One :class:`ServerMetrics` instance aggregates everything ``/metricsz``
exposes:

* request counts per ``(endpoint, outcome)`` — outcomes are the error codes
  of :mod:`repro.serve.protocol` plus ``"ok"``;
* per-endpoint latency quantiles (p50/p99/mean) over a bounded window of
  recent samples, so the numbers track current behaviour instead of
  averaging over the daemon's whole lifetime;
* *gauges* — live callables sampled at render time (queue depth, busy
  workers, cache hit rate), registered by whoever owns the underlying
  state.

All mutation goes through one lock: latencies are recorded from HTTP
handler tasks, cache counters from worker threads, and scrapes may happen
mid-request.  The text exposition is deliberately Prometheus-shaped
(``name{label="..."} value``) without claiming full compliance — it is
grep-able, diff-able and scrape-able.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Callable

__all__ = ["LatencyWindow", "ServerMetrics", "quantile"]

#: Samples kept per endpoint; ~2k requests of history bounds memory while
#: making p99 meaningful (20 tail samples at the default window).
DEFAULT_WINDOW = 2048


def quantile(samples: list[float], q: float) -> float:
    """The q-quantile (0..1) of ``samples`` by the nearest-rank method."""
    if not samples:
        return math.nan
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class LatencyWindow:
    """A bounded window of recent latency samples with quantile views."""

    def __init__(self, maxlen: int = DEFAULT_WINDOW):
        self._samples: deque[float] = deque(maxlen=maxlen)
        self.count = 0  # lifetime observations, beyond the window

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)
        self.count += 1

    def snapshot(self) -> dict[str, float]:
        samples = list(self._samples)
        return {
            "count": self.count,
            "p50_s": quantile(samples, 0.50),
            "p99_s": quantile(samples, 0.99),
            "mean_s": (sum(samples) / len(samples)) if samples else math.nan,
            "max_s": max(samples) if samples else math.nan,
        }


class ServerMetrics:
    """Thread-safe aggregation point for everything ``/metricsz`` shows."""

    def __init__(self, *, window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._window = window
        self._counts: dict[tuple[str, str], int] = {}
        self._latencies: dict[str, LatencyWindow] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self.started_at = time.time()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def observe(self, endpoint: str, outcome: str, seconds: float) -> None:
        """Count one finished request and record its wall-clock latency."""
        with self._lock:
            self._counts[(endpoint, outcome)] = self._counts.get((endpoint, outcome), 0) + 1
            window = self._latencies.get(endpoint)
            if window is None:
                window = self._latencies[endpoint] = LatencyWindow(self._window)
            window.observe(seconds)

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a live value sampled at snapshot/render time."""
        with self._lock:
            self._gauges[name] = fn

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def _sample_gauges(self) -> dict[str, float]:
        with self._lock:
            gauges = dict(self._gauges)
        sampled = {}
        for name, fn in sorted(gauges.items()):
            try:
                sampled[name] = float(fn())
            except Exception:  # a dead gauge must never take /metricsz down
                sampled[name] = math.nan
        return sampled

    def snapshot(self) -> dict:
        """The whole metrics surface as one JSON-ready dict."""
        with self._lock:
            counts = dict(self._counts)
            latencies = {name: window.snapshot() for name, window in self._latencies.items()}
        requests: dict[str, dict[str, int]] = {}
        for (endpoint, outcome), value in sorted(counts.items()):
            requests.setdefault(endpoint, {})[outcome] = value
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": requests,
            "requests_total": sum(counts.values()),
            "latency": dict(sorted(latencies.items())),
            "gauges": self._sample_gauges(),
        }

    def render(self) -> str:
        """Text exposition: one ``name{labels} value`` line per datum."""
        snap = self.snapshot()
        lines = [
            "# repro.serve metrics",
            f"repro_uptime_seconds {snap['uptime_s']:.3f}",
            f"repro_requests_total {snap['requests_total']}",
        ]
        for endpoint, outcomes in snap["requests"].items():
            for outcome, value in sorted(outcomes.items()):
                lines.append(
                    f'repro_requests{{endpoint="{endpoint}",outcome="{outcome}"}} {value}'
                )
        for endpoint, stats in snap["latency"].items():
            for key, label in (("p50_s", "0.5"), ("p99_s", "0.99")):
                value = stats[key]
                if not math.isnan(value):
                    lines.append(
                        f'repro_request_latency_seconds{{endpoint="{endpoint}",'
                        f'quantile="{label}"}} {value:.6f}'
                    )
            lines.append(
                f'repro_request_latency_count{{endpoint="{endpoint}"}} {stats["count"]}'
            )
        for name, value in snap["gauges"].items():
            rendered = "NaN" if math.isnan(value) else f"{value:.6g}"
            lines.append(f"repro_{name} {rendered}")
        return "\n".join(lines) + "\n"
