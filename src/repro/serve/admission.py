"""Admission control: a bounded waiting room in front of the worker pool.

The server admits at most ``max_inflight + queue_limit`` unfinished
requests: ``max_inflight`` models the work the pool can usefully execute
concurrently, ``queue_limit`` the extra requests allowed to wait for a
worker.  Everything beyond that is *rejected immediately* with a structured
429-style payload — the queue never grows without bound, latency stays
predictable, and a saturating burst degrades into fast failures instead of
a collapse.

An admitted request holds a :class:`Ticket` until it finishes (successfully
or not).  Tickets are idempotent to finish and thread-safe to touch from
worker threads, because the job that outlives its deadline is completed by
a pool thread long after the HTTP handler has answered the client.
"""

from __future__ import annotations

import threading

__all__ = ["AdmissionController", "AdmissionRejected", "Ticket"]


class AdmissionRejected(RuntimeError):
    """The controller refused a request; carries the saturation snapshot."""

    def __init__(self, message: str, *, active: int, limit: int):
        super().__init__(message)
        self.active = active
        self.limit = limit


class Ticket:
    """One admitted request's claim on the server's bounded capacity."""

    __slots__ = ("_controller", "_done", "cancelled")

    def __init__(self, controller: "AdmissionController"):
        self._controller = controller
        self._done = False
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the request as abandoned (deadline passed, client gone).

        The capacity is *not* released here — a worker may still be burning
        a slot on the job — but a pool that has not started the job yet
        checks the flag and skips the work entirely.
        """
        self.cancelled = True

    def finish(self) -> None:
        """Release the admitted slot (idempotent; called from any thread)."""
        with self._controller._lock:
            if self._done:
                return
            self._done = True
            self._controller._active -= 1


class AdmissionController:
    """Thread-safe bounded admission: admit-or-reject, never block."""

    def __init__(self, max_inflight: int, queue_limit: int):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self._lock = threading.Lock()
        self._active = 0
        self._rejected = 0

    @property
    def limit(self) -> int:
        return self.max_inflight + self.queue_limit

    @property
    def active(self) -> int:
        """Admitted-and-unfinished requests (executing or waiting)."""
        with self._lock:
            return self._active

    @property
    def rejected_total(self) -> int:
        with self._lock:
            return self._rejected

    def admit(self) -> Ticket:
        """Claim a slot or raise :class:`AdmissionRejected` — never waits."""
        with self._lock:
            if self._active >= self.limit:
                self._rejected += 1
                raise AdmissionRejected(
                    f"server saturated: {self._active} requests in flight "
                    f"(limit {self.limit} = {self.max_inflight} executing "
                    f"+ {self.queue_limit} queued); retry later",
                    active=self._active,
                    limit=self.limit,
                )
            self._active += 1
        return Ticket(self)
