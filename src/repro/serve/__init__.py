"""``repro.serve`` — the solver as infrastructure, not a script.

A stdlib-only asyncio HTTP daemon that serves the whole solver registry to
concurrent clients: single-instance ``/solve`` calls (answered through one
shared :class:`~repro.portfolio.cache.ResultCache`), background ``/sweep``
jobs with polled or streamed progress, admission control with structured
saturation rejections, per-request deadlines, live ``/metricsz`` metrics
and graceful drain on SIGTERM.  Start it with ``python -m repro serve``;
talk to it with :class:`ServeClient` or any HTTP client.

Layers (one module each):

* :mod:`~repro.serve.protocol` — JSON wire shapes and strict request parsing;
* :mod:`~repro.serve.admission` — the bounded admit-or-reject waiting room;
* :mod:`~repro.serve.pool` — the shared worker pool, doubling as a PR 5
  :class:`~repro.api.backends.ExecutionBackend` so sweeps reuse the job plane;
* :mod:`~repro.serve.jobs` — background job lifecycle and event streams;
* :mod:`~repro.serve.metrics` — counters, latency quantiles, gauges;
* :mod:`~repro.serve.server` — the HTTP daemon itself;
* :mod:`~repro.serve.client` — a dependency-free blocking client.
"""

from .admission import AdmissionController, AdmissionRejected, Ticket
from .client import ServeClient, ServeError
from .metrics import LatencyWindow, ServerMetrics, quantile
from .pool import PoolBackend, ServePool
from .protocol import (
    ProtocolError,
    SolveRequest,
    SweepRequest,
    error_body,
    instance_from_wire,
    instance_to_wire,
    schedule_to_wire,
)
from .server import ReproServer, ServerConfig, ServerThread, serve_forever

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "LatencyWindow",
    "PoolBackend",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "ServePool",
    "ServerConfig",
    "ServerMetrics",
    "ServerThread",
    "SolveRequest",
    "SweepRequest",
    "Ticket",
    "error_body",
    "instance_from_wire",
    "instance_to_wire",
    "quantile",
    "schedule_to_wire",
    "serve_forever",
]
