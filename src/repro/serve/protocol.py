"""Wire protocol of the scheduling service: JSON codecs and request parsing.

Everything a client sends or receives is plain JSON.  This module owns the
shapes:

* instances travel as ``{"capacity": ..., "tasks": [{"name", "comm",
  "comp", "memory", "release", "tag"}, ...]}`` — the same quantities as
  :class:`repro.core.task.Task`, floats as numbers;
* schedules come back as one entry per task with ``comm_start`` /
  ``comp_start`` (ends are derived client-side from the task times);
* every error response is ``{"error": {"code": ..., "message": ...}}`` with
  machine-readable codes (``bad_request``, ``saturated``, ``draining``,
  ``deadline_exceeded``, ``not_found``, ``internal``) so clients branch on
  the code, never on prose.

Parsing is strict: unknown fields raise, wrong types raise, and the raised
:class:`ProtocolError` carries the HTTP status the server should answer
with.  The sweep request deliberately mirrors the ``python -m repro sweep``
flags (workload/solvers/capacities/arrivals/batching), so anything you can
sweep from the shell you can submit to the daemon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..api import Study
from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.task import Task

__all__ = [
    "ERROR_BAD_REQUEST",
    "ERROR_DEADLINE",
    "ERROR_DRAINING",
    "ERROR_INTERNAL",
    "ERROR_NOT_FOUND",
    "ERROR_SATURATED",
    "ProtocolError",
    "SolveRequest",
    "SweepRequest",
    "build_sweep_study",
    "build_workload",
    "error_body",
    "instance_from_wire",
    "instance_to_wire",
    "parse_solve_request",
    "parse_sweep_request",
    "schedule_to_wire",
]

#: Machine-readable error codes (the ``error.code`` field of every failure).
ERROR_BAD_REQUEST = "bad_request"
ERROR_SATURATED = "saturated"
ERROR_DRAINING = "draining"
ERROR_DEADLINE = "deadline_exceeded"
ERROR_NOT_FOUND = "not_found"
ERROR_INTERNAL = "internal"

#: Workloads the sweep endpoint can synthesize server-side.
CHEMISTRY_WORKLOADS = ("hf", "ccsd")


class ProtocolError(ValueError):
    """A request the server refuses to run, with its HTTP status and code."""

    def __init__(self, message: str, *, status: int = 400, code: str = ERROR_BAD_REQUEST):
        super().__init__(message)
        self.status = status
        self.code = code


def error_body(code: str, message: str, **details: Any) -> dict:
    """The uniform error envelope: ``{"error": {"code", "message", ...}}``."""
    body = {"code": code, "message": message}
    body.update(details)
    return {"error": body}


# --------------------------------------------------------------------- #
# Instance / schedule codecs
# --------------------------------------------------------------------- #
def _number(value: Any, label: str, *, minimum: float | None = None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{label} must be a number, got {value!r}")
    number = float(value)
    if not math.isfinite(number):
        raise ProtocolError(f"{label} must be finite, got {value!r}")
    if minimum is not None and number < minimum:
        raise ProtocolError(f"{label} must be >= {minimum}, got {value!r}")
    return number


def instance_to_wire(instance: Instance) -> dict:
    """Encode an :class:`Instance` as the request/response JSON shape."""
    return {
        "name": instance.name,
        "capacity": instance.capacity,
        "tasks": [
            {
                "name": task.name,
                "comm": task.comm,
                "comp": task.comp,
                "memory": task.memory,
                "release": task.release,
                "tag": task.tag,
            }
            for task in instance.tasks
        ],
    }


def instance_from_wire(payload: Any) -> Instance:
    """Decode and validate the instance shape of a solve request."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"instance must be an object, got {type(payload).__name__}")
    tasks_wire = payload.get("tasks")
    if not isinstance(tasks_wire, list) or not tasks_wire:
        raise ProtocolError("instance.tasks must be a non-empty list")
    tasks = []
    for index, item in enumerate(tasks_wire):
        if not isinstance(item, Mapping):
            raise ProtocolError(f"instance.tasks[{index}] must be an object")
        unknown = set(item) - {"name", "comm", "comp", "memory", "release", "tag"}
        if unknown:
            raise ProtocolError(
                f"instance.tasks[{index}] has unknown fields {sorted(unknown)}"
            )
        name = item.get("name", f"t{index}")
        if not isinstance(name, str) or not name:
            raise ProtocolError(f"instance.tasks[{index}].name must be a non-empty string")
        try:
            tasks.append(
                Task(
                    name=name,
                    comm=_number(item.get("comm", 0.0), f"instance.tasks[{index}].comm"),
                    comp=_number(item.get("comp", 0.0), f"instance.tasks[{index}].comp"),
                    memory=(
                        _number(item["memory"], f"instance.tasks[{index}].memory")
                        if "memory" in item
                        else math.nan
                    ),
                    release=_number(
                        item.get("release", 0.0), f"instance.tasks[{index}].release"
                    ),
                    tag=str(item.get("tag", "")),
                )
            )
        except ValueError as error:  # Task's own invariants (negative times, ...)
            raise ProtocolError(f"instance.tasks[{index}]: {error}") from None
    capacity = payload.get("capacity")
    if capacity is None:
        raise ProtocolError("instance.capacity is required")
    name = payload.get("name", "")
    if not isinstance(name, str):
        raise ProtocolError("instance.name must be a string")
    try:
        return Instance(
            tasks, capacity=_number(capacity, "instance.capacity"), name=name
        )
    except ValueError as error:
        raise ProtocolError(f"invalid instance: {error}") from None


def schedule_to_wire(schedule: Schedule) -> list[dict]:
    """Encode a schedule as one JSON entry per task, in execution order."""
    return [
        {
            "task": entry.task.name,
            "comm_start": entry.comm_start,
            "comm_end": entry.comm_end,
            "comp_start": entry.comp_start,
            "comp_end": entry.comp_end,
        }
        for entry in schedule
    ]


# --------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------- #
def _parse_deadline(payload: Mapping, label: str) -> float | None:
    deadline = payload.get("deadline_s")
    if deadline is None:
        return None
    if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
        raise ProtocolError(f"{label}.deadline_s must be a number of seconds")
    # Zero and negative deadlines are accepted: they mean "already past",
    # and the server answers with the structured timeout without running.
    return float(deadline)


@dataclass(frozen=True)
class SolveRequest:
    """One parsed ``POST /solve`` body."""

    instance: Instance
    solver: str = "LCMR"
    params: dict = field(default_factory=dict)
    deadline_s: float | None = None
    use_cache: bool = True
    include_schedule: bool = False


def parse_solve_request(payload: Any) -> SolveRequest:
    if not isinstance(payload, Mapping):
        raise ProtocolError("solve request body must be a JSON object")
    unknown = set(payload) - {
        "instance",
        "solver",
        "params",
        "deadline_s",
        "cache",
        "include_schedule",
    }
    if unknown:
        raise ProtocolError(f"solve request has unknown fields {sorted(unknown)}")
    if "instance" not in payload:
        raise ProtocolError("solve request needs an 'instance'")
    solver = payload.get("solver", "LCMR")
    if not isinstance(solver, str) or not solver:
        raise ProtocolError("solver must be a non-empty solver name")
    if solver.lower().startswith("category:"):
        raise ProtocolError(
            "solve runs a single solver; submit a sweep to run a whole category"
        )
    params = payload.get("params", {})
    if not isinstance(params, Mapping):
        raise ProtocolError("params must be an object of solver keyword arguments")
    use_cache = payload.get("cache", True)
    include_schedule = payload.get("include_schedule", False)
    if not isinstance(use_cache, bool):
        raise ProtocolError("cache must be true or false")
    if not isinstance(include_schedule, bool):
        raise ProtocolError("include_schedule must be true or false")
    return SolveRequest(
        instance=instance_from_wire(payload["instance"]),
        solver=solver,
        params=dict(params),
        deadline_s=_parse_deadline(payload, "solve"),
        use_cache=use_cache,
        include_schedule=include_schedule,
    )


@dataclass(frozen=True)
class SweepRequest:
    """One parsed ``POST /sweep`` body — the daemon-side ``repro sweep``."""

    workload: str = "mixed-intensity"
    traces: int = 4
    tasks: int = 200
    processes: int = 150
    seed: int = 0
    task_limit: int | None = None
    solvers: tuple[str, ...] = ()
    capacities: tuple[float, ...] | None = None
    steps: int | None = None
    arrivals_load: float | None = None
    arrival_seed: int = 0
    batch_size: int | None = None
    pipelined: bool = False
    validate: bool = True
    deadline_s: float | None = None
    include_rows: bool = False


def _parse_int(payload: Mapping, key: str, default: int, *, minimum: int = 1) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"sweep.{key} must be an integer")
    if value < minimum:
        raise ProtocolError(f"sweep.{key} must be >= {minimum}, got {value}")
    return value


def parse_sweep_request(payload: Any) -> SweepRequest:
    if not isinstance(payload, Mapping):
        raise ProtocolError("sweep request body must be a JSON object")
    known = {
        "workload",
        "traces",
        "tasks",
        "processes",
        "seed",
        "task_limit",
        "solvers",
        "capacities",
        "steps",
        "arrivals_load",
        "arrival_seed",
        "batch_size",
        "pipelined",
        "validate",
        "deadline_s",
        "include_rows",
    }
    unknown = set(payload) - known
    if unknown:
        raise ProtocolError(f"sweep request has unknown fields {sorted(unknown)}")

    from ..traces.generator import REGIMES

    workload = payload.get("workload", "mixed-intensity")
    allowed = sorted(REGIMES) + list(CHEMISTRY_WORKLOADS)
    if workload not in allowed:
        raise ProtocolError(f"unknown workload {workload!r}; choose from {allowed}")

    solvers = payload.get("solvers", [])
    if not isinstance(solvers, list) or not all(
        isinstance(item, str) and item for item in solvers
    ):
        raise ProtocolError("sweep.solvers must be a list of solver names")

    capacities = payload.get("capacities")
    if capacities is not None:
        if not isinstance(capacities, list) or not capacities:
            raise ProtocolError("sweep.capacities must be a non-empty list of factors")
        capacities = tuple(
            _number(item, f"sweep.capacities[{index}]", minimum=1e-12)
            for index, item in enumerate(capacities)
        )
    steps = payload.get("steps")
    if steps is not None:
        if isinstance(steps, bool) or not isinstance(steps, int) or steps < 2:
            raise ProtocolError("sweep.steps must be an integer >= 2")
        if capacities is None or len(capacities) != 2:
            raise ProtocolError("sweep.steps needs exactly two capacities bounds")

    arrivals_load = payload.get("arrivals_load")
    if arrivals_load is not None:
        arrivals_load = _number(arrivals_load, "sweep.arrivals_load", minimum=1e-12)
    batch_size = payload.get("batch_size")
    if batch_size is not None:
        batch_size = _parse_int(payload, "batch_size", batch_size)
    if arrivals_load is not None and batch_size is not None:
        raise ProtocolError("sweep cannot combine arrivals_load and batch_size")
    pipelined = payload.get("pipelined", False)
    if not isinstance(pipelined, bool):
        raise ProtocolError("sweep.pipelined must be true or false")
    if pipelined and batch_size is None:
        raise ProtocolError("sweep.pipelined requires batch_size")
    validate = payload.get("validate", True)
    if not isinstance(validate, bool):
        raise ProtocolError("sweep.validate must be true or false")
    include_rows = payload.get("include_rows", False)
    if not isinstance(include_rows, bool):
        raise ProtocolError("sweep.include_rows must be true or false")
    task_limit = payload.get("task_limit")
    if task_limit is not None:
        task_limit = _parse_int(payload, "task_limit", task_limit)

    return SweepRequest(
        workload=workload,
        traces=_parse_int(payload, "traces", 4),
        tasks=_parse_int(payload, "tasks", 200),
        processes=_parse_int(payload, "processes", 150),
        seed=_parse_int(payload, "seed", 0, minimum=0),
        task_limit=task_limit,
        solvers=tuple(solvers),
        capacities=capacities,
        steps=steps,
        arrivals_load=arrivals_load,
        arrival_seed=_parse_int(payload, "arrival_seed", 0, minimum=0),
        batch_size=batch_size,
        pipelined=pipelined,
        validate=validate,
        deadline_s=_parse_deadline(payload, "sweep"),
        include_rows=include_rows,
    )


# --------------------------------------------------------------------- #
# Workload synthesis (shared with the CLI)
# --------------------------------------------------------------------- #
def build_workload(
    workload: str, *, traces: int, tasks: int, processes: int, seed: int
):
    """Materialize a named workload: a synthetic regime or hf/ccsd ensemble."""
    if workload == "hf":
        from ..chemistry import hf_ensemble

        return hf_ensemble(processes=processes, traces=traces, seed=seed)
    if workload == "ccsd":
        from ..chemistry import ccsd_ensemble

        return ccsd_ensemble(processes=processes, traces=traces, seed=seed)
    from ..traces.generator import synthetic_ensemble

    return synthetic_ensemble(
        workload, processes=traces, tasks_per_process=tasks, seed=seed
    )


def build_sweep_study(request: SweepRequest) -> Study:
    """Translate a parsed sweep request into a runnable :class:`Study`.

    Execution concerns — backend, progress callback, chunking — are left to
    the server, which attaches its shared worker pool before running.
    """
    study = Study().traces(
        build_workload(
            request.workload,
            traces=request.traces,
            tasks=request.tasks,
            processes=request.processes,
            seed=request.seed,
        )
    )
    if request.capacities is not None:
        study.capacities(*request.capacities, steps=request.steps)
    if request.solvers:
        study.solvers(*request.solvers)
    if request.arrivals_load is not None:
        from ..simulator.arrivals import PoissonArrivals

        study.arrivals(PoissonArrivals(load=request.arrivals_load), seed=request.arrival_seed)
    if request.batch_size is not None:
        study.batched(request.batch_size, pipelined=request.pipelined)
    if request.task_limit is not None:
        study.task_limit(request.task_limit)
    study.validate(request.validate)
    return study


def summarize_results(results, *, include_rows: bool = False) -> dict:
    """The sweep result payload: counts, per-solver means, optional rows."""
    if not len(results):
        return {"rows": 0, "mean_ratio_to_optimal": {}, "best_solver": None}
    means = results.aggregate("ratio_to_optimal", by=("heuristic",), how="mean")
    flat = {str(name): value for name, value in means.items()}
    summary = {
        "rows": len(results),
        "traces": len(set(results.column("trace"))),
        "capacities": len(set(results.column("capacity_factor"))),
        "solvers": sorted(flat),
        "mean_ratio_to_optimal": flat,
        "best_solver": min(flat, key=flat.get),
    }
    if include_rows:
        summary["columns"] = results.to_columns()
    return summary
