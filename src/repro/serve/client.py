"""Stdlib client for the scheduling service (no dependencies, one class).

Used by the test-suite, the latency benchmark and ``examples/serve_client.py``
— and small enough to vendor into any consumer::

    client = ServeClient("127.0.0.1", 8765)
    client.healthz()["status"]                      # "ok"
    client.solve(instance, solver="LCMR")["makespan"]
    job = client.submit_sweep(workload="balanced", traces=2, tasks=40)
    for event in client.stream(job["job_id"]):      # live progress ticks
        print(event)
    client.job(job["job_id"])["result"]["best_solver"]

Error responses raise :class:`ServeError` carrying the HTTP status and the
structured ``error.code``, so callers branch on ``error.code ==
"saturated"`` / ``"deadline_exceeded"`` instead of parsing prose.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Iterator, Mapping

from ..core.instance import Instance
from .protocol import instance_to_wire

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx response; carries the status and structured error body."""

    def __init__(self, status: int, payload: Mapping):
        error = payload.get("error", {}) if isinstance(payload, Mapping) else {}
        super().__init__(error.get("message") or f"HTTP {status}")
        self.status = status
        self.code = error.get("code", "unknown")
        self.payload = dict(payload) if isinstance(payload, Mapping) else {}


class ServeClient:
    """Minimal blocking HTTP client for one ``repro serve`` daemon."""

    def __init__(self, host: str, port: int, *, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, payload: Mapping | None = None) -> Any:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                decoded: Any = json.loads(raw) if raw else {}
            else:
                decoded = raw.decode("utf-8")
            if response.status >= 400:
                raise ServeError(response.status, decoded if isinstance(decoded, Mapping) else {})
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metricsz")

    def metrics(self) -> dict:
        return self._request("GET", "/metricsz?format=json")

    def solve(
        self,
        instance: Instance | Mapping,
        *,
        solver: str = "LCMR",
        params: Mapping | None = None,
        deadline_s: float | None = None,
        cache: bool = True,
        include_schedule: bool = False,
    ) -> dict:
        """Schedule one instance; raises :class:`ServeError` on rejection."""
        wire = instance_to_wire(instance) if isinstance(instance, Instance) else dict(instance)
        payload: dict = {
            "instance": wire,
            "solver": solver,
            "cache": cache,
            "include_schedule": include_schedule,
        }
        if params:
            payload["params"] = dict(params)
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        return self._request("POST", "/solve", payload)

    def submit_sweep(self, **spec: Any) -> dict:
        """Submit a background sweep; returns ``{"job_id", "poll", "stream"}``."""
        return self._request("POST", "/sweep", spec)

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def wait(self, job_id: str, *, timeout: float = 120.0, poll_s: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["status"] in ("done", "failed", "cancelled"):
                return snapshot
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {snapshot['status']} after {timeout}s")
            time.sleep(poll_s)

    def stream(self, job_id: str) -> Iterator[dict]:
        """Follow a job's NDJSON event stream until its terminal event."""
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/jobs/{job_id}/stream")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    decoded = json.loads(raw)
                except ValueError:
                    decoded = {}
                raise ServeError(response.status, decoded)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        except (socket.timeout, ConnectionError):
            return
        finally:
            connection.close()
