"""The server's shared worker pool — one executor, every client.

This is the multiplexing point of the daemon: a single persistent
``ThreadPoolExecutor`` executes *all* admitted work, whatever the client or
endpoint.  Two faces over the same threads:

* :meth:`ServePool.submit` — fire one callable (a ``/solve`` request) and
  get a ``concurrent.futures.Future`` the asyncio handler can await with a
  deadline;
* :meth:`ServePool.backend` — an :class:`~repro.api.backends.ExecutionBackend`
  view, so a whole ``Study`` sweep fans its PR 5 :class:`SweepJob` plane
  across the *same* shared workers (reusing the backend layer's
  order-preserving chunk machinery).  Concurrent sweeps interleave at job
  granularity instead of monopolizing the pool.

Unlike :class:`~repro.api.backends.ThreadBackend`, which builds a pool per
call, the executor here lives as long as the server; cancellation is
cooperative — a backend view built with a ``cancel`` event stops launching
new jobs (raising :class:`~repro.api.backends.StopSweep`) the moment the
event is set, which is how past-deadline sweeps die mid-flight.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Sequence

from ..api.backends import StopSweep, _checked_chunk_size, _chunked, _run_pool
from ..api.results import RunRecord

__all__ = ["ServePool", "PoolBackend"]


class ServePool:
    """Persistent bounded worker pool with busy-count observability."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.size = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve-worker"
        )
        self._lock = threading.Lock()
        self._busy = 0
        self._completed = 0

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    @property
    def busy(self) -> int:
        """Workers executing something right now."""
        with self._lock:
            return self._busy

    @property
    def completed_total(self) -> int:
        with self._lock:
            return self._completed

    def utilization(self) -> float:
        """Busy fraction of the pool, 0.0 .. 1.0."""
        return self.busy / self.size

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _tracked(self, fn: Callable, /, *args, **kwargs):
        with self._lock:
            self._busy += 1
        try:
            return fn(*args, **kwargs)
        finally:
            with self._lock:
                self._busy -= 1
                self._completed += 1

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Run one callable on the shared workers (FIFO beyond pool size)."""
        return self._executor.submit(self._tracked, fn, *args, **kwargs)

    def backend(self, cancel: threading.Event | None = None) -> "PoolBackend":
        """An ExecutionBackend view over the shared workers.

        ``cancel`` (optional) makes the view cooperative: once set, chunks
        that have not started yet raise ``StopSweep`` instead of running,
        and the sweep's remaining chunks are cancelled.
        """
        return PoolBackend(self, cancel)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


class PoolBackend:
    """ExecutionBackend protocol over a :class:`ServePool` (shared workers).

    Order-preserving like every backend: results come back in submission
    order, so a sweep served by the daemon is byte-identical to the same
    sweep run locally on the serial backend.
    """

    name = "serve-pool"

    def __init__(self, pool: ServePool, cancel: threading.Event | None = None):
        self._pool = pool
        self._cancel = cancel

    def _run_chunk(self, jobs: Sequence) -> list[list[RunRecord]]:
        results = []
        for job in jobs:
            if self._cancel is not None and self._cancel.is_set():
                raise StopSweep(f"sweep cancelled before job {job.label!r}")
            results.append(job.run())
        return results

    def run(self, jobs, *, chunk_size=None, on_progress=None):
        chunk_size = _checked_chunk_size(chunk_size)
        jobs = list(jobs)
        if not jobs:
            return []
        # Default to one job per chunk: the pool is shared by every client,
        # so fine-grained chunks let concurrent requests interleave fairly
        # (a request never waits behind a whole foreign sweep).
        chunks = _chunked(jobs, chunk_size if chunk_size is not None else 1)
        per_chunk = _run_pool(
            _SubmitAdapter(self._pool), chunks, len(jobs), on_progress, runner=self._run_chunk
        )
        return [records for chunk in per_chunk for records in chunk]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PoolBackend(workers={self._pool.size})"


class _SubmitAdapter:
    """Duck-typed executor handing ``_run_pool`` submissions to the pool."""

    def __init__(self, pool: ServePool):
        self._pool = pool

    def submit(self, fn, /, *args, **kwargs) -> Future:
        return self._pool.submit(fn, *args, **kwargs)
