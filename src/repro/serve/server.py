"""The asyncio HTTP daemon: ``python -m repro serve``.

Stdlib only: a hand-rolled HTTP/1.1 layer over ``asyncio.start_server``
(request line + headers + Content-Length body; responses close the
connection), an admission-controlled shared worker pool executing the
actual scheduling work, and a small job table for background sweeps.

Endpoints
---------
=======  ==================  ==================================================
method   path                what it does
=======  ==================  ==================================================
GET      /healthz            liveness + drain state + inflight counts
GET      /metricsz           text metrics (``?format=json`` for the snapshot)
POST     /solve              schedule one instance with one solver, cached
POST     /sweep              submit a background sweep, answers a job id
GET      /jobs               list known jobs
GET      /jobs/<id>          job status, progress and (when done) the result
GET      /jobs/<id>/stream   NDJSON event stream: progress ticks until terminal
=======  ==================  ==================================================

Operational guarantees (each covered by ``tests/serve/``):

* **admission control** — beyond ``max_inflight + queue_limit`` unfinished
  requests, new work is rejected *immediately* with HTTP 429 and a
  structured ``saturated`` error; the queue cannot collapse;
* **deadlines** — a request whose ``deadline_s`` elapses is answered with a
  structured ``deadline_exceeded`` error, never a hung connection; queued
  work is cancelled outright, running sweeps are aborted cooperatively at
  the next job boundary (:class:`~repro.api.backends.StopSweep`);
* **graceful shutdown** — SIGTERM/SIGINT stop accepting work (new requests
  get a ``draining`` rejection) and drain in-flight requests before exit;
* **shared cache** — one :class:`~repro.portfolio.cache.ResultCache` serves
  every client, and each ``/solve`` response reports whether it hit.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

import itertools

from .. import obs
from ..api import StopSweep, solve
from ..portfolio.cache import CachedSolver, ResultCache
from . import protocol
from .admission import AdmissionController, AdmissionRejected
from .jobs import JobTable, ServeJob
from .metrics import ServerMetrics
from .pool import ServePool
from .protocol import ProtocolError, error_body

__all__ = ["ReproServer", "ServerConfig", "ServerThread", "serve_forever"]

#: Hard caps on the HTTP layer, independent of admission control.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServerConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8765  # 0 binds an ephemeral port (printed on startup)
    workers: int = 2  # worker threads executing solve/sweep jobs
    max_inflight: int | None = None  # admitted executing requests; default: workers
    queue_limit: int = 16  # admitted-but-waiting requests beyond max_inflight
    default_deadline_s: float | None = None  # applied when a request sends none
    drain_timeout_s: float = 30.0  # graceful-shutdown patience
    cache_dir: str | None = None  # None: default cache dir; "" disables caching
    quiet: bool = False  # suppress the per-request stderr log lines

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")


class _HttpError(Exception):
    """Internal: abort the request with this status/code/message."""

    def __init__(self, status: int, code: str, message: str, **details):
        super().__init__(message)
        self.status = status
        self.body = error_body(code, message, **details)


class ReproServer:
    """One serving daemon: bounded pool + admission + jobs + metrics."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.pool = ServePool(self.config.workers)
        self.admission = AdmissionController(
            self.config.max_inflight or self.config.workers, self.config.queue_limit
        )
        self.jobs = JobTable()
        self.metrics = ServerMetrics()
        self.cache: ResultCache | None = (
            None if self.config.cache_dir == "" else ResultCache(self.config.cache_dir or None)
        )
        self.port: int | None = None  # actual bound port, set once listening
        self.ready = threading.Event()
        self.draining = False
        self.exit_code = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._background: set[asyncio.Task] = set()
        self._request_ids = itertools.count(1)
        self._register_gauges()

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def _register_gauges(self) -> None:
        self.metrics.add_gauge("inflight_requests", lambda: self.admission.active)
        self.metrics.add_gauge(
            "queue_depth", lambda: max(0, self.admission.active - self.pool.size)
        )
        self.metrics.add_gauge("rejected_total", lambda: self.admission.rejected_total)
        self.metrics.add_gauge("workers", lambda: self.pool.size)
        self.metrics.add_gauge("workers_busy", lambda: self.pool.busy)
        self.metrics.add_gauge("worker_utilization", self.pool.utilization)
        self.metrics.add_gauge("jobs_completed_total", lambda: self.pool.completed_total)
        if self.cache is not None:
            for key in ("hits", "misses", "entries", "bytes", "hit_rate"):
                self.metrics.add_gauge(
                    f"cache_{key}", lambda key=key: self.cache.stats()[key]
                )

    def _log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"[repro.serve] {message}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def serve(self) -> int:
        """Run until a shutdown signal; returns the process exit code."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        # The one line harnesses parse — keep the shape stable.
        print(
            f"repro-serve listening on http://{self.config.host}:{self.port}",
            flush=True,
        )
        self._log(
            f"workers={self.pool.size} max_inflight={self.admission.max_inflight} "
            f"queue_limit={self.admission.queue_limit} "
            f"cache={'off' if self.cache is None else str(self.cache.directory)}"
        )
        # Signal-driven drain only works on the main thread (set_wakeup_fd);
        # embedded servers (ServerThread) are stopped via request_shutdown().
        for signame in ("SIGTERM", "SIGINT"):
            with contextlib.suppress(NotImplementedError, AttributeError, RuntimeError, ValueError):
                self._loop.add_signal_handler(
                    getattr(signal, signame), self.request_shutdown
                )
        self.ready.set()
        try:
            await self._stop.wait()
        finally:
            self.draining = True
            server.close()
            await server.wait_closed()
            drained = await self._drain()
            self.pool.shutdown(wait=False)
            self.ready.clear()
            if drained:
                print("repro-serve shut down gracefully (drained)", flush=True)
            else:
                self.exit_code = 1
                print(
                    f"repro-serve shut down with {self.admission.active} request(s) "
                    f"still in flight after {self.config.drain_timeout_s:.0f}s",
                    flush=True,
                )
        return self.exit_code

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (signal handler / ServerThread entry)."""
        if self._stop is not None and not self._stop.is_set():
            self._log("shutdown requested; draining in-flight work")
            self._stop.set()

    async def _drain(self) -> bool:
        """Wait for admitted work and background tasks; True when clean."""
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            if self.admission.active == 0 and not self._background:
                return True
            await asyncio.sleep(0.02)
        return self.admission.active == 0 and not self._background

    # ------------------------------------------------------------------ #
    # HTTP layer
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        started = time.perf_counter()
        endpoint, outcome = "http", "error"
        try:
            with obs.span("serve.request", request_id=next(self._request_ids)) as span:
                method, path, query, body = await self._read_request(reader)
                endpoint, outcome = await self._route(method, path, query, body, writer)
                span.annotate(endpoint=endpoint, outcome=outcome)
        except _HttpError as error:
            endpoint, outcome = "http", error.body["error"]["code"]
            await self._respond_json(writer, error.status, error.body)
        except (ConnectionError, asyncio.IncompleteReadError):
            outcome = "disconnected"
        except Exception:
            self._log(f"internal error:\n{traceback.format_exc()}")
            with contextlib.suppress(Exception):
                await self._respond_json(
                    writer,
                    500,
                    error_body(protocol.ERROR_INTERNAL, "internal server error"),
                )
            outcome = protocol.ERROR_INTERNAL
        finally:
            elapsed = time.perf_counter() - started
            self.metrics.observe(endpoint, outcome, elapsed)
            if endpoint != "http" or outcome != "disconnected":
                self._log(f"{endpoint} -> {outcome} ({elapsed * 1e3:.1f} ms)")
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, protocol.ERROR_BAD_REQUEST, "headers too large") from None
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(413, protocol.ERROR_BAD_REQUEST, "headers too large")
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise _HttpError(
                400, protocol.ERROR_BAD_REQUEST, "malformed request line"
            ) from None
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(
                    400, protocol.ERROR_BAD_REQUEST, "bad Content-Length"
                ) from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, protocol.ERROR_BAD_REQUEST, f"body larger than {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return method.upper(), parts.path, query, body

    async def _respond(
        self, writer, status: int, payload: bytes, content_type: str
    ) -> None:
        reason = _REASONS.get(status, "")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _respond_json(self, writer, status: int, body: dict) -> None:
        await self._respond(
            writer, status, json.dumps(body).encode("utf-8"), "application/json"
        )

    async def _respond_text(self, writer, status: int, text: str) -> None:
        await self._respond(
            writer, status, text.encode("utf-8"), "text/plain; charset=utf-8"
        )

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _route(self, method, path, query, body, writer) -> tuple[str, str]:
        """Dispatch one request; returns (endpoint, outcome) for metrics."""
        if path == "/healthz" and method == "GET":
            return "healthz", await self._handle_healthz(writer)
        if path == "/metricsz" and method == "GET":
            return "metricsz", await self._handle_metricsz(writer, query)
        if path == "/solve":
            if method != "POST":
                raise _HttpError(405, protocol.ERROR_BAD_REQUEST, "POST /solve")
            return "solve", await self._handle_solve(writer, self._json_body(body))
        if path == "/sweep":
            if method != "POST":
                raise _HttpError(405, protocol.ERROR_BAD_REQUEST, "POST /sweep")
            return "sweep", await self._handle_sweep(writer, self._json_body(body))
        if path == "/jobs" and method == "GET":
            await self._respond_json(writer, 200, {"jobs": self.jobs.list()})
            return "jobs", "ok"
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/") :]
            if rest.endswith("/stream"):
                return "jobs.stream", await self._handle_stream(
                    writer, rest[: -len("/stream")].rstrip("/")
                )
            return "jobs.get", await self._handle_job(writer, rest)
        raise _HttpError(
            404, protocol.ERROR_NOT_FOUND, f"no such endpoint: {method} {path}"
        )

    def _json_body(self, body: bytes) -> dict:
        if not body:
            raise _HttpError(400, protocol.ERROR_BAD_REQUEST, "request body required")
        try:
            return json.loads(body)
        except ValueError as error:
            raise _HttpError(
                400, protocol.ERROR_BAD_REQUEST, f"invalid JSON body: {error}"
            ) from None

    # ------------------------------------------------------------------ #
    # Admission / deadlines
    # ------------------------------------------------------------------ #
    def _admit(self, writer):
        if self.draining:
            raise _HttpError(
                503,
                protocol.ERROR_DRAINING,
                "server is draining for shutdown; not accepting new work",
            )
        try:
            return self.admission.admit()
        except AdmissionRejected as rejected:
            raise _HttpError(
                429,
                protocol.ERROR_SATURATED,
                str(rejected),
                inflight=rejected.active,
                limit=rejected.limit,
            ) from None

    def _deadline_of(self, requested: float | None) -> float | None:
        deadline_s = (
            requested if requested is not None else self.config.default_deadline_s
        )
        return None if deadline_s is None else deadline_s

    # ------------------------------------------------------------------ #
    # /healthz and /metricsz
    # ------------------------------------------------------------------ #
    async def _handle_healthz(self, writer) -> str:
        from .. import __version__

        await self._respond_json(
            writer,
            200 if not self.draining else 503,
            {
                "status": "draining" if self.draining else "ok",
                "version": __version__,
                "uptime_s": time.time() - self.metrics.started_at,
                "inflight": self.admission.active,
                "workers": self.pool.size,
                "workers_busy": self.pool.busy,
            },
        )
        return "ok"

    async def _handle_metricsz(self, writer, query) -> str:
        if query.get("format") == "json":
            await self._respond_json(writer, 200, self.metrics.snapshot())
        else:
            # The server's own metrics first, then whatever the rest of the
            # stack (cache, sweeps, kernel) recorded into the shared registry.
            text = self.metrics.render()
            shared = obs.prometheus_lines(obs.REGISTRY.snapshot())
            if shared:
                text += "# repro.obs registry\n" + "\n".join(shared) + "\n"
            await self._respond_text(writer, 200, text)
        return "ok"

    # ------------------------------------------------------------------ #
    # /solve
    # ------------------------------------------------------------------ #
    def _build_solver(self, request: protocol.SolveRequest):
        from ..api.registry import UnknownSolverError

        try:
            if self.cache is not None and request.use_cache:
                return CachedSolver(
                    inner=request.solver, cache=self.cache, **request.params
                )
            from ..api import get_solver

            return get_solver(request.solver, **request.params)
        except UnknownSolverError as error:
            raise _HttpError(400, protocol.ERROR_BAD_REQUEST, str(error)) from None
        except TypeError as error:
            raise _HttpError(
                400, protocol.ERROR_BAD_REQUEST, f"bad solver parameters: {error}"
            ) from None

    async def _handle_solve(self, writer, payload) -> str:
        try:
            request = protocol.parse_solve_request(payload)
        except ProtocolError as error:
            raise _HttpError(error.status, error.code, str(error)) from None
        solver = self._build_solver(request)
        ticket = self._admit(writer)
        deadline_s = self._deadline_of(request.deadline_s)
        started = time.perf_counter()

        def work():
            if ticket.cancelled:
                raise StopSweep("request abandoned before execution")
            result = solve(request.instance, solver, validate=True)
            body = {
                # Echo the requested name: the cache path wraps the solver,
                # and the wrapper's own name is an implementation detail.
                "solver": request.solver,
                "category": result.category,
                "makespan": result.makespan,
                "omim": result.metrics.omim,
                "ratio_to_optimal": result.ratio_to_optimal,
                "task_count": len(request.instance),
                "capacity": request.instance.capacity,
                "cache": {
                    "enabled": self.cache is not None and request.use_cache,
                    "hit": bool(result.cache_hit),
                },
                "selected_solver": result.selected_solver,
            }
            if request.include_schedule:
                body["schedule"] = protocol.schedule_to_wire(result.schedule)
            return body

        if deadline_s is not None and deadline_s <= 0:
            ticket.cancel()
            ticket.finish()
            raise _HttpError(
                504,
                protocol.ERROR_DEADLINE,
                f"deadline of {deadline_s}s was already past on arrival; "
                "the job was cancelled before execution",
                cancelled=True,
            )
        future = self.pool.submit(work)
        future.add_done_callback(lambda _f: ticket.finish())
        try:
            body = await asyncio.wait_for(asyncio.wrap_future(future), deadline_s)
        except asyncio.TimeoutError:
            ticket.cancel()
            cancelled_before_start = future.cancel()
            raise _HttpError(
                504,
                protocol.ERROR_DEADLINE,
                f"deadline of {deadline_s}s exceeded after "
                f"{time.perf_counter() - started:.3f}s; the job was "
                + ("cancelled before execution" if cancelled_before_start
                   else "abandoned (its worker slot frees when it finishes)"),
                cancelled=True,
            ) from None
        except StopSweep:
            raise _HttpError(
                504, protocol.ERROR_DEADLINE, "request abandoned before execution",
                cancelled=True,
            ) from None
        except (ValueError, TypeError) as error:
            raise _HttpError(400, protocol.ERROR_BAD_REQUEST, str(error)) from None
        body["elapsed_s"] = time.perf_counter() - started
        await self._respond_json(writer, 200, body)
        return "ok"

    # ------------------------------------------------------------------ #
    # /sweep and /jobs
    # ------------------------------------------------------------------ #
    async def _handle_sweep(self, writer, payload) -> str:
        try:
            request = protocol.parse_sweep_request(payload)
        except ProtocolError as error:
            raise _HttpError(error.status, error.code, str(error)) from None
        ticket = self._admit(writer)
        job = self.jobs.create(
            "sweep", {"workload": request.workload, "solvers": list(request.solvers)}
        )
        task = asyncio.ensure_future(self._run_sweep(job, request, ticket))
        self._background.add(task)
        task.add_done_callback(self._background.discard)
        await self._respond_json(
            writer,
            202,
            {
                "job_id": job.id,
                "status": job.status,
                "poll": f"/jobs/{job.id}",
                "stream": f"/jobs/{job.id}/stream",
            },
        )
        return "ok"

    async def _run_sweep(self, job: ServeJob, request, ticket) -> None:
        loop = asyncio.get_running_loop()
        cancel = threading.Event()
        deadline_s = self._deadline_of(request.deadline_s)

        def on_progress(completed: int, total: int) -> None:
            # Runs on the orchestrator thread: marshal the tick onto the
            # loop, then enforce the deadline cooperatively.
            loop.call_soon_threadsafe(self.jobs.progress, job, completed, total)
            if cancel.is_set():
                raise StopSweep(f"sweep {job.id} cancelled (deadline exceeded)")

        def run():
            study = protocol.build_sweep_study(request)
            study.on_progress(on_progress)
            # chunk_size=1 on the shared pool: every trace is its own unit,
            # so concurrent clients interleave and cancellation is prompt.
            study.parallel(self.pool.size, backend=self.pool.backend(cancel), chunk_size=1)
            return protocol.summarize_results(
                study.run(), include_rows=request.include_rows
            )

        self.jobs.start(job)
        timer = (
            loop.call_later(deadline_s, cancel.set) if deadline_s is not None else None
        )
        if deadline_s is not None and deadline_s <= 0:
            cancel.set()
        try:
            if cancel.is_set():
                raise StopSweep(f"sweep {job.id} cancelled before it started")
            # The orchestrator coordinates, it does not work: run it off the
            # shared pool (its *jobs* go there), or a 1-worker server would
            # deadlock against its own sweep.
            result = await asyncio.to_thread(run)
        except StopSweep:
            self.jobs.cancel(
                job,
                error_body(
                    protocol.ERROR_DEADLINE,
                    f"sweep deadline of {deadline_s}s exceeded; "
                    "the job was cancelled at the next job boundary",
                )["error"],
            )
        except Exception as error:  # incl. SweepJobError from the job plane
            self.jobs.fail(
                job,
                error_body(
                    protocol.ERROR_INTERNAL, f"{type(error).__name__}: {error}"
                )["error"],
            )
        else:
            self.jobs.finish(job, result)
        finally:
            if timer is not None:
                timer.cancel()
            ticket.finish()

    async def _handle_job(self, writer, job_id: str) -> str:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(
                404, protocol.ERROR_NOT_FOUND, f"unknown job {job_id!r}"
            )
        await self._respond_json(writer, 200, job.snapshot())
        return "ok"

    async def _handle_stream(self, writer, job_id: str) -> str:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(
                404, protocol.ERROR_NOT_FOUND, f"unknown job {job_id!r}"
            )
        # Close-delimited NDJSON: no Content-Length, one event per line.
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        async for event in self.jobs.follow(job):
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()
        writer.write(
            json.dumps({"event": "end", "status": job.status}).encode("utf-8") + b"\n"
        )
        await writer.drain()
        return "ok"


def serve_forever(config: ServerConfig | None = None) -> int:
    """Blocking entry point: run the daemon until SIGTERM/SIGINT."""
    return asyncio.run(ReproServer(config).serve())


class ServerThread:
    """A live server on a background thread — tests, benchmarks, examples.

    ::

        with ServerThread(workers=2) as live:
            client = ServeClient(*live.address)
            ...

    The context manager waits for the listening socket before returning and
    performs the same graceful drain as SIGTERM on exit.
    """

    def __init__(self, config: ServerConfig | None = None, **config_kwargs):
        if config is not None and config_kwargs:
            raise ValueError("pass either a ServerConfig or keyword overrides, not both")
        if config is None:
            config_kwargs.setdefault("port", 0)
            config_kwargs.setdefault("quiet", True)
            config = ServerConfig(**config_kwargs)
        self.server = ReproServer(config)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        assert self.server.port is not None, "server is not listening yet"
        return self.server.config.host, self.server.port

    @property
    def host(self) -> str:
        return self.address[0]

    @property
    def port(self) -> int:
        return self.address[1]

    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=serve_forever_on, args=(self.server,), daemon=True
        )
        self._thread.start()
        if not self.server.ready.wait(timeout=10):
            raise RuntimeError("server failed to start listening within 10s")
        return self

    def stop(self) -> None:
        loop = self.server._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=self.server.config.drain_timeout_s + 10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_forever_on(server: ReproServer) -> int:
    """Run an already-built :class:`ReproServer` to completion."""
    return asyncio.run(server.serve())
