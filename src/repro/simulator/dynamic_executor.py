"""Candidate-selection execution — thin wrapper over the unified kernel.

Section 4.2 (dynamic selection) and Section 4.3 (static order with dynamic
corrections) of the paper share the same execution engine: whenever the
communication link becomes idle, a task is picked among the not-yet-transferred
ones and its transfer is started; when nothing fits in the available memory,
the link stays idle until the next computation completes and frees memory.

The engine now lives in :mod:`repro.simulator.engine` (shared with the
fixed-order executors); this module keeps the historical entry point and
re-exports the policy vocabulary, whose canonical home is
:mod:`repro.simulator.policies`:

* **dynamic** policies (:class:`CriterionPolicy`) consider every task that
  fits in memory, keep those inducing the minimum idle time on the
  computation resource, and break ties with a criterion;
* **corrected** policies (:class:`CorrectedOrderPolicy`) first try the next
  task of a precomputed static order and only fall back to a dynamic
  criterion when that task does not fit.

The worked examples of Figures 5 and 6 are regression-tested against this
engine, which pins the tie-breaking semantics down to the paper's.
"""

from __future__ import annotations

from ..core.instance import Instance
from ..core.schedule import Schedule
from .engine import InfeasibleOrderError, simulate
from .policies import (
    CorrectedOrderPolicy,
    CriterionPolicy,
    ExecutionState,
    SelectionPolicy,
    largest_communication,
    maximum_acceleration,
    minimum_idle_filter,
    smallest_communication,
)

__all__ = [
    "ExecutionState",
    "InfeasibleOrderError",
    "SelectionPolicy",
    "CriterionPolicy",
    "CorrectedOrderPolicy",
    "execute_with_policy",
    "largest_communication",
    "smallest_communication",
    "maximum_acceleration",
]

#: Legacy private alias, kept for pre-kernel imports.
_minimum_idle_filter = minimum_idle_filter


def execute_with_policy(instance: Instance, policy: SelectionPolicy) -> Schedule:
    """Run the event-driven kernel on ``instance`` using ``policy``.

    Both resources process tasks in the same order (the order in which
    transfers are started), as in all the paper's heuristics.  Raises
    :class:`InfeasibleOrderError` when a single task exceeds the capacity.
    """
    return simulate(instance, policy).schedule
