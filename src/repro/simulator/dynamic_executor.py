"""Event-driven executors for the dynamic and corrected heuristic families.

Section 4.2 (dynamic selection) and Section 4.3 (static order with dynamic
corrections) of the paper share the same execution engine: whenever the
communication link becomes idle, a task is picked among the not-yet-transferred
ones and its transfer is started; when nothing fits in the available memory,
the link stays idle until the next computation completes and frees memory.

The two families differ only in the selection rule, so the engine takes a
:class:`SelectionPolicy`:

* **dynamic** policies consider every task that fits in memory, keep those
  inducing the minimum idle time on the computation resource, and break ties
  with a criterion (largest communication, smallest communication, or largest
  computation/communication ratio);
* **corrected** policies first try the next task of a precomputed static order
  and only fall back to a dynamic criterion when that task does not fit.

The worked examples of Figures 5 and 6 are regression-tested against this
engine, which pins the tie-breaking semantics down to the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task
from ..core.validation import TOLERANCE
from .static_executor import InfeasibleOrderError

__all__ = [
    "ExecutionState",
    "SelectionPolicy",
    "CriterionPolicy",
    "CorrectedOrderPolicy",
    "execute_with_policy",
    "largest_communication",
    "smallest_communication",
    "maximum_acceleration",
]


@dataclass(frozen=True, slots=True)
class ExecutionState:
    """Snapshot handed to selection policies at each decision point."""

    time: float
    available_memory: float
    comm_available: float
    comp_available: float
    scheduled: tuple[str, ...]

    def induced_idle(self, task: Task) -> float:
        """Idle time forced on the computation resource if ``task`` is started now."""
        return max(0.0, self.time + task.comm - self.comp_available)


class SelectionPolicy(Protocol):
    """Chooses the next transfer among the tasks that currently fit in memory."""

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        """Return the task to transfer next; ``candidates`` is never empty."""
        ...


# --------------------------------------------------------------------------- #
# Selection criteria (Section 4.2)
# --------------------------------------------------------------------------- #
def largest_communication(task: Task) -> tuple[float, str]:
    """LCMR criterion key: prefer the largest communication time."""
    return (-task.comm, task.name)


def smallest_communication(task: Task) -> tuple[float, str]:
    """SCMR criterion key: prefer the smallest communication time."""
    return (task.comm, task.name)


def maximum_acceleration(task: Task) -> tuple[float, str]:
    """MAMR criterion key: prefer the largest computation/communication ratio."""
    return (-task.acceleration, task.name)


def _minimum_idle_filter(candidates: Sequence[Task], state: ExecutionState) -> list[Task]:
    best = min(state.induced_idle(task) for task in candidates)
    return [task for task in candidates if state.induced_idle(task) <= best + TOLERANCE]


@dataclass(frozen=True)
class CriterionPolicy:
    """Pure dynamic selection: minimum-idle filter, then a criterion key.

    ``criterion`` maps a task to a sort key; the task with the smallest key
    among the minimum-idle candidates is selected (ties broken by name inside
    the key functions, keeping runs deterministic).
    """

    criterion: Callable[[Task], tuple[float, str]]
    name: str = "criterion"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        filtered = _minimum_idle_filter(candidates, state)
        return min(filtered, key=self.criterion)


@dataclass
class CorrectedOrderPolicy:
    """Static order followed when possible, corrected dynamically otherwise.

    The next task of ``order`` is started whenever it fits in the available
    memory.  When it does not fit, a task is chosen among the fitting ones by
    the minimum-idle filter followed by ``criterion``, and the static order is
    updated by removing the chosen task (Section 4.3).
    """

    order: Sequence[str]
    criterion: Callable[[Task], tuple[float, str]]
    name: str = "corrected"

    def __post_init__(self) -> None:
        self._remaining = list(self.order)

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        by_name = {task.name: task for task in candidates}
        while self._remaining and self._remaining[0] in state.scheduled:
            self._remaining.pop(0)
        if self._remaining and self._remaining[0] in by_name:
            chosen = by_name[self._remaining.pop(0)]
            return chosen
        filtered = _minimum_idle_filter(candidates, state)
        chosen = min(filtered, key=self.criterion)
        if chosen.name in self._remaining:
            self._remaining.remove(chosen.name)
        return chosen


def execute_with_policy(instance: Instance, policy: SelectionPolicy) -> Schedule:
    """Run the event-driven engine on ``instance`` using ``policy``.

    Both resources process tasks in the same order (the order in which
    transfers are started), as in all the paper's heuristics.
    """
    capacity = instance.capacity
    for task in instance:
        if task.memory > capacity + TOLERANCE:
            raise InfeasibleOrderError(
                f"task {task.name!r} needs {task.memory:g} memory but capacity is {capacity:g}"
            )

    pending: dict[str, Task] = {t.name: t for t in instance.tasks}
    entries: list[ScheduledTask] = []
    comm_available = 0.0
    comp_available = 0.0
    # Memory held by started tasks: name -> (release time, amount).
    holders: dict[str, tuple[float, float]] = {}
    time = 0.0

    # Byte-scale memory amounts leave float dust when summed, so the
    # fits-in-memory slack scales with the capacity (same convention as
    # check_schedule's peak-memory test and the static executor).
    slack = max(TOLERANCE, TOLERANCE * capacity) if math.isfinite(capacity) else TOLERANCE

    while pending:
        used = sum(amount for release, amount in holders.values() if release > time + TOLERANCE)
        available = capacity - used if math.isfinite(capacity) else math.inf
        candidates = [task for task in pending.values() if task.memory <= available + slack]

        if not candidates:
            future_releases = [
                release for release, _ in holders.values() if release > time + TOLERANCE
            ]
            if not future_releases:  # pragma: no cover - every task fits individually
                raise InfeasibleOrderError("deadlock: no task fits and no memory will be released")
            time = min(future_releases)
            continue

        state = ExecutionState(
            time=time,
            available_memory=available,
            comm_available=comm_available,
            comp_available=comp_available,
            scheduled=tuple(e.name for e in entries),
        )
        task = policy.select(candidates, state)
        if task.name not in pending:  # pragma: no cover - defensive against bad policies
            raise ValueError(f"policy selected unknown or already-scheduled task {task.name!r}")

        comm_start = time
        comm_end = comm_start + task.comm
        comp_start = max(comm_end, comp_available)
        entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
        del pending[task.name]
        comm_available = comm_end
        comp_available = comp_start + task.comp
        holders[task.name] = (comp_available, task.memory)
        time = max(time, comm_available)

    return Schedule(entries)
