"""Structured event traces emitted by the simulation kernel.

A :class:`EventTrace` is the kernel's journal of one run: transfer start/end,
computation start/end and memory acquire/release events in time order.
Downstream consumers — the Gantt renderer, the metrics module's idle/overlap
accounting, the sweep engine — read the trace instead of re-deriving
timelines from the finished :class:`~repro.core.schedule.Schedule` (the
schedule-based overlap computation is quadratic; the trace keeps everything
at O(n log n)).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from ..core.schedule import MemoryEvent

__all__ = ["EventKind", "SimEvent", "EventTrace"]


class EventKind(str, Enum):
    """What happened at one instant of a kernel run."""

    TASK_ARRIVAL = "task_arrival"
    TRANSFER_START = "transfer_start"
    TRANSFER_END = "transfer_end"
    COMPUTE_START = "compute_start"
    COMPUTE_END = "compute_end"
    MEMORY_ACQUIRE = "memory_acquire"
    MEMORY_RELEASE = "memory_release"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Tie-break so that, at equal instants, completions precede the starts they
#: enable (and arrivals precede the decisions they feed) and the log reads
#: causally.
_KIND_RANK = {
    EventKind.TRANSFER_END: 0,
    EventKind.COMPUTE_END: 1,
    EventKind.MEMORY_RELEASE: 2,
    EventKind.TASK_ARRIVAL: 3,
    EventKind.MEMORY_ACQUIRE: 4,
    EventKind.TRANSFER_START: 5,
    EventKind.COMPUTE_START: 6,
}


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One kernel event; ``amount`` is the memory delta for ``MEMORY_*`` kinds."""

    time: float
    kind: EventKind
    task: str
    amount: float = 0.0


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping/touching intervals (needed for parallel resources)."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


class EventTrace:
    """Time-ordered journal of one kernel run.

    Derived views (interval lists, makespan, memory profile) are computed
    lazily and cached: the sweep engine reads several of them per run record.
    """

    __slots__ = ("_events", "_memory_profile", "_intervals", "_makespan")

    def __init__(self, events: Iterable[SimEvent]):
        self._events = tuple(
            sorted(events, key=lambda e: (e.time, _KIND_RANK[e.kind], e.task))
        )
        self._memory_profile: list[MemoryEvent] | None = None
        self._intervals: dict[EventKind, list[tuple[float, float, str]]] = {}
        self._makespan: float | None = None

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> SimEvent:
        return self._events[index]

    @property
    def events(self) -> tuple[SimEvent, ...]:
        return self._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventTrace({len(self._events)} events, makespan={self.makespan:g})"

    def shifted(self, offset: float) -> "EventTrace":
        """Trace translated in time by ``offset`` (batch chaining)."""
        if offset == 0.0:
            return self
        return EventTrace(
            SimEvent(e.time + offset, e.kind, e.task, e.amount) for e in self._events
        )

    @classmethod
    def merged(cls, traces: Iterable["EventTrace"]) -> "EventTrace":
        """One trace holding every event of ``traces`` (re-sorted)."""
        return cls(event for trace in traces for event in trace)

    # ------------------------------------------------------------------ #
    # Resource timelines
    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """Completion time of the last transfer or computation."""
        if self._makespan is None:
            self._makespan = max(
                (
                    e.time
                    for e in self._events
                    if e.kind in (EventKind.TRANSFER_END, EventKind.COMPUTE_END)
                ),
                default=0.0,
            )
        return self._makespan

    def _paired_intervals(
        self, start_kind: EventKind, end_kind: EventKind
    ) -> list[tuple[float, float, str]]:
        cached = self._intervals.get(start_kind)
        if cached is not None:
            return cached
        # Pair per task rather than by event order: a zero-length interval
        # sorts its end event before its own start event.
        starts: dict[str, float] = {}
        ends: dict[str, float] = {}
        order: list[str] = []
        for event in self._events:
            if event.kind is start_kind:
                starts[event.task] = event.time
                order.append(event.task)
            elif event.kind is end_kind:
                ends[event.task] = event.time
        intervals = [(starts[task], ends[task], task) for task in order]
        self._intervals[start_kind] = intervals
        return intervals

    def transfer_intervals(self) -> list[tuple[float, float, str]]:
        """``(start, end, task)`` for every transfer, in placement order."""
        return self._paired_intervals(EventKind.TRANSFER_START, EventKind.TRANSFER_END)

    def compute_intervals(self) -> list[tuple[float, float, str]]:
        """``(start, end, task)`` for every computation, in placement order."""
        return self._paired_intervals(EventKind.COMPUTE_START, EventKind.COMPUTE_END)

    def busy_intervals(self, resource: str) -> list[tuple[float, float]]:
        """Merged busy intervals of ``"communication"`` or ``"computation"``."""
        if resource == "communication":
            raw = self.transfer_intervals()
        elif resource == "computation":
            raw = self.compute_intervals()
        else:
            raise ValueError(f"unknown resource {resource!r}")
        return _merge([(start, end) for start, end, _ in raw])

    def idle_intervals(self, resource: str) -> list[tuple[float, float]]:
        """Idle gaps of one resource within ``[0, makespan]``."""
        busy = self.busy_intervals(resource)
        horizon = self.makespan
        gaps: list[tuple[float, float]] = []
        cursor = 0.0
        for start, end in busy:
            if start > cursor:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if horizon > cursor:
            gaps.append((cursor, horizon))
        return gaps

    def idle_time(self, resource: str) -> float:
        """Total idle time of one resource within ``[0, makespan]``."""
        return sum(end - start for start, end in self.idle_intervals(resource))

    def overlap_time(self) -> float:
        """Total time during which the link and the processor are both busy."""
        comm = self.busy_intervals("communication")
        comp = self.busy_intervals("computation")
        overlap = 0.0
        i = j = 0
        while i < len(comm) and j < len(comp):
            lo = max(comm[i][0], comp[j][0])
            hi = min(comm[i][1], comp[j][1])
            if hi > lo:
                overlap += hi - lo
            if comm[i][1] <= comp[j][1]:
                i += 1
            else:
                j += 1
        return overlap

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #
    def memory_profile(self) -> list[MemoryEvent]:
        """Piecewise-constant memory occupation (same shape as
        :meth:`~repro.core.schedule.Schedule.memory_profile`)."""
        if self._memory_profile is None:
            deltas: dict[float, float] = {}
            for event in self._events:
                if event.kind in (EventKind.MEMORY_ACQUIRE, EventKind.MEMORY_RELEASE):
                    deltas[event.time] = deltas.get(event.time, 0.0) + event.amount
            usage = 0.0
            profile: list[MemoryEvent] = []
            for time in sorted(deltas):
                usage += deltas[time]
                if -1e-9 < usage < 0:  # clamp tiny negative rounding residue
                    usage = 0.0
                profile.append(MemoryEvent(time=time, usage=usage))
            self._memory_profile = profile
        return self._memory_profile

    def peak_memory(self) -> float:
        """Largest simultaneous memory occupation over the whole run."""
        return max((event.usage for event in self.memory_profile()), default=0.0)

    def memory_usage_at(self, time: float) -> float:
        """Memory occupied at instant ``time`` (half-open step convention)."""
        profile = self.memory_profile()
        index = bisect.bisect_right([event.time for event in profile], time) - 1
        return profile[index].usage if index >= 0 else 0.0
