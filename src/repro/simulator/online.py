"""Streaming runtime: online scheduling over the event kernel.

Layered on :func:`repro.simulator.engine.simulate`: tasks carry release
(arrival) dates, the kernel grows the ready queue as arrivals fire, and an
*online policy* decides the next transfer with partial knowledge — it only
ever sees the tasks that have arrived.  The paper's heuristics go online
through two adapters that re-rank the ready set on every arrival:

* :class:`OnlinePlanPolicy` — static heuristics (OS, GG, BP, GGX and the
  Section 4.1 orders): re-plan the ready set whenever an arrival fires,
  then follow the plan, waiting for memory (but never past the next
  arrival — the kernel re-asks so the grown ready set is re-ranked);
* :class:`OnlineCorrectedPolicy` — Section 4.3 corrected heuristics: the
  static plan is re-ranked per arrival and corrections pick among the
  fitting ready tasks.

Dynamic heuristics (Section 4.2) need no adapter at all: a
:class:`~repro.simulator.policies.CriterionPolicy` already re-evaluates the
candidate set at every decision point, and the kernel restricts candidates
to arrived tasks.

With every release at zero the adapters reduce exactly to their offline
counterparts, so online schedules are byte-identical to the offline kernel
— pinned by ``tests/simulator/test_online.py`` for all 14 paper heuristics
plus GGX.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Mapping, Sequence

from ..core.instance import Instance
from ..core.task import Task
from .arrivals import ArrivalProcess, resolve_arrivals
from .engine import SimulationResult, simulate
from .policies import ExecutionState, SelectionPolicy, minimum_idle_filter
from .resources import MachineModel

__all__ = [
    "OnlinePlanPolicy",
    "OnlineCorrectedPolicy",
    "WindowedPlanPolicy",
    "WindowedCriterionPolicy",
    "WindowedCorrectedPolicy",
    "run_online",
]


@dataclass(frozen=True)
class OnlinePlanPolicy:
    """Follow a plan over the ready set, re-planned on every arrival.

    ``planner`` maps the ready tasks (arrived, transfer not yet placed) to
    the order in which to transfer them; it is invoked once per *arrival
    epoch* — the plan survives completions (a static order does not depend
    on the memory state) but is recomputed from scratch whenever new work
    arrives.  Between recomputations the policy behaves exactly like a
    :class:`~repro.simulator.policies.FixedOrderPolicy`: the kernel waits
    for the chosen task's memory, though never past the next arrival.
    """

    planner: Callable[[Sequence[Task]], Sequence[Task]]
    name: str = "online-plan"

    #: The kernel waits for the chosen task's memory (bounded by the next
    #: arrival) instead of offering only fitting candidates.
    waits_for_memory: ClassVar[bool] = True

    _KEY: ClassVar[str] = "online_plan"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        cached = state.scratch.get(self._KEY)
        if cached is None or cached[0] != state.arrivals_fired:
            # New arrival epoch: re-rank everything still un-transferred.
            cached = [state.arrivals_fired, list(self.planner(state.ready)), 0]
            state.scratch[self._KEY] = cached
        plan, cursor = cached[1], cached[2]
        # The previous selection was committed unless the kernel jumped to an
        # arrival — which bumps the epoch and rebuilds the plan — so the
        # cursor advances exactly once per committed transfer.
        cached[2] = cursor + 1
        return plan[cursor]


@dataclass(frozen=True)
class OnlineCorrectedPolicy:
    """Re-planned static order with dynamic corrections (online Section 4.3).

    ``planner`` computes the static order (Johnson's rule for the paper's
    corrected heuristics) over the ready set, once per arrival epoch.  At
    each decision the head of the remaining plan is started when it fits in
    memory; otherwise a task is picked among the fitting ready candidates by
    the minimum-idle filter and ``criterion``, and the plan drops it —
    exactly the offline corrected semantics, restricted to arrived tasks.
    """

    planner: Callable[[Sequence[Task]], Sequence[Task]]
    criterion: Callable[[Task], tuple[float, str]]
    name: str = "online-corrected"

    _KEY: ClassVar[str] = "online_corrected"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        cached = state.scratch.get(self._KEY)
        if cached is None or cached[0] != state.arrivals_fired:
            order = [task.name for task in self.planner(state.ready)]
            cached = [state.arrivals_fired, order, 0, set()]
            state.scratch[self._KEY] = cached
        order, cursor, done = cached[1], cached[2], cached[3]
        while cursor < len(order) and order[cursor] in done:
            cursor += 1
        cached[2] = cursor
        chosen: Task | None = None
        if cursor < len(order):
            head = order[cursor]
            for task in candidates:
                if task.name == head:
                    chosen = task
                    break
        if chosen is None:
            filtered = minimum_idle_filter(candidates, state)
            chosen = min(filtered, key=self.criterion)
        done.add(chosen.name)
        return chosen


# --------------------------------------------------------------------------- #
# Windowed policies — pipelined batched execution (no drain barrier)
# --------------------------------------------------------------------------- #
# The scheduler sees one batch (window) of tasks at a time and moves to the
# next as soon as the current window's *transfers* are all placed; unlike the
# paper's barrier semantics, the machine never drains — the next window's
# transfers start as soon as the link and the memory ledger allow, overlapping
# the previous windows' computations.


@dataclass(frozen=True)
class WindowedPlanPolicy:
    """Pipelined fixed order: plan each window once and follow it.

    ``planner`` orders one window's tasks; window ``k+1`` opens when window
    ``k``'s transfers are all placed.  The kernel waits for the head task's
    memory — held, possibly, by earlier windows' still-running computations
    — but never drains the pipeline.
    """

    planner: Callable[[Sequence[Task]], Sequence[Task]]
    windows: tuple[tuple[Task, ...], ...]
    name: str = "windowed-plan"

    waits_for_memory: ClassVar[bool] = True

    _KEY: ClassVar[str] = "windowed_plan"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        cached = state.scratch.get(self._KEY)
        if cached is None:
            cached = [0, list(self.planner(self.windows[0])), 0]
            state.scratch[self._KEY] = cached
        index, plan, cursor = cached
        if cursor >= len(plan):  # window exhausted: open the next one
            index += 1
            plan = list(self.planner(self.windows[index]))
            cursor = 0
            cached[0], cached[1] = index, plan
        cached[2] = cursor + 1
        return plan[cursor]


@dataclass(frozen=True)
class WindowedCriterionPolicy:
    """Pipelined dynamic selection: the criterion picks within the window.

    Candidates outside the current window are declined (``None``), making
    the kernel wait for a memory release; within the window the offline
    minimum-idle filter and criterion apply unchanged, so a single window
    reduces to the offline :class:`~repro.simulator.policies.CriterionPolicy`.
    """

    criterion: Callable[[Task], tuple[float, str]]
    windows: tuple[tuple[Task, ...], ...]
    name: str = "windowed-criterion"

    _KEY: ClassVar[str] = "windowed_criterion"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task | None:
        cached = state.scratch.get(self._KEY)
        if cached is None:
            cached = [0, {task.name for task in self.windows[0]}]
            state.scratch[self._KEY] = cached
        while not cached[1] and cached[0] + 1 < len(self.windows):
            cached[0] += 1
            cached[1] = {task.name for task in self.windows[cached[0]]}
        remaining = cached[1]
        window_candidates = [task for task in candidates if task.name in remaining]
        if not window_candidates:
            return None
        chosen = min(minimum_idle_filter(window_candidates, state), key=self.criterion)
        remaining.discard(chosen.name)
        return chosen


@dataclass(frozen=True)
class WindowedCorrectedPolicy:
    """Pipelined corrected order: per-window static plan, windowed corrections.

    ``planner`` (Johnson's rule for the paper's corrected heuristics) orders
    each window when it opens; the plan's head is started when its memory
    fits, otherwise a fitting window task is picked by the minimum-idle
    filter and ``criterion`` and the plan drops it.  Tasks of later windows
    are never touched, and nothing fitting in the window declines the
    decision (``None``) until memory frees.
    """

    planner: Callable[[Sequence[Task]], Sequence[Task]]
    criterion: Callable[[Task], tuple[float, str]]
    windows: tuple[tuple[Task, ...], ...]
    name: str = "windowed-corrected"

    _KEY: ClassVar[str] = "windowed_corrected"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task | None:
        cached = state.scratch.get(self._KEY)
        if cached is None:
            cached = [0, [t.name for t in self.planner(self.windows[0])], 0, set()]
            state.scratch[self._KEY] = cached
        if len(cached[3]) == len(cached[1]):  # window exhausted: open the next
            cached[0] += 1
            cached[1] = [t.name for t in self.planner(self.windows[cached[0]])]
            cached[2] = 0
            cached[3] = set()
        order, cursor, done = cached[1], cached[2], cached[3]
        while cursor < len(order) and order[cursor] in done:
            cursor += 1
        cached[2] = cursor
        window_names = set(order)
        chosen: Task | None = None
        if cursor < len(order):
            head = order[cursor]
            for task in candidates:
                if task.name == head:
                    chosen = task
                    break
        if chosen is None:
            window_candidates = [
                task
                for task in candidates
                if task.name in window_names and task.name not in done
            ]
            if not window_candidates:
                return None
            filtered = minimum_idle_filter(window_candidates, state)
            chosen = min(filtered, key=self.criterion)
        done.add(chosen.name)
        return chosen


def run_online(
    instance: Instance,
    solver: "SelectionPolicy | object",
    *,
    arrivals: "ArrivalProcess | Mapping[str, float] | Sequence[float] | None" = None,
    machine: MachineModel | None = None,
    record: bool = False,
    seed: int = 0,
) -> SimulationResult:
    """Run one solver on the streaming runtime.

    Parameters
    ----------
    solver:
        Either a kernel :class:`~repro.simulator.policies.SelectionPolicy`
        used as-is, or any object with an ``online_policy(instance)`` method
        (every paper heuristic and GGX; the MILP wrappers have none and are
        rejected).
    arrivals:
        Release dates to stamp onto the instance before the run: an
        :class:`~repro.simulator.arrivals.ArrivalProcess` (sampled with
        ``seed``), a ``{task name: date}`` mapping, or a sequence aligned
        with the submission order.  ``None`` keeps the release dates the
        instance already carries — all zero for offline instances, in which
        case the run is byte-identical to the offline kernel.
    machine / record:
        Forwarded to :func:`~repro.simulator.engine.simulate`.
    """
    if arrivals is not None:
        instance = instance.with_releases(
            resolve_arrivals(arrivals, instance.tasks, seed=seed)
        )
    policy = solver
    factory = getattr(solver, "online_policy", None)
    if factory is not None:
        policy = factory(instance)
        if policy is None:
            name = getattr(solver, "name", type(solver).__name__)
            raise ValueError(
                f"solver {name!r} does not run on the streaming runtime "
                "(no online policy)"
            )
    return simulate(instance, policy, machine=machine, record=record)
