"""Unified event-driven simulation kernel — one engine under every executor.

Architecture (kernel → policies → facade)::

    repro.api.solve() / Study          facade: engine options, sweeps
        └── heuristics                 compute an order / pick a criterion
              └── policies             FixedOrder / Criterion / CorrectedOrder
                    └── engine.simulate()   ← this module: the only event loop
                          ├── MemoryLedger  incremental O(log n) memory account
                          ├── ResourceModel link/processor timelines (pluggable)
                          └── EventTrace    structured journal for viz/metrics

The kernel advances a single clock over transfer decisions: at each decision
point the link is (about to be) free, the policy picks the next task, the
transfer is booked on the link resource, the task's memory is acquired, and
every computation enabled by the computation order is booked on the
processing unit.  The paper's three execution modes differ only in the
policy; the Proposition 1 two-order executor additionally fixes the
computation order (``comp_order``).

The kernel reproduces the seed executors byte-for-byte on the default
machine model — pinned by ``tests/simulator/test_kernel_crosscheck.py``
against the frozen reference implementations in
:mod:`repro.simulator._reference`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task
from ..core.validation import TOLERANCE
from ..obs import spans as _obs
from ..obs.stats import KernelStats
from .events import EventKind, EventTrace, SimEvent
from .ledger import MemoryLedger
from .policies import SelectionPolicy
from .resources import DEFAULT_MACHINE, MachineModel

__all__ = [
    "simulate",
    "SimulationResult",
    "InfeasibleOrderError",
    "DeadlockError",
    "resolve_order",
]


class InfeasibleOrderError(ValueError):
    """Raised when a task cannot be scheduled at all (footprint exceeds capacity)."""


class DeadlockError(InfeasibleOrderError):
    """The run cannot make progress: no task fits and no memory will be released."""


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one kernel run: the schedule plus its optional event trace.

    ``engine`` names the kernel that produced the result (``"object"`` or
    ``"columnar"``); schedule-only solvers that never touch a kernel leave
    it empty.  ``stats`` carries the per-run profiling counters
    (:class:`~repro.obs.stats.KernelStats`); its deterministic fields are
    always populated, its wall-clock fields only while tracing is enabled.
    """

    schedule: Schedule
    trace: EventTrace | None
    engine: str = ""
    stats: KernelStats | None = None


class _KernelState:
    """Mutable per-run decision state, duck-typing :class:`ExecutionState`.

    The engine allocates exactly one per run and updates it in place before
    each policy call; ``scheduled`` and ``ready`` are materialised lazily
    because only stateful (or online) policies read them.
    """

    __slots__ = (
        "time",
        "available_memory",
        "comm_available",
        "comp_available",
        "scratch",
        "arrivals_fired",
        "_placed",
        "_pending",
    )

    def __init__(self, scratch: dict, placed: dict, pending: dict) -> None:
        self.time = 0.0
        self.available_memory = math.inf
        self.comm_available = 0.0
        self.comp_available = 0.0
        self.scratch = scratch
        self.arrivals_fired = 0
        self._placed = placed  # name -> comm start, in placement order
        self._pending = pending  # name -> Task; arrived, transfer not yet placed

    @property
    def scheduled(self) -> tuple[str, ...]:
        return tuple(self._placed)

    @property
    def ready(self) -> tuple[Task, ...]:
        """Arrived, un-transferred tasks in arrival-then-submission order."""
        return tuple(self._pending.values())

    def induced_idle(self, task: Task) -> float:
        """Idle time forced on the computation resource if ``task`` is started now."""
        return max(0.0, self.time + task.comm - self.comp_available)


def resolve_order(
    instance: Instance, order: Sequence[Task] | Sequence[str] | None
) -> list[Task]:
    """Resolve task names to tasks and check the order covers the instance.

    The name lookup is built once and the coverage check is pure set
    arithmetic, so resolving a 10^6-task order costs one pass; the error
    names the exact duplicated, missing and unknown tasks instead of
    leaving the caller to diff two lists.
    """
    if order is None:
        return list(instance.tasks)
    lookup = instance.by_name()
    resolved: list[Task] = []
    for item in order:
        if isinstance(item, Task):
            resolved.append(item)
        else:
            resolved.append(lookup[item])
    names = {t.name for t in resolved}
    if len(resolved) == len(instance) and len(names) == len(resolved) and names == lookup.keys():
        return resolved
    seen: dict[str, int] = {}
    for task in resolved:
        seen[task.name] = seen.get(task.name, 0) + 1
    duplicates = sorted(name for name, count in seen.items() if count > 1)
    missing = sorted(lookup.keys() - seen.keys())
    unknown = sorted(seen.keys() - lookup.keys())
    details = "; ".join(
        f"{label}: {items}"
        for label, items in (
            ("duplicated", duplicates),
            ("missing", missing),
            ("unknown", unknown),
        )
        if items
    )
    raise ValueError(
        "order must contain every instance task exactly once"
        + (f" ({details})" if details else "")
    )


def simulate(
    instance: Instance,
    policy: SelectionPolicy,
    *,
    machine: MachineModel | None = None,
    comp_order: Sequence[Task] | Sequence[str] | None = None,
    record: bool = False,
    engine: str | None = None,
) -> SimulationResult:
    """Run the event-driven kernel on ``instance`` under ``policy``.

    Parameters
    ----------
    policy:
        Chooses the next transfer.  Policies with ``waits_for_memory`` set
        (fixed orders) are asked unconditionally and the kernel waits until
        the chosen task's memory fits; other policies are offered only the
        currently-fitting candidates, and the link idles until the next
        memory release when nothing fits.  A policy may return ``None`` to
        decline every candidate (window/online policies), in which case the
        kernel waits for the next memory release or arrival and asks again.
    machine:
        Resource model (link/processor multiplicity, capacity override).
        Defaults to the paper's machine, under which the kernel matches the
        seed executors byte-for-byte.
    comp_order:
        Explicit computation order (Proposition 1 / MILP post-processing).
        Defaults to the transfer placement order, as in all the paper's
        heuristics.
    record:
        Emit a structured :class:`~repro.simulator.events.EventTrace`.
    engine:
        ``"object"`` (this module's loop), ``"columnar"`` (the array-native
        fast path of :mod:`repro.simulator.columnar`, falling back here
        when the configuration is unsupported), or ``"auto"``/``None``
        (columnar for large supported instances, object otherwise; the
        ``REPRO_ENGINE`` environment variable overrides auto).  Both
        engines produce float-for-float identical schedules; the result's
        ``engine`` field records which one ran.

    Tasks with a positive :attr:`~repro.core.task.Task.release` date are
    time-gated: they join the ready set only once the clock reaches their
    release (a ``TASK_ARRIVAL`` trace event), the link idles until the next
    arrival when nothing is ready, and a waiting fixed-order policy is
    re-asked whenever an arrival fires before its chosen task's memory fits.
    Offline instances (every release 0) take exactly the historical code
    path and reproduce the seed executors byte-for-byte.

    Raises
    ------
    InfeasibleOrderError
        When a single task exceeds the memory capacity.
    DeadlockError
        When the run blocks under the memory capacity (only possible with an
        explicit ``comp_order``; subclass of :class:`InfeasibleOrderError`).
    """
    if engine != "object":
        # Lazy import: columnar imports this module for the result/error types.
        from .columnar import (
            COLUMNAR_AUTO_THRESHOLD,
            columnar_supported,
            resolve_engine,
            simulate_columnar,
        )

        choice = resolve_engine(engine)
        if choice == "batched":
            # A single run is a one-lane batch; unsupported lanes fall
            # through to the columnar/object dispatch below.
            from .batched import batched_supported, simulate_batched

            if batched_supported(
                instance, policy, machine=machine, comp_order=comp_order, record=record
            ):
                run = (instance, policy) if comp_order is None else (
                    instance,
                    policy,
                    comp_order,
                )
                return simulate_batched([run], machine=machine)[0]
        if choice != "object" and (
            choice in ("columnar", "batched")
            or len(instance) >= COLUMNAR_AUTO_THRESHOLD
        ):
            if columnar_supported(
                instance, policy, machine=machine, comp_order=comp_order, record=record
            ):
                return simulate_columnar(
                    instance, policy, machine=machine, comp_order=comp_order, record=record
                )
    machine = DEFAULT_MACHINE if machine is None else machine
    capacity = machine.effective_capacity(instance.capacity)
    for task in instance:
        if task.memory > capacity + TOLERANCE:
            raise InfeasibleOrderError(
                f"task {task.name!r} needs {task.memory:g} memory but capacity is {capacity:g}"
            )

    link = machine.build_link()
    cpu = machine.build_cpu()
    ledger = MemoryLedger(capacity)
    pending: dict[str, Task] = {t.name: t for t in instance.tasks if t.release <= 0.0}
    #: Release-dated tasks in (release, submission) order; consumed front to back.
    future: list[Task] = sorted(
        (t for t in instance.tasks if t.release > 0.0), key=lambda t: t.release
    )
    arr_cursor = 0
    events: list[SimEvent] | None = [] if record else None

    comm_start: dict[str, float] = {}
    comm_end: dict[str, float] = {}
    comp_start: dict[str, float] = {}
    placed: list[Task] = []  # transfer placement order
    fixed_comp = comp_order is not None
    comp_sequence: list[Task] = resolve_order(instance, comp_order) if fixed_comp else placed
    comp_cursor = 0
    state = _KernelState({}, comm_start, pending)
    waits = getattr(policy, "waits_for_memory", False)
    traced = _obs.is_enabled()
    run_started = _obs.now() if traced else 0.0
    policy_select_s = 0.0
    if traced:
        _select = policy.select

        def select(candidates, decision_state):
            nonlocal policy_select_s
            started = _obs.now()
            choice = _select(candidates, decision_state)
            policy_select_s += _obs.now() - started
            return choice

    else:
        select = policy.select
    memory_wait = 0.0
    time = 0.0

    def fire_arrivals(now: float) -> None:
        """Move every task released by ``now`` into the ready set."""
        nonlocal arr_cursor
        while arr_cursor < len(future) and future[arr_cursor].release <= now + TOLERANCE:
            task = future[arr_cursor]
            pending[task.name] = task
            if events is not None:
                events.append(SimEvent(task.release, EventKind.TASK_ARRIVAL, task.name))
            arr_cursor += 1
        state.arrivals_fired = arr_cursor

    def next_arrival() -> float | None:
        return future[arr_cursor].release if arr_cursor < len(future) else None

    def advance_to_next_event() -> int:
        """Jump the clock to the next event: 0 none, 1 arrival, 2 release."""
        nonlocal time
        next_release = ledger.next_release()
        arrival = next_arrival()
        if next_release is None and arrival is None:
            return 0
        if next_release is None or (arrival is not None and arrival < next_release):
            time = arrival
            return 1
        time = next_release
        return 2

    def place_enabled_computations() -> None:
        """Book every computation whose turn has come and transfer is placed."""
        nonlocal comp_cursor
        while comp_cursor < len(comp_sequence):
            task = comp_sequence[comp_cursor]
            transfer_end = comm_end.get(task.name)
            if transfer_end is None:
                return
            start, finish = cpu.commit(transfer_end, task.comp)
            comp_start[task.name] = start
            ledger.set_release(task.memory, finish)
            if events is not None:
                events.append(SimEvent(start, EventKind.COMPUTE_START, task.name))
                events.append(SimEvent(finish, EventKind.COMPUTE_END, task.name))
                events.append(
                    SimEvent(finish, EventKind.MEMORY_RELEASE, task.name, -task.memory)
                )
            comp_cursor += 1

    while pending or arr_cursor < len(future):
        now = link.next_free()
        if now > time:
            time = now
        fire_arrivals(time)
        ledger.advance(time)

        if not pending:
            # Link idle, nothing arrived yet: jump to the next release date.
            time = future[arr_cursor].release
            continue

        if waits:
            state.time = time
            state.available_memory = ledger.available
            state.comm_available = now
            state.comp_available = cpu.next_free()
            task = select((), state)
            if task is None:
                if not advance_to_next_event():
                    raise DeadlockError(
                        "deadlock: policy declined to transfer and no memory "
                        "release or arrival is pending"
                    )
                continue
            horizon = next_arrival()
            if horizon is None:
                start_at = ledger.earliest_fit(time, task.memory)
                if not math.isfinite(start_at):
                    raise DeadlockError(f"task {task.name!r} can never acquire its memory")
            else:
                start_at = ledger.earliest_fit_before(time, task.memory, horizon)
                if start_at is None:
                    # An arrival fires before the memory fits: jump there and
                    # let the policy re-rank the grown ready set.
                    time = horizon
                    continue
            # Transfers keep the policy's order: the next decision may not
            # precede this start (with parallel links another link can be
            # free earlier, but the ledger's destructive release walk — and
            # the fixed order itself — require a monotone clock).
            if start_at > time:
                memory_wait += start_at - time
                time = start_at
        else:
            headroom = ledger.headroom()
            candidates = [t for t in pending.values() if t.memory <= headroom]
            if not candidates:
                stalled_at = time
                if not (kind := advance_to_next_event()):
                    raise DeadlockError(
                        "deadlock: no task fits and no memory will be released"
                    )
                if kind == 2:
                    memory_wait += time - stalled_at
                continue
            state.time = time
            state.available_memory = ledger.available
            state.comm_available = now
            state.comp_available = cpu.next_free()
            task = select(candidates, state)
            if task is None:
                if not advance_to_next_event():
                    raise DeadlockError(
                        "deadlock: policy declined every candidate and no "
                        "memory release or arrival is pending"
                    )
                continue
            start_at = time

        if task.name not in pending:  # pragma: no cover - defensive against bad policies
            raise ValueError(
                f"policy selected an unknown, unreleased or already-scheduled task {task.name!r}"
            )
        start, end = link.commit(start_at, task.comm)
        ledger.acquire(task.memory)  # release attached once the computation is placed
        comm_start[task.name] = start
        comm_end[task.name] = end
        del pending[task.name]
        placed.append(task)
        if events is not None:
            events.append(SimEvent(start, EventKind.MEMORY_ACQUIRE, task.name, task.memory))
            events.append(SimEvent(start, EventKind.TRANSFER_START, task.name))
            events.append(SimEvent(end, EventKind.TRANSFER_END, task.name))
        place_enabled_computations()

    place_enabled_computations()
    if comp_cursor < len(comp_sequence):  # pragma: no cover - every transfer is placed
        raise DeadlockError("computation order blocked behind an unplaced transfer")

    schedule = Schedule(
        ScheduledTask(task=t, comm_start=comm_start[t.name], comp_start=comp_start[t.name])
        for t in placed
    )
    stats = KernelStats(
        engine="object",
        tasks=len(placed),
        events=6 * len(placed) + arr_cursor,
        memory_wait_s=memory_wait,
        ledger_ops=2 * len(placed),
        policy_select_s=policy_select_s,
        elapsed_s=(_obs.now() - run_started) if traced else 0.0,
    )
    if traced:
        _obs.record_span(
            "kernel.simulate",
            run_started,
            run_started + stats.elapsed_s,
            engine="object",
            tasks=stats.tasks,
            events=stats.events,
            memory_wait_s=stats.memory_wait_s,
            policy_select_s=stats.policy_select_s,
        )
    return SimulationResult(
        schedule=schedule,
        trace=EventTrace(events) if events is not None else None,
        engine="object",
        stats=stats,
    )
