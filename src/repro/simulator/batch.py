"""Batched execution (Section 6.3 of the paper).

Real runtime systems rarely see the whole task stream at once: the scheduler
observes a limited window of independent tasks.  The paper models this by
splitting each trace into batches of 100 tasks, applying a heuristic to each
batch, and executing the batches in succession (a batch starts only when the
previous one has completely finished on both resources).
"""

from __future__ import annotations

from typing import Callable

from ..core.instance import Instance
from ..core.schedule import Schedule

__all__ = ["execute_in_batches", "DEFAULT_BATCH_SIZE"]

#: Batch size used in the paper's Section 6.3 experiments.
DEFAULT_BATCH_SIZE = 100


def execute_in_batches(
    instance: Instance,
    scheduler: Callable[[Instance], Schedule],
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Schedule:
    """Apply ``scheduler`` to successive batches and chain the results.

    ``scheduler`` maps a (sub-)instance to a feasible schedule; the returned
    schedule places batch ``k+1`` after the makespan of batches ``0..k``.
    """
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    combined = Schedule.empty()
    for batch in instance.batches(batch_size):
        combined = combined.concatenated(scheduler(batch))
    return combined
