"""Batched execution (Section 6.3 of the paper), on the unified kernel.

Real runtime systems rarely see the whole task stream at once: the scheduler
observes a limited window of independent tasks.  The paper models this by
splitting each trace into batches of 100 tasks, applying a heuristic to each
batch, and executing the batches in succession.  Both batched modes are thin
special cases of the streaming runtime:

* **barrier** (the paper's Section 6.3 semantics) — batch ``k``'s tasks all
  become available when batch ``k-1`` has completely drained both resources.
  After a drain the machine state is exactly "everything free", so the mode
  is realised as one kernel run per batch, shifted to the previous drain
  instant and merged — schedules *and* event traces, on any machine model;
* **pipelined** — no barrier: batch ``k+1``'s transfers start as soon as the
  link and the memory ledger allow, overlapping batch ``k``'s still-running
  computations.  One continuous kernel run under a windowed policy
  (:mod:`repro.simulator.online`).

Pipelined batching never loses to barrier batching for fixed-order
heuristics (the transfer order is identical and every event only moves
earlier); ``benchmarks/bench_online_modes.py`` quantifies the gap.
"""

from __future__ import annotations

from typing import Callable

from ..core.instance import Instance
from ..core.schedule import Schedule
from .engine import SimulationResult
from .events import EventTrace
from .resources import MachineModel

__all__ = ["execute_in_batches", "simulate_in_batches", "DEFAULT_BATCH_SIZE"]

#: Batch size used in the paper's Section 6.3 experiments.
DEFAULT_BATCH_SIZE = 100


class _CallableScheduler:
    """Adapter giving a plain ``Instance -> Schedule`` callable the solver
    ``simulate`` surface (kernel engine options are rejected, not ignored)."""

    def __init__(self, fn: Callable[[Instance], Schedule], name: str | None = None) -> None:
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "scheduler")

    def simulate(
        self,
        instance: Instance,
        *,
        machine: MachineModel | None = None,
        record: bool = False,
        engine: str | None = None,
    ) -> SimulationResult:
        if machine is not None:
            raise ValueError(
                f"scheduler {self.name!r} is a plain callable and cannot "
                "target a custom machine model"
            )
        if record:
            raise ValueError(
                f"scheduler {self.name!r} is a plain callable and cannot "
                "record an event trace"
            )
        if engine is not None and engine != "auto":
            raise ValueError(
                f"scheduler {self.name!r} is a plain callable and cannot "
                "target a specific execution engine"
            )
        return SimulationResult(schedule=self._fn(instance), trace=None)


def simulate_in_batches(
    instance: Instance,
    solver,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
    pipelined: bool = False,
    machine: MachineModel | None = None,
    record: bool = False,
    engine: str | None = None,
) -> SimulationResult:
    """Run ``solver`` over successive batches of ``batch_size`` tasks.

    ``solver`` is any registered solver / heuristic (its ``simulate`` and
    ``window_policy`` surfaces are used) or a plain ``Instance -> Schedule``
    callable (barrier mode only, without engine options).  ``machine`` and
    ``record`` compose with batching in both modes; solvers that do not run
    on the kernel reject them explicitly instead of silently ignoring them.
    ``engine`` selects the execution engine per window (barrier mode; the
    merged result reports ``"mixed"`` when windows ran on different
    engines) or for the continuous run (pipelined mode).

    ``pipelined=True`` drops the drain barrier: one continuous kernel run in
    which batch ``k+1``'s transfers start as soon as memory frees.
    """
    if batch_size <= 0:
        raise ValueError("batch size must be positive")
    if instance.has_releases:
        raise ValueError(
            "release-dated instances are scheduled by the streaming runtime; "
            "batching and arrivals cannot be combined"
        )
    if hasattr(solver, "simulate"):
        runner = solver
    elif hasattr(solver, "schedule"):  # schedule-only Solver protocol object
        runner = _CallableScheduler(solver.schedule, name=getattr(solver, "name", None))
    elif callable(solver):
        runner = _CallableScheduler(solver)
    else:
        raise TypeError(
            f"expected a solver or an Instance -> Schedule callable, got {type(solver).__name__}"
        )

    if pipelined:
        return _simulate_pipelined(instance, runner, batch_size, machine, record, engine)
    return _simulate_barrier(instance, runner, batch_size, machine, record, engine)


def _simulate_barrier(
    instance: Instance,
    solver,
    batch_size: int,
    machine: MachineModel | None,
    record: bool,
    engine: str | None,
) -> SimulationResult:
    """One kernel run per batch, each shifted to the previous drain instant."""
    entries = []
    traces: list[EventTrace] = []
    engines: set[str] = set()
    stats = None
    offset = 0.0
    # Only pass engine= when requested: simulate() surfaces predating the
    # engine option (external solvers) keep working untouched.
    extra = {} if engine is None else {"engine": engine}
    for batch in instance.batches(batch_size):
        result = solver.simulate(batch, machine=machine, record=record, **extra)
        shifted = result.schedule.shifted(offset)
        entries.extend(shifted.entries)
        batch_engine = getattr(result, "engine", "")
        if batch_engine:
            engines.add(batch_engine)
        batch_stats = getattr(result, "stats", None)
        if batch_stats is not None:
            stats = batch_stats if stats is None else stats.merge(batch_stats)
        if record:
            traces.append(result.trace.shifted(offset))
        offset += result.schedule.makespan
    if not engines:
        merged_engine = ""
    elif len(engines) == 1:
        merged_engine = next(iter(engines))
    else:
        merged_engine = "mixed"
    return SimulationResult(
        schedule=Schedule(entries),
        trace=EventTrace.merged(traces) if record else None,
        engine=merged_engine,
        stats=stats,
    )


def _simulate_pipelined(
    instance: Instance,
    solver,
    batch_size: int,
    machine: MachineModel | None,
    record: bool,
    engine: str | None,
) -> SimulationResult:
    """One continuous kernel run under the solver's windowed policy."""
    from .engine import simulate  # local import: engine does not import batch

    windows = tuple(tuple(batch.tasks) for batch in instance.batches(batch_size))
    if not windows:
        return SimulationResult(
            schedule=Schedule.empty(), trace=EventTrace(()) if record else None
        )
    factory = getattr(solver, "window_policy", None)
    policy = factory(instance, windows) if factory is not None else None
    if policy is None:
        name = getattr(solver, "name", type(solver).__name__)
        raise ValueError(
            f"solver {name!r} does not support pipelined batched execution "
            "(kernel-backed heuristics only)"
        )
    return simulate(instance, policy, machine=machine, record=record, engine=engine)


def execute_in_batches(
    instance: Instance,
    scheduler: Callable[[Instance], Schedule],
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> Schedule:
    """Apply ``scheduler`` to successive batches and chain the results.

    The historical barrier-mode entry point: ``scheduler`` maps a
    (sub-)instance to a feasible schedule and batch ``k+1`` starts after the
    makespan of batches ``0..k``.  :func:`simulate_in_batches` is the full
    interface (machine models, event traces, pipelined mode).
    """
    return simulate_in_batches(instance, scheduler, batch_size=batch_size).schedule
