"""Executors that turn a *fixed* task order into a feasible schedule.

The static heuristics of Section 4.1 (and the Gilmore–Gomory / bin-packing
baselines of Section 4.4) all work the same way: an order is computed up
front, then both resources process the tasks in that order, each event placed
as early as possible while respecting the memory capacity.  The paper's worked
examples (Figure 4) pin down the semantics exactly:

* the transfer of the ``k``-th task starts at the earliest time at which the
  link is free *and* the task's memory fits together with every
  previously-started task whose computation has not finished yet;
* its computation starts as soon as both its transfer and the ``k-1``-th
  computation are done (same order on both resources).

:func:`execute_two_orders` generalises this to distinct communication and
computation orders; it is only needed by the Proposition 1 reproduction and by
the MILP post-processing.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task
from ..core.validation import TOLERANCE

__all__ = ["execute_fixed_order", "execute_two_orders", "InfeasibleOrderError"]


class InfeasibleOrderError(ValueError):
    """Raised when a task cannot be scheduled at all (footprint exceeds capacity)."""


def _resolve_order(instance: Instance, order: Sequence[Task] | Sequence[str] | None) -> list[Task]:
    if order is None:
        return list(instance.tasks)
    lookup = instance.by_name()
    resolved: list[Task] = []
    for item in order:
        if isinstance(item, Task):
            resolved.append(item)
        else:
            resolved.append(lookup[item])
    if len(resolved) != len(instance) or {t.name for t in resolved} != set(instance.task_names):
        raise ValueError("order must contain every instance task exactly once")
    return resolved


def _earliest_memory_feasible_start(
    ready_time: float,
    memory_needed: float,
    capacity: float,
    holders: Iterable[tuple[float, float]],
) -> float:
    """Earliest ``t >= ready_time`` at which ``memory_needed`` more memory fits.

    ``holders`` lists ``(release_time, amount)`` pairs for memory currently
    held; an infinite release time means the holder never releases within the
    horizon considered (used for tasks whose computation is not yet placed).
    Memory usage is non-increasing after ``ready_time``, so it suffices to test
    ``ready_time`` and each release instant.
    """
    if not math.isfinite(capacity):
        return ready_time
    # Memory amounts can be physical byte counts (1e7+), so the feasibility
    # slack must scale with the capacity: summing/subtracting holder amounts
    # leaves float dust far above an absolute 1e-9 (same convention as
    # check_schedule's peak-memory test).
    slack = max(TOLERANCE, TOLERANCE * capacity)
    active = [(release, amount) for release, amount in holders if release > ready_time + TOLERANCE]
    used = sum(amount for _, amount in active)
    if used + memory_needed <= capacity + slack:
        return ready_time
    for release, amount in sorted(active):
        used -= amount
        if not math.isfinite(release):
            break
        if used + memory_needed <= capacity + slack:
            return release
    if used + memory_needed <= capacity + slack:
        # All finite holders released; only infinite holders remain.
        return math.inf
    return math.inf


def execute_fixed_order(
    instance: Instance, order: Sequence[Task] | Sequence[str] | None = None
) -> Schedule:
    """Schedule ``instance`` following ``order`` on both resources.

    ``order`` defaults to the instance's submission order (the ``OS``
    strategy).  Raises :class:`InfeasibleOrderError` when a single task does
    not fit in the memory capacity (in which case no order is feasible).
    """
    tasks = _resolve_order(instance, order)
    capacity = instance.capacity
    for task in tasks:
        if task.memory > capacity + TOLERANCE:
            raise InfeasibleOrderError(
                f"task {task.name!r} needs {task.memory:g} memory but capacity is {capacity:g}"
            )

    comm_available = 0.0
    comp_available = 0.0
    entries: list[ScheduledTask] = []
    # (release_time, amount) for every already-placed task; release = comp end.
    holders: list[tuple[float, float]] = []

    for task in tasks:
        start = _earliest_memory_feasible_start(comm_available, task.memory, capacity, holders)
        if not math.isfinite(start):  # pragma: no cover - defensive, cannot happen here
            raise InfeasibleOrderError(f"task {task.name!r} can never acquire its memory")
        comm_start = start
        comm_end = comm_start + task.comm
        comp_start = max(comm_end, comp_available)
        entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
        comm_available = comm_end
        comp_available = comp_start + task.comp
        holders.append((comp_available, task.memory))

    return Schedule(entries)


def execute_two_orders(
    instance: Instance,
    comm_order: Sequence[Task] | Sequence[str],
    comp_order: Sequence[Task] | Sequence[str],
) -> Schedule | None:
    """As-early-as-possible schedule for distinct communication/computation orders.

    Returns ``None`` when the pair of orders deadlocks under the memory
    capacity (the next transfer cannot fit until a computation that is ordered
    *after* a not-yet-transferred task completes).
    """
    comm_tasks = _resolve_order(instance, comm_order)
    comp_tasks = _resolve_order(instance, comp_order)
    capacity = instance.capacity
    for task in comm_tasks:
        if task.memory > capacity + TOLERANCE:
            raise InfeasibleOrderError(
                f"task {task.name!r} needs {task.memory:g} memory but capacity is {capacity:g}"
            )

    comm_start: dict[str, float] = {}
    comp_start: dict[str, float] = {}
    comp_end: dict[str, float] = {}
    comm_available = 0.0
    comp_available = 0.0
    comm_index = 0
    comp_index = 0
    n = len(comm_tasks)

    while comp_index < n:
        next_comp = comp_tasks[comp_index]
        if next_comp.name in comm_start:
            start = max(comm_start[next_comp.name] + next_comp.comm, comp_available)
            comp_start[next_comp.name] = start
            comp_end[next_comp.name] = start + next_comp.comp
            comp_available = start + next_comp.comp
            comp_index += 1
            continue
        if comm_index >= n:
            return None
        task = comm_tasks[comm_index]
        holders = [
            (comp_end.get(name, math.inf), instance[name].memory) for name in comm_start
        ]
        start = _earliest_memory_feasible_start(comm_available, task.memory, capacity, holders)
        if not math.isfinite(start):
            return None
        comm_start[task.name] = start
        comm_available = start + task.comm
        comm_index += 1

    entries = [
        ScheduledTask(task=task, comm_start=comm_start[task.name], comp_start=comp_start[task.name])
        for task in comm_tasks
    ]
    return Schedule(entries)
