"""Fixed-order execution — thin wrappers over the unified kernel.

The static heuristics of Section 4.1 (and the Gilmore–Gomory / bin-packing
baselines of Section 4.4) all work the same way: an order is computed up
front, then both resources process the tasks in that order, each event placed
as early as possible while respecting the memory capacity.  The paper's worked
examples (Figure 4) pin down the semantics exactly:

* the transfer of the ``k``-th task starts at the earliest time at which the
  link is free *and* the task's memory fits together with every
  previously-started task whose computation has not finished yet;
* its computation starts as soon as both its transfer and the ``k-1``-th
  computation are done (same order on both resources).

Both entry points are now expressed as a :class:`FixedOrderPolicy` over
:func:`repro.simulator.engine.simulate`; :func:`execute_two_orders`
additionally fixes the computation order (only needed by the Proposition 1
reproduction and the MILP post-processing).
"""

from __future__ import annotations

from typing import Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..core.task import Task
from .engine import DeadlockError, InfeasibleOrderError, resolve_order, simulate
from .policies import FixedOrderPolicy

__all__ = ["execute_fixed_order", "execute_two_orders", "InfeasibleOrderError"]


def execute_fixed_order(
    instance: Instance, order: Sequence[Task] | Sequence[str] | None = None
) -> Schedule:
    """Schedule ``instance`` following ``order`` on both resources.

    ``order`` defaults to the instance's submission order (the ``OS``
    strategy).  Raises :class:`InfeasibleOrderError` when a single task does
    not fit in the memory capacity (in which case no order is feasible).
    """
    tasks = resolve_order(instance, order)
    return simulate(instance, FixedOrderPolicy(tuple(tasks))).schedule


def execute_two_orders(
    instance: Instance,
    comm_order: Sequence[Task] | Sequence[str],
    comp_order: Sequence[Task] | Sequence[str],
) -> Schedule | None:
    """As-early-as-possible schedule for distinct communication/computation orders.

    Returns ``None`` when the pair of orders deadlocks under the memory
    capacity (the next transfer cannot fit until a computation that is ordered
    *after* a not-yet-transferred task completes).
    """
    comm_tasks = resolve_order(instance, comm_order)
    comp_tasks = resolve_order(instance, comp_order)
    try:
        return simulate(
            instance, FixedOrderPolicy(tuple(comm_tasks)), comp_order=comp_tasks
        ).schedule
    except DeadlockError:
        return None
