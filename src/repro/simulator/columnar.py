"""Columnar array-native fast path for the event kernel.

The object kernel (:mod:`repro.simulator.engine`) walks Python ``Task``
objects through dict-backed pending sets, a heap-backed memory ledger and a
policy call per decision — flexible, but interpreter-scale work *per task*.
This module trades that flexibility for throughput on the execution modes
that dominate every sweep:

* :class:`ColumnarInstance` packs the task attributes (communication and
  computation times, memory footprints, release dates) into numpy arrays
  **once per instance** and caches the view on the instance object, so
  repeated runs — a capacity sweep, a portfolio race — pay the packing cost
  once;
* :func:`simulate_columnar` replays the kernel's decision loop over those
  arrays.  Fixed-order mode (including the Proposition 1 ``comp_order=``
  two-order variant) collapses to prefix recurrences over the packed
  columns with memory feasibility answered by an *array-backed release
  ledger*: release instants are appended to a flat, sorted-by-construction
  array and consumed by a forward cursor — no per-task heap churn.  Dynamic
  and corrected modes keep their sequential decision loop but evaluate the
  minimum-idle filter and the selection criterion over the whole ready set
  as vectorized argmin reductions instead of per-task Python calls;
* the result stays columnar: :class:`ColumnarSchedule` holds the start
  times as flat arrays and materialises :class:`ScheduledTask` rows only
  when something actually indexes into them (validation, the differential
  oracle), so a 10^6-task run never allocates 10^6 row objects unless a
  consumer asks for rows — the same struct-of-arrays contract as
  :class:`repro.api.results.ResultSet`.

Bit-identical results, not just equivalent ones
-----------------------------------------------
The differential oracle (``tests/simulator/test_columnar_crosscheck.py``)
requires the columnar engine to produce schedules *float-for-float equal*
to the object kernel and the frozen ``_reference`` executors.
Reassociating the time recurrences (``np.cumsum`` / ``maximum.accumulate``)
changes the rounding of intermediate sums, so the scan that advances the
clock performs **exactly the kernel's arithmetic in exactly the kernel's
order** on plain Python floats; numpy is used where it cannot change a
single bit — packing the columns, computing sort orders, and
whole-ready-set comparisons and reductions whose per-element operations
match the scalar expressions.

When the fast path declines
---------------------------
``simulate_columnar`` handles the machine models and policies the sweeps
use: any ``link_count``, one processing unit, optional capacity override,
and the :class:`~repro.simulator.policies.FixedOrderPolicy` /
:class:`~repro.simulator.policies.CriterionPolicy` /
:class:`~repro.simulator.policies.CorrectedOrderPolicy` triple with the
paper's three criteria.  Everything else — event recording, release-dated
(streaming) instances, multi-CPU machines, window/online policies, custom
criteria — falls back to the object kernel; :func:`unsupported_reason`
reports why.  Engine choice is resolved by :func:`resolve_engine`
(``"auto"`` | ``"object"`` | ``"columnar"``, overridable with the
``REPRO_ENGINE`` environment variable); ``"auto"`` takes the fast path when
it is supported and the instance has at least
:data:`COLUMNAR_AUTO_THRESHOLD` tasks.
"""

from __future__ import annotations

import heapq
import math
import os
from array import array
from typing import Sequence

import numpy as np

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task
from ..core.validation import TOLERANCE
from ..obs import spans as _obs
from ..obs.stats import KernelStats
from .policies import (
    CorrectedOrderPolicy,
    CriterionPolicy,
    FixedOrderPolicy,
    SelectionPolicy,
    largest_communication,
    maximum_acceleration,
    smallest_communication,
)
from .resources import DEFAULT_MACHINE, MachineModel

__all__ = [
    "ColumnarInstance",
    "ColumnarSchedule",
    "columnar_view",
    "simulate_columnar",
    "columnar_supported",
    "unsupported_reason",
    "resolve_engine",
    "columnar_key_order",
    "columnar_johnson_order",
    "ENGINE_CHOICES",
    "ENGINE_ENV_VAR",
    "COLUMNAR_AUTO_THRESHOLD",
]

#: Recognised values of the ``engine=`` option across the facade.
#: ``"batched"`` stacks homogeneous fixed-order sweep lanes into one numpy
#: step loop (:mod:`repro.simulator.batched`); single runs under it fall
#: back to the columnar scan, which is float-identical.
ENGINE_CHOICES: tuple[str, ...] = ("auto", "object", "columnar", "batched")

#: Environment override for ``engine="auto"`` (CI forces ``columnar`` here
#: to run the whole differential suite through the fast path).
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: ``engine="auto"`` takes the columnar path at or above this task count.
#: Below it the object kernel's lower fixed overhead wins (the crossover
#: measured by ``benchmarks/bench_engine_scaling.py`` is well under this).
COLUMNAR_AUTO_THRESHOLD = 256

#: Attribute under which the packed view is cached on the instance.
_VIEW_ATTR = "_columnar_view"


def resolve_engine(engine: str | None) -> str:
    """Normalise an ``engine=`` option to one of :data:`ENGINE_CHOICES`.

    ``None`` means "auto"; an ``"auto"`` request additionally honours the
    ``REPRO_ENGINE`` environment variable, so a whole test run or sweep can
    be forced onto one engine without touching call sites.
    """
    choice = "auto" if engine is None else str(engine).lower()
    if choice == "auto":
        override = os.environ.get(ENGINE_ENV_VAR, "").strip().lower()
        if override:
            choice = override
    if choice not in ENGINE_CHOICES:
        raise ValueError(
            f"unknown engine {engine if engine is not None else choice!r}; "
            f"choose from {list(ENGINE_CHOICES)} "
            f"(the {ENGINE_ENV_VAR} environment variable overrides 'auto')"
        )
    return choice


# --------------------------------------------------------------------------- #
# The packed view
# --------------------------------------------------------------------------- #
class ColumnarInstance:
    """Struct-of-arrays view of one :class:`~repro.core.instance.Instance`.

    Built once and cached on the instance (instances are immutable, derived
    instances are new objects), so every engine run, heuristic order
    computation and repeated solve of a sweep shares the same packed
    columns.  ``*_list`` attributes are plain Python float lists — the
    scalar scans iterate those (C-array access, exact float semantics)
    while the numpy columns serve the vectorized reductions.  Everything a
    mode might not need (name ranks, criterion keys, lookup dicts) is
    derived lazily and cached.
    """

    __slots__ = (
        "instance",
        "tasks",
        "names",
        "comm",
        "comp",
        "memory",
        "release",
        "comm_list",
        "comp_list",
        "memory_list",
        "_total",
        "_name_rank",
        "_index",
        "_acceleration",
    )

    def __init__(self, instance: Instance) -> None:
        tasks = instance.tasks
        self.instance = instance
        self.tasks = tasks
        self.names = [t.name for t in tasks]
        self.comm = np.array([t.comm for t in tasks], dtype=np.float64)
        self.comp = np.array([t.comp for t in tasks], dtype=np.float64)
        self.memory = np.array([t.memory for t in tasks], dtype=np.float64)
        self.release = np.array([t.release for t in tasks], dtype=np.float64)
        self.comm_list = self.comm.tolist()
        self.comp_list = self.comp.tolist()
        self.memory_list = self.memory.tolist()
        self._total: np.ndarray | None = None
        self._name_rank: np.ndarray | None = None
        self._index: dict[str, int] | None = None
        self._acceleration: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total(self) -> np.ndarray:
        """Per-task ``comm + comp`` (the IOCCS/DOCCS sort key)."""
        if self._total is None:
            self._total = self.comm + self.comp
        return self._total

    @property
    def name_rank(self) -> np.ndarray:
        """Rank of each task's name in lexicographic order.

        Sorting by rank is sorting by name, but compares machine integers
        instead of re-comparing strings at every decision point.
        """
        if self._name_rank is None:
            n = len(self.tasks)
            rank = np.empty(n, dtype=np.int64)
            rank[sorted(range(n), key=self.names.__getitem__)] = np.arange(n)
            self._name_rank = rank
        return self._name_rank

    @property
    def index(self) -> dict[str, int]:
        """Name -> position lookup (built lazily, cached)."""
        if self._index is None:
            self._index = {name: i for i, name in enumerate(self.names)}
        return self._index

    @property
    def acceleration(self) -> np.ndarray:
        """Per-task ``comp/comm`` with the kernel's zero-communication rules
        (``inf`` when only the communication is zero, ``0.0`` when both are)."""
        if self._acceleration is None:
            with np.errstate(divide="ignore", invalid="ignore"):
                acc = self.comp / self.comm
            zero_comm = self.comm == 0.0
            acc[zero_comm & (self.comp > 0.0)] = math.inf
            acc[zero_comm & ~(self.comp > 0.0)] = 0.0
            self._acceleration = acc
        return self._acceleration


def columnar_view(instance: Instance, *, build: bool = True) -> ColumnarInstance | None:
    """The cached :class:`ColumnarInstance` of ``instance``.

    ``build=False`` only returns an already-cached view — the heuristics use
    it to vectorize order computation exactly when an engine run has already
    paid for the packing (or will).
    """
    view = getattr(instance, _VIEW_ATTR, None)
    if view is not None or not build:
        return view
    if _obs.is_enabled():
        pack_started = _obs.now()
        view = ColumnarInstance(instance)
        _obs.record_span("columnar.pack", pack_started, _obs.now(), tasks=len(view))
    else:
        view = ColumnarInstance(instance)
    try:  # Instance is frozen; the cache is not a dataclass field.
        object.__setattr__(instance, _VIEW_ATTR, view)
    except AttributeError:  # pragma: no cover - only if Instance gains __slots__
        pass
    return view


# --------------------------------------------------------------------------- #
# The columnar schedule
# --------------------------------------------------------------------------- #
class ColumnarSchedule(Schedule):
    """A :class:`~repro.core.schedule.Schedule` backed by flat start-time
    arrays, materialising its :class:`ScheduledTask` rows only on demand.

    Aggregates that reduce over whole columns (``makespan``, busy times) run
    on the arrays; anything that needs row objects (``entries``, name
    lookup, validation, equality against an eagerly-built schedule)
    triggers a one-time materialisation that is transparent to callers —
    a ``ColumnarSchedule`` compares equal to the object kernel's
    :class:`Schedule` with the same placements.
    """

    __slots__ = ("_tasks", "_placed", "_comm_starts", "_comp_starts", "_columns")

    def __init__(
        self,
        tasks: Sequence[Task],
        placed: Sequence[int],
        comm_starts: Sequence[float],
        comp_starts: Sequence[float],
        columns: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        # Deliberately no super().__init__: _entries/_by_name stay unset and
        # are built by __getattr__ on first access.
        self._tasks = tasks
        self._placed = placed
        self._comm_starts = comm_starts
        self._comp_starts = comp_starts
        self._columns = columns

    def __getattr__(self, name: str):
        # Only ever reached when a slot is unset: build the row view once.
        if name in ("_entries", "_by_name"):
            self._materialize()
            return getattr(self, name)
        raise AttributeError(name)

    def _materialize(self) -> None:
        """Build the ``ScheduledTask`` rows (placement order) and name map.

        Rows are created through ``__new__`` + ``object.__setattr__``: the
        engine guarantees the ``comp_start >= comm_end`` invariant by
        construction, and skipping the dataclass ``__init__`` keeps
        materialisation ~3x cheaper — it is already the price of admission
        for every row-oriented consumer.
        """
        tasks = self._tasks
        comm_starts = self._comm_starts
        comp_starts = self._comp_starts
        new = ScheduledTask.__new__
        set_attr = object.__setattr__
        entries = []
        append = entries.append
        for i in self._placed:
            entry = new(ScheduledTask)
            set_attr(entry, "task", tasks[i])
            set_attr(entry, "comm_start", comm_starts[i])
            set_attr(entry, "comp_start", comp_starts[i])
            append(entry)
        self._entries = tuple(entries)
        self._by_name = {entry.task.name: entry for entry in entries}

    def __len__(self) -> int:
        return len(self._placed)

    @property
    def makespan(self) -> float:
        """Column-wise makespan: no row objects needed."""
        if not len(self._placed):
            return 0.0
        comm = np.asarray(self._comm_starts)
        comp = np.asarray(self._comp_starts)
        view = self._view_columns()
        return float(np.maximum(comm + view[0], comp + view[1]).max())

    @property
    def communication_busy_time(self) -> float:
        return float(self._view_columns()[0].sum())

    @property
    def computation_busy_time(self) -> float:
        return float(self._view_columns()[1].sum())

    def _view_columns(self) -> tuple[np.ndarray, np.ndarray]:
        if self._columns is None:
            tasks = self._tasks
            self._columns = (
                np.array([t.comm for t in tasks], dtype=np.float64),
                np.array([t.comp for t in tasks], dtype=np.float64),
            )
        return self._columns


def _columnar_schedule(
    view: ColumnarInstance,
    placed: Sequence[int],
    comm_starts: Sequence[float],
    comp_starts: Sequence[float],
) -> ColumnarSchedule:
    # The already-packed columns back the aggregate reductions for free.
    return ColumnarSchedule(
        view.tasks, placed, comm_starts, comp_starts, columns=(view.comm, view.comp)
    )


# --------------------------------------------------------------------------- #
# Vectorized heuristic orders
# --------------------------------------------------------------------------- #
_ORDER_KEYS = ("comm", "comp", "total")


def columnar_key_order(
    instance: Instance, *, key: str, reverse: bool = False
) -> list[Task] | None:
    """Tasks sorted by ``(key, name)`` — or ``(-key, name)`` — via argsort.

    Produces the *identical* permutation to
    ``sorted(tasks, key=lambda t: (key(t), t.name))``: the float keys are
    compared exactly, and ties fall through to the name rank, which is the
    lexicographic name order.  Returns ``None`` (caller keeps the ``sorted``
    path) when no view is cached and the instance is below the columnar
    threshold — packing columns to sort 20 tasks would be a net loss.
    """
    if key not in _ORDER_KEYS:
        raise ValueError(f"unknown order key {key!r}; choose from {list(_ORDER_KEYS)}")
    view = columnar_view(instance, build=len(instance) >= COLUMNAR_AUTO_THRESHOLD)
    if view is None:
        return None
    values = getattr(view, key)
    order = np.lexsort((view.name_rank, -values if reverse else values))
    tasks = view.tasks
    return [tasks[i] for i in order]


def columnar_johnson_order(instance: Instance) -> list[Task] | None:
    """Johnson's rule via masked argsorts, identical to ``johnson_order``.

    Compute-intensive tasks (``comp >= comm``) by ``(comm, name)``, then the
    rest by ``(-comp, name)`` — the same keys, compared exactly, with the
    same name tie-break.  Returns ``None`` below the columnar threshold when
    no view is cached.
    """
    view = columnar_view(instance, build=len(instance) >= COLUMNAR_AUTO_THRESHOLD)
    if view is None:
        return None
    compute_intensive = np.flatnonzero(view.comp >= view.comm)
    communication_intensive = np.flatnonzero(view.comp < view.comm)
    rank = view.name_rank
    first = compute_intensive[
        np.lexsort((rank[compute_intensive], view.comm[compute_intensive]))
    ]
    second = communication_intensive[
        np.lexsort((rank[communication_intensive], -view.comp[communication_intensive]))
    ]
    tasks = view.tasks
    return [tasks[i] for i in first] + [tasks[i] for i in second]


# --------------------------------------------------------------------------- #
# Support matrix
# --------------------------------------------------------------------------- #
def _criterion_keys(view: ColumnarInstance, criterion) -> np.ndarray | None:
    """Packed sort keys replicating a criterion function, or ``None``."""
    if criterion is largest_communication:
        return -view.comm
    if criterion is smallest_communication:
        return view.comm
    if criterion is maximum_acceleration:
        return -view.acceleration
    return None


def _fixed_order_indices(
    view: ColumnarInstance, policy: FixedOrderPolicy
) -> Sequence[int] | None:
    """Map a fixed order's tasks to view positions; ``None`` when the policy
    carries tasks that are not exactly the instance's own.

    The mapping is cached on the (immutable) policy keyed by the view, so
    repeated runs of one policy — benchmarks, racing — resolve in O(1).
    """
    cached = getattr(policy, "_columnar_order", None)
    if cached is not None and cached[0] is view:
        return cached[1]
    order: Sequence[int] | None
    if policy.tasks == view.tasks:  # submission order: identity-fast compare
        order = range(len(view))
    else:
        if len(policy.tasks) != len(view):
            return None
        index = view.index
        tasks = view.tasks
        resolved: list[int] = []
        seen = bytearray(len(view))
        for task in policy.tasks:
            i = index.get(task.name)
            if i is None or seen[i] or not (tasks[i] is task or tasks[i] == task):
                return None
            seen[i] = 1
            resolved.append(i)
        order = resolved
    try:
        object.__setattr__(policy, "_columnar_order", (view, order))
    except AttributeError:  # pragma: no cover - only if the policy gains __slots__
        pass
    return order


def unsupported_reason(
    instance: Instance,
    policy: SelectionPolicy,
    *,
    machine: MachineModel | None = None,
    comp_order: Sequence[Task] | Sequence[str] | None = None,
    record: bool = False,
) -> str | None:
    """Why the columnar engine declines this run, or ``None`` if it can run.

    The fast path never guesses: any feature it cannot replay bit-for-bit —
    event recording, release-dated instances, multi-CPU machines, policies
    or criteria outside the paper's triple — is a reason to fall back.
    """
    machine = DEFAULT_MACHINE if machine is None else machine
    if record:
        return "event recording is only implemented by the object kernel"
    if machine.cpu_count != 1:
        return "multi-CPU machines are only implemented by the object kernel"
    kind = type(policy)
    if kind is not FixedOrderPolicy:
        if comp_order is not None:
            return "comp_order is only supported with a FixedOrderPolicy"
        if kind is not CriterionPolicy and kind is not CorrectedOrderPolicy:
            return f"policy {kind.__name__!r} is only implemented by the object kernel"
    view = columnar_view(instance)
    if bool((view.release > 0.0).any()):
        return "release-dated instances run on the streaming (object) kernel"
    if kind is not FixedOrderPolicy and _criterion_keys(view, policy.criterion) is None:
        name = getattr(policy.criterion, "__name__", policy.criterion)
        return f"criterion {name!r} has no packed key"
    return None


def columnar_supported(
    instance: Instance,
    policy: SelectionPolicy,
    *,
    machine: MachineModel | None = None,
    comp_order: Sequence[Task] | Sequence[str] | None = None,
    record: bool = False,
) -> bool:
    """Whether :func:`simulate_columnar` can run this configuration."""
    return (
        unsupported_reason(
            instance, policy, machine=machine, comp_order=comp_order, record=record
        )
        is None
    )


# --------------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------------- #
def simulate_columnar(
    instance: Instance,
    policy: SelectionPolicy,
    *,
    machine: MachineModel | None = None,
    comp_order: Sequence[Task] | Sequence[str] | None = None,
    record: bool = False,
):
    """Columnar counterpart of :func:`repro.simulator.engine.simulate`.

    Produces a :class:`~repro.simulator.engine.SimulationResult` whose
    schedule is float-for-float identical to the object kernel's, or raises
    :class:`ValueError` when the configuration is unsupported (use
    :func:`columnar_supported` / the engine dispatch to fall back instead).
    The errors of infeasible runs — ``InfeasibleOrderError`` for a task that
    can never fit, ``DeadlockError`` for a blocked two-order run — are the
    kernel's own classes with the kernel's exact messages.
    """
    from .engine import InfeasibleOrderError, SimulationResult, resolve_order

    reason = unsupported_reason(
        instance, policy, machine=machine, comp_order=comp_order, record=record
    )
    if reason is not None:
        raise ValueError(f"columnar engine cannot run this configuration: {reason}")
    machine = DEFAULT_MACHINE if machine is None else machine
    view = columnar_view(instance)
    capacity = machine.effective_capacity(instance.capacity)

    # Upfront feasibility — same walk, same first offender, same message.
    if len(view) and math.isfinite(capacity):
        over = view.memory > capacity + TOLERANCE
        if bool(over.any()):
            i = int(np.argmax(over))
            raise InfeasibleOrderError(
                f"task {view.names[i]!r} needs {view.memory_list[i]:g} memory "
                f"but capacity is {capacity:g}"
            )

    traced = _obs.is_enabled()
    run_started = _obs.now() if traced else 0.0
    if type(policy) is FixedOrderPolicy:
        order = _fixed_order_indices(view, policy)
        if order is None:
            raise ValueError(
                "columnar engine cannot run this configuration: the fixed "
                "order does not cover the instance's own tasks"
            )
        comp_idx: list[int] | None = None
        if comp_order is not None:
            resolved = resolve_order(instance, comp_order)
            index = view.index
            comp_idx = [index[t.name] for t in resolved]
        scan_mode = "fixed"
        comm_start, comp_start, memory_wait = _fixed_order_scan(
            view, order, comp_idx, capacity, machine.link_count
        )
        placed: Sequence[int] = order
    else:
        keys = _criterion_keys(view, policy.criterion)
        corrected_order: list[int] | None = None
        if type(policy) is CorrectedOrderPolicy:
            index = view.index
            corrected_order = [index.get(name, -1) for name in policy.order]
        scan_mode = "corrected" if corrected_order is not None else "policy"
        placed, comm_start, comp_start, memory_wait = _policy_scan(
            view, keys, corrected_order, capacity, machine.link_count
        )

    stats = KernelStats(
        engine="columnar",
        tasks=len(placed),
        events=6 * len(placed),
        memory_wait_s=memory_wait,
        ledger_ops=2 * len(placed),
        elapsed_s=(_obs.now() - run_started) if traced else 0.0,
    )
    if traced:
        _obs.record_span(
            "columnar.scan",
            run_started,
            run_started + stats.elapsed_s,
            mode=scan_mode,
            tasks=stats.tasks,
            memory_wait_s=stats.memory_wait_s,
        )
    return SimulationResult(
        schedule=_columnar_schedule(view, placed, comm_start, comp_start),
        trace=None,
        engine="columnar",
        stats=stats,
    )


def _fixed_order_scan(
    view: ColumnarInstance,
    order: Sequence[int],
    comp_idx: list[int] | None,
    capacity: float,
    link_count: int,
) -> tuple[Sequence[float], Sequence[float], float]:
    """Fixed-order recurrence: one forward pass over the packed columns.

    The transfer timeline is the kernel's ``start = max(ready, free)`` /
    ``end = start + comm`` recurrence; the computation timeline chains
    ``comp_start = max(transfer_end, cpu_free)`` in ``comp_idx`` order
    (placement order when ``None``).  Memory feasibility uses the
    array-backed ledger: computation finish times are appended to a flat
    release array (non-decreasing by construction — the single processing
    unit finishes computations in placement order) and consumed left to
    right by a cursor, replicating the heap ledger's destructive walk
    without any heap.  The dominant configuration — one link, computations
    in placement order — runs a specialised loop with no gating state.
    """
    n = len(view)
    comm = view.comm_list
    comp = view.comp_list
    mem = view.memory_list

    if link_count == 1 and comp_idx is None:
        if not math.isfinite(capacity):
            # Unconstrained memory: the pure two-resource chain.
            comm_o, comp_o, _, _ = _gathered_columns(view, order, memory=False)
            comm_seq = array("d")
            comp_seq = array("d")
            comm_append = comm_seq.append
            comp_append = comp_seq.append
            link_avail = 0.0
            cpu_avail = 0.0
            for c, p in zip(comm_o, comp_o):
                end = link_avail + c
                comm_append(link_avail)
                link_avail = end
                cs = end if end > cpu_avail else cpu_avail
                cpu_avail = cs + p
                comp_append(cs)
            return (*_scattered(order, n, comm_seq, comp_seq), 0.0)
        return _fixed_scan_single_link(view, order, capacity)

    comm_start = [0.0] * n
    comp_start = [0.0] * n
    memory_wait = 0.0

    # Generic loop: k links and/or an explicit computation order.
    from .engine import DeadlockError

    names = view.names
    finite = math.isfinite(capacity)
    slack = max(TOLERANCE, TOLERANCE * capacity) if finite else TOLERANCE
    used = 0.0
    rel_time: list[float] = []  # release instants, non-decreasing
    rel_amount: list[float] = []
    rel_cursor = 0

    single_link = link_count == 1
    link_avail = 0.0
    link_heap = [0.0] * link_count
    cpu_avail = 0.0
    time = 0.0

    comm_end: list[float | None] = [None] * n
    sequence = order if comp_idx is None else comp_idx
    comp_cursor = 0
    placed_count = 0

    for i in order:
        now = link_avail if single_link else link_heap[0]
        if now > time:
            time = now
        horizon = time + TOLERANCE
        while rel_cursor < len(rel_time) and rel_time[rel_cursor] <= horizon:
            used -= rel_amount[rel_cursor]
            rel_cursor += 1
        start_at = time
        if finite:
            limit = capacity + slack - mem[i]
            if used > limit:
                while True:
                    if rel_cursor == len(rel_time):
                        raise DeadlockError(
                            f"task {names[i]!r} can never acquire its memory"
                        )
                    release = rel_time[rel_cursor]
                    used -= rel_amount[rel_cursor]
                    rel_cursor += 1
                    if used <= limit:
                        start_at = release
                        break
                if start_at > time:
                    memory_wait += start_at - time
                    time = start_at
        c = comm[i]
        if single_link:
            start = start_at if start_at > link_avail else link_avail
            end = start + c
            link_avail = end
        else:
            start = max(start_at, link_heap[0])
            end = start + c
            heapq.heapreplace(link_heap, end)
        used += mem[i]
        comm_start[i] = start
        comm_end[i] = end
        placed_count += 1
        while comp_cursor < placed_count:
            j = sequence[comp_cursor]
            transfer_end = comm_end[j]
            if transfer_end is None:
                break
            cs = transfer_end if transfer_end > cpu_avail else cpu_avail
            ce = cs + comp[j]
            cpu_avail = ce
            comp_start[j] = cs
            rel_time.append(ce)
            rel_amount.append(mem[j])
            comp_cursor += 1
    return comm_start, comp_start, memory_wait


def _gathered_columns(view: ColumnarInstance, order: Sequence[int], *, memory: bool = True):
    """``(comm, comp, memory list, memory ndarray)`` permuted into scan order.

    Returns the view's own lists untouched when the order is the identity
    (``range``); otherwise one vectorized fancy-gather per column, so the
    scan loop iterates plain sequential lists with ``zip`` instead of
    paying three indexed loads per task.  Gathering moves values without
    arithmetic — exactness is untouched.  ``memory=False`` skips the
    memory column (the unconstrained chain never reads it).
    """
    if isinstance(order, range):
        return view.comm_list, view.comp_list, view.memory_list, view.memory
    order_np = np.asarray(order, dtype=np.intp)
    comm_o = view.comm[order_np].tolist()
    comp_o = view.comp[order_np].tolist()
    if not memory:
        return comm_o, comp_o, None, None
    mem_np = view.memory[order_np]
    return comm_o, comp_o, mem_np.tolist(), mem_np


def _scattered(order: Sequence[int], n: int, comm_seq, comp_seq):
    """Sequential per-decision outputs scattered back to task positions.

    The scans append one start time per *placement*; schedules are indexed
    by *task* position.  For the identity order the sequences already line
    up; otherwise a single vectorized scatter writes both columns.  The
    outputs stay ``array('d')``: every clock value is unboxed on write and
    freed immediately, so the float free-list stays hot instead of
    spraying millions of one-shot float objects over cold arenas
    (measurably 3-4x on a 10^6-task cold run) — and reads hand back plain
    Python floats, keeping downstream arithmetic exact.
    """
    if isinstance(order, range):
        return comm_seq, comp_seq
    order_np = np.asarray(order, dtype=np.intp)
    comm_start = array("d", bytes(8 * n))
    comp_start = array("d", bytes(8 * n))
    np.frombuffer(comm_start)[order_np] = np.frombuffer(comm_seq)
    np.frombuffer(comp_start)[order_np] = np.frombuffer(comp_seq)
    return comm_start, comp_start


def _fixed_scan_single_link(
    view: ColumnarInstance,
    order: Sequence[int],
    capacity: float,
) -> tuple["array[float]", "array[float]", float]:
    """Specialised fixed-order scan: one link, computations in placement
    order, finite capacity.  Every expression mirrors the object kernel's
    exact arithmetic; per-task fit limits are precomputed column-wide
    (``capacity + slack - memory`` is the ledger's own per-probe formula,
    evaluated element-wise), and the release ledger is a pair of raw
    double arrays consumed by a forward cursor."""
    from .engine import DeadlockError

    comm_o, comp_o, mem_o, mem_np = _gathered_columns(view, order)
    slack = max(TOLERANCE, TOLERANCE * capacity)
    limits_o = ((capacity + slack) - mem_np).tolist()

    # The release ledger: entry j releases ``mem_o[j]`` memory at the j-th
    # computation's end — the amounts column IS the gathered memory column,
    # so only the end times need storing.  ``next_release`` mirrors
    # ``rel_time[rel_cursor]`` (inf when drained) so the common no-release
    # iteration is a single scalar compare with no array read.
    inf = math.inf
    used = 0.0
    rel_time = array("d")
    rel_append = rel_time.append
    rel_cursor = 0
    rel_count = 0
    next_release = inf

    comm_seq = array("d")
    comp_seq = array("d")
    comm_append = comm_seq.append
    comp_append = comp_seq.append

    link_avail = 0.0
    cpu_avail = 0.0
    time = 0.0
    memory_wait = 0.0

    for c, p, m, limit in zip(comm_o, comp_o, mem_o, limits_o):
        if link_avail > time:
            time = link_avail
        horizon = time + TOLERANCE
        while next_release <= horizon:
            used -= mem_o[rel_cursor]
            rel_cursor += 1
            next_release = rel_time[rel_cursor] if rel_cursor < rel_count else inf
        start_at = time
        if used > limit:
            while True:
                if rel_cursor == rel_count:
                    raise DeadlockError(
                        f"task {view.names[order[rel_count]]!r} "
                        "can never acquire its memory"
                    )
                release = next_release
                used -= mem_o[rel_cursor]
                rel_cursor += 1
                next_release = rel_time[rel_cursor] if rel_cursor < rel_count else inf
                if used <= limit:
                    start_at = release
                    break
            if start_at > time:
                memory_wait += start_at - time
                time = start_at
        start = start_at if start_at > link_avail else link_avail
        end = start + c
        link_avail = end
        used += m
        comm_append(start)
        cs = end if end > cpu_avail else cpu_avail
        ce = cs + p
        cpu_avail = ce
        comp_append(cs)
        rel_append(ce)
        rel_count += 1
        if next_release == inf:
            next_release = ce

    return (*_scattered(order, len(view), comm_seq, comp_seq), memory_wait)


def _policy_scan(
    view: ColumnarInstance,
    keys: np.ndarray,
    corrected_order: list[int] | None,
    capacity: float,
    link_count: int,
) -> tuple[list[int], list[float], list[float], float]:
    """Dynamic / corrected decision loop with vectorized reductions.

    One decision still places one transfer, but the per-candidate Python
    work — the memory fit test, the minimum-idle filter, the criterion key
    comparison — runs as whole-ready-set numpy reductions over compact
    arrays (scheduled tasks are swap-removed, so every reduction touches
    exactly the live candidates).  Per-element arithmetic matches the
    scalar policy expressions, so the selected task — and therefore the
    schedule — is identical to the object kernel's.
    """
    from .engine import DeadlockError

    n = len(view)
    comm = view.comm_list
    comp = view.comp_list
    mem = view.memory_list

    # Compact candidate columns; slot k-1 is swapped over a scheduled slot.
    idx_a = np.arange(n, dtype=np.int64)
    comm_a = view.comm.copy()
    mem_a = view.memory.copy()
    key_a = keys.copy()
    rank_a = view.name_rank.copy()
    pos = np.arange(n, dtype=np.int64)  # task index -> live slot
    k = n

    # Per-event scratch, allocated once: the selection step below runs for
    # every placement, and fresh temporaries per event dominated its cost.
    idle_s = np.empty(n)
    fits_s = np.empty(n, dtype=bool)
    elig_s = np.empty(n, dtype=bool)
    eq_s = np.empty(n, dtype=bool)

    finite = math.isfinite(capacity)
    slack = max(TOLERANCE, TOLERANCE * capacity) if finite else TOLERANCE
    used = 0.0
    rel_time: list[float] = []
    rel_amount: list[float] = []
    rel_cursor = 0

    single_link = link_count == 1
    link_avail = 0.0
    link_heap = [0.0] * link_count
    cpu_avail = 0.0
    time = 0.0

    corrected = corrected_order is not None
    done = [False] * n
    cursor = 0

    placed: list[int] = []
    comm_start = [0.0] * n
    comp_start = [0.0] * n
    memory_wait = 0.0

    while k > 0:
        now = link_avail if single_link else link_heap[0]
        if now > time:
            time = now
        horizon = time + TOLERANCE
        while rel_cursor < len(rel_time) and rel_time[rel_cursor] <= horizon:
            used -= rel_amount[rel_cursor]
            rel_cursor += 1

        if finite:
            headroom = capacity + slack - used
            fits = np.less_equal(mem_a[:k], headroom, out=fits_s[:k])
            if not fits.any():
                if rel_cursor == len(rel_time):
                    raise DeadlockError(
                        "deadlock: no task fits and no memory will be released"
                    )
                memory_wait += rel_time[rel_cursor] - time
                time = rel_time[rel_cursor]
                continue
        else:
            headroom = math.inf
            fits = None

        slot = -1
        if corrected:
            while cursor < len(corrected_order):
                head = corrected_order[cursor]
                if head < 0 or not done[head]:
                    break
                cursor += 1
            if cursor < len(corrected_order):
                head = corrected_order[cursor]
                if head >= 0 and mem[head] <= headroom:
                    slot = int(pos[head])
        if slot < 0:
            # minimum_idle_filter, then the criterion key, then the name —
            # the same expressions, evaluated array-wide.  (``min`` and the
            # comparisons are exact, so masked reductions into the reusable
            # scratch buffers select the identical task.)
            threshold = cpu_avail - time
            idle = np.subtract(comm_a[:k], threshold, out=idle_s[:k])
            if fits is None:
                best = float(idle.min())
            else:
                best = float(np.min(idle, initial=math.inf, where=fits))
            cutoff = max(best, 0.0) + TOLERANCE
            eligible = np.less_equal(idle, cutoff, out=elig_s[:k])
            if fits is not None:
                eligible &= fits
            live_keys = key_a[:k]
            lowest = np.min(live_keys, initial=math.inf, where=eligible)
            eq = np.equal(live_keys, lowest, out=eq_s[:k])
            eq &= eligible
            contenders = np.flatnonzero(eq)
            if len(contenders) == 1:
                slot = int(contenders[0])
            else:
                slot = int(contenders[np.argmin(rank_a[contenders])])
        i = int(idx_a[slot])
        if corrected:
            done[i] = True

        c = comm[i]
        if single_link:
            start = time if time > link_avail else link_avail
            end = start + c
            link_avail = end
        else:
            start = max(time, link_heap[0])
            end = start + c
            heapq.heapreplace(link_heap, end)
        used += mem[i]
        comm_start[i] = start
        placed.append(i)
        cs = end if end > cpu_avail else cpu_avail
        ce = cs + comp[i]
        cpu_avail = ce
        comp_start[i] = cs
        rel_time.append(ce)
        rel_amount.append(mem[i])

        last = k - 1
        if slot != last:
            moved = idx_a[last]
            idx_a[slot] = moved
            comm_a[slot] = comm_a[last]
            mem_a[slot] = mem_a[last]
            key_a[slot] = key_a[last]
            rank_a[slot] = rank_a[last]
            pos[moved] = slot
        k = last
    return placed, comm_start, comp_start, memory_wait
