"""Frozen seed executors — differential-testing oracle and benchmark baseline.

These are the pre-kernel implementations of the three execution modes,
kept verbatim (holder re-sum and all, O(n²) per schedule) so that

* ``tests/simulator/test_kernel_crosscheck.py`` can assert the unified
  kernel reproduces them byte-for-byte on randomly generated instances, and
* ``benchmarks/bench_engine_scaling.py`` can measure the kernel's speedup
  against the seed code path.

Do not use these in production code paths and do not "fix" them: their
value is being exactly the seed semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task
from ..core.validation import TOLERANCE
from .engine import InfeasibleOrderError, resolve_order
from .policies import ExecutionState, minimum_idle_filter

__all__ = [
    "reference_execute_fixed_order",
    "reference_execute_two_orders",
    "reference_execute_with_policy",
    "ReferenceCorrectedOrderPolicy",
]


def _earliest_memory_feasible_start(
    ready_time: float,
    memory_needed: float,
    capacity: float,
    holders: Iterable[tuple[float, float]],
) -> float:
    """Seed implementation: re-sorts and re-sums the holders at every call."""
    if not math.isfinite(capacity):
        return ready_time
    slack = max(TOLERANCE, TOLERANCE * capacity)
    active = [(release, amount) for release, amount in holders if release > ready_time + TOLERANCE]
    used = sum(amount for _, amount in active)
    if used + memory_needed <= capacity + slack:
        return ready_time
    for release, amount in sorted(active):
        used -= amount
        if not math.isfinite(release):
            break
        if used + memory_needed <= capacity + slack:
            return release
    return math.inf


def reference_execute_fixed_order(
    instance: Instance, order: Sequence[Task] | Sequence[str] | None = None
) -> Schedule:
    """Seed ``execute_fixed_order``: per-task holder re-scan."""
    tasks = resolve_order(instance, order)
    capacity = instance.capacity
    for task in tasks:
        if task.memory > capacity + TOLERANCE:
            raise InfeasibleOrderError(
                f"task {task.name!r} needs {task.memory:g} memory but capacity is {capacity:g}"
            )

    comm_available = 0.0
    comp_available = 0.0
    entries: list[ScheduledTask] = []
    holders: list[tuple[float, float]] = []

    for task in tasks:
        start = _earliest_memory_feasible_start(comm_available, task.memory, capacity, holders)
        if not math.isfinite(start):  # pragma: no cover - defensive, cannot happen here
            raise InfeasibleOrderError(f"task {task.name!r} can never acquire its memory")
        comm_start = start
        comm_end = comm_start + task.comm
        comp_start = max(comm_end, comp_available)
        entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
        comm_available = comm_end
        comp_available = comp_start + task.comp
        holders.append((comp_available, task.memory))

    return Schedule(entries)


def reference_execute_two_orders(
    instance: Instance,
    comm_order: Sequence[Task] | Sequence[str],
    comp_order: Sequence[Task] | Sequence[str],
) -> Schedule | None:
    """Seed ``execute_two_orders``: holder list rebuilt at every transfer."""
    comm_tasks = resolve_order(instance, comm_order)
    comp_tasks = resolve_order(instance, comp_order)
    capacity = instance.capacity
    for task in comm_tasks:
        if task.memory > capacity + TOLERANCE:
            raise InfeasibleOrderError(
                f"task {task.name!r} needs {task.memory:g} memory but capacity is {capacity:g}"
            )

    comm_start: dict[str, float] = {}
    comp_start: dict[str, float] = {}
    comp_end: dict[str, float] = {}
    comm_available = 0.0
    comp_available = 0.0
    comm_index = 0
    comp_index = 0
    n = len(comm_tasks)

    while comp_index < n:
        next_comp = comp_tasks[comp_index]
        if next_comp.name in comm_start:
            start = max(comm_start[next_comp.name] + next_comp.comm, comp_available)
            comp_start[next_comp.name] = start
            comp_end[next_comp.name] = start + next_comp.comp
            comp_available = start + next_comp.comp
            comp_index += 1
            continue
        if comm_index >= n:
            return None
        task = comm_tasks[comm_index]
        holders = [
            (comp_end.get(name, math.inf), instance[name].memory) for name in comm_start
        ]
        start = _earliest_memory_feasible_start(comm_available, task.memory, capacity, holders)
        if not math.isfinite(start):
            return None
        comm_start[task.name] = start
        comm_available = start + task.comm
        comm_index += 1

    entries = [
        ScheduledTask(task=task, comm_start=comm_start[task.name], comp_start=comp_start[task.name])
        for task in comm_tasks
    ]
    return Schedule(entries)


@dataclass
class ReferenceCorrectedOrderPolicy:
    """Seed ``CorrectedOrderPolicy``: consumes an internal ``_remaining`` list
    (single-use — exactly the statefulness bug the kernel policies fixed)."""

    order: Sequence[str]
    criterion: Callable[[Task], tuple[float, str]]
    name: str = "corrected"

    def __post_init__(self) -> None:
        self._remaining = list(self.order)

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        by_name = {task.name: task for task in candidates}
        while self._remaining and self._remaining[0] in state.scheduled:
            self._remaining.pop(0)
        if self._remaining and self._remaining[0] in by_name:
            chosen = by_name[self._remaining.pop(0)]
            return chosen
        filtered = minimum_idle_filter(candidates, state)
        chosen = min(filtered, key=self.criterion)
        if chosen.name in self._remaining:
            self._remaining.remove(chosen.name)
        return chosen


def reference_execute_with_policy(instance: Instance, policy) -> Schedule:
    """Seed ``execute_with_policy``: holder re-sum at every decision point."""
    capacity = instance.capacity
    for task in instance:
        if task.memory > capacity + TOLERANCE:
            raise InfeasibleOrderError(
                f"task {task.name!r} needs {task.memory:g} memory but capacity is {capacity:g}"
            )

    pending: dict[str, Task] = {t.name: t for t in instance.tasks}
    entries: list[ScheduledTask] = []
    comm_available = 0.0
    comp_available = 0.0
    holders: dict[str, tuple[float, float]] = {}
    time = 0.0

    slack = max(TOLERANCE, TOLERANCE * capacity) if math.isfinite(capacity) else TOLERANCE

    while pending:
        used = sum(amount for release, amount in holders.values() if release > time + TOLERANCE)
        available = capacity - used if math.isfinite(capacity) else math.inf
        candidates = [task for task in pending.values() if task.memory <= available + slack]

        if not candidates:
            future_releases = [
                release for release, _ in holders.values() if release > time + TOLERANCE
            ]
            if not future_releases:  # pragma: no cover - every task fits individually
                raise InfeasibleOrderError("deadlock: no task fits and no memory will be released")
            time = min(future_releases)
            continue

        state = ExecutionState(
            time=time,
            available_memory=available,
            comm_available=comm_available,
            comp_available=comp_available,
            scheduled=tuple(e.name for e in entries),
        )
        task = policy.select(candidates, state)

        comm_start = time
        comm_end = comm_start + task.comm
        comp_start = max(comm_end, comp_available)
        entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
        del pending[task.name]
        comm_available = comm_end
        comp_available = comp_start + task.comp
        holders[task.name] = (comp_available, task.memory)
        time = max(time, comm_available)

    return Schedule(entries)
