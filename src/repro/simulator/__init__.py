"""Schedule executors: static fixed-order, event-driven dynamic, and batched."""

from .batch import DEFAULT_BATCH_SIZE, execute_in_batches
from .dynamic_executor import (
    CorrectedOrderPolicy,
    CriterionPolicy,
    ExecutionState,
    SelectionPolicy,
    execute_with_policy,
    largest_communication,
    maximum_acceleration,
    smallest_communication,
)
from .static_executor import InfeasibleOrderError, execute_fixed_order, execute_two_orders

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "CorrectedOrderPolicy",
    "CriterionPolicy",
    "ExecutionState",
    "InfeasibleOrderError",
    "SelectionPolicy",
    "execute_fixed_order",
    "execute_in_batches",
    "execute_two_orders",
    "execute_with_policy",
    "largest_communication",
    "maximum_acceleration",
    "smallest_communication",
]
