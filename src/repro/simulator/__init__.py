"""Unified event-driven simulation kernel and its execution-mode wrappers.

Layout (kernel → policies → facade):

* :mod:`~repro.simulator.engine` — the single event loop (:func:`simulate`);
* :mod:`~repro.simulator.ledger` — incremental :class:`MemoryLedger`;
* :mod:`~repro.simulator.resources` — pluggable :class:`ResourceModel` /
  :class:`MachineModel` (parallel links, capacity overrides);
* :mod:`~repro.simulator.events` — structured :class:`EventTrace`;
* :mod:`~repro.simulator.policies` — fixed-order / dynamic / corrected
  policies;
* :mod:`~repro.simulator.arrivals` — arrival processes (Poisson, bursty,
  trace replay) stamping release dates onto task streams;
* :mod:`~repro.simulator.online` — the streaming runtime: online policy
  adapters, windowed (pipelined) policies and :func:`run_online`;
* :mod:`~repro.simulator.static_executor` / :mod:`~repro.simulator.dynamic_executor`
  — thin compatibility wrappers with the historical entry points;
* :mod:`~repro.simulator.batch` — Section 6.3 batched execution (barrier
  and pipelined modes, both on the kernel).
"""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    TraceReplayArrivals,
    resolve_arrivals,
)
from .batch import DEFAULT_BATCH_SIZE, execute_in_batches, simulate_in_batches
from .batched import (
    BATCH_AUTO_THRESHOLD,
    BatchedPlane,
    batched_supported,
    batched_unsupported_reason,
    simulate_batched,
    simulate_batched_outcomes,
)
from .columnar import (
    COLUMNAR_AUTO_THRESHOLD,
    ColumnarInstance,
    ColumnarSchedule,
    columnar_johnson_order,
    columnar_key_order,
    columnar_supported,
    columnar_view,
    resolve_engine,
    simulate_columnar,
    unsupported_reason,
)
from .dynamic_executor import execute_with_policy
from .engine import (
    DeadlockError,
    InfeasibleOrderError,
    SimulationResult,
    resolve_order,
    simulate,
)
from .events import EventKind, EventTrace, SimEvent
from .ledger import MemoryLedger
from .online import (
    OnlineCorrectedPolicy,
    OnlinePlanPolicy,
    WindowedCorrectedPolicy,
    WindowedCriterionPolicy,
    WindowedPlanPolicy,
    run_online,
)
from .policies import (
    CorrectedOrderPolicy,
    CriterionPolicy,
    ExecutionState,
    FixedOrderPolicy,
    SelectionPolicy,
    largest_communication,
    maximum_acceleration,
    minimum_idle_filter,
    smallest_communication,
)
from .resources import (
    DEFAULT_MACHINE,
    MachineModel,
    ParallelResource,
    ResourceModel,
    UnitResource,
)
from .static_executor import execute_fixed_order, execute_two_orders

__all__ = [
    "BATCH_AUTO_THRESHOLD",
    "COLUMNAR_AUTO_THRESHOLD",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MACHINE",
    "ArrivalProcess",
    "BatchedPlane",
    "BurstyArrivals",
    "ColumnarInstance",
    "ColumnarSchedule",
    "CorrectedOrderPolicy",
    "CriterionPolicy",
    "DeadlockError",
    "EventKind",
    "EventTrace",
    "ExecutionState",
    "FixedOrderPolicy",
    "InfeasibleOrderError",
    "MachineModel",
    "MemoryLedger",
    "OnlineCorrectedPolicy",
    "OnlinePlanPolicy",
    "ParallelResource",
    "PoissonArrivals",
    "ResourceModel",
    "SelectionPolicy",
    "SimEvent",
    "SimulationResult",
    "TraceReplayArrivals",
    "UnitResource",
    "WindowedCorrectedPolicy",
    "WindowedCriterionPolicy",
    "WindowedPlanPolicy",
    "batched_supported",
    "batched_unsupported_reason",
    "columnar_johnson_order",
    "columnar_key_order",
    "columnar_supported",
    "columnar_view",
    "execute_fixed_order",
    "execute_in_batches",
    "execute_two_orders",
    "execute_with_policy",
    "largest_communication",
    "maximum_acceleration",
    "minimum_idle_filter",
    "resolve_arrivals",
    "resolve_engine",
    "resolve_order",
    "run_online",
    "simulate",
    "simulate_batched",
    "simulate_batched_outcomes",
    "simulate_columnar",
    "simulate_in_batches",
    "smallest_communication",
    "unsupported_reason",
]
