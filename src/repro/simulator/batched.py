"""Batched columnar execution: many fixed-order lanes, one numpy step loop.

:mod:`repro.simulator.columnar` made a *single* run array-native, but its
scan is still a Python loop over that one instance's tasks — a sweep of
10^4 instances pays 10^4 kernel entries.  This module stacks a
*homogeneous group* of fixed-order runs ("lanes") into padded 2-D planes
(``(n_tasks_max, n_lanes)`` float64, one column per lane) and advances the
fixed-order recurrence **across all lanes per step**: each simulated step
executes a constant number of vectorized elementwise operations over the
whole lane axis instead of one Python iteration per lane per task.

Bit-identity is inherited, not re-proven
----------------------------------------
Every per-step expression is the elementwise image of the scalar
recurrence in :func:`repro.simulator.columnar._fixed_scan_single_link`
(and of the generic two-order loop for ``comp_order`` lanes): the same
floats meet the same operators in the same per-lane order, so each lane's
schedule is float-for-float the one ``simulate_columnar`` — and therefore
the object kernel — produces.  The one structural trick is *zombie
padding*: a lane that finishes early (ragged batch), is infeasible
upfront, or deadlocks mid-run keeps evolving on zero-cost padded tasks
with an infinite memory limit, so the hot loop needs no per-lane alive
mask; its outputs are discarded and its captured
:class:`~repro.simulator.engine.InfeasibleOrderError` /
:class:`~repro.simulator.engine.DeadlockError` — the kernel's own classes
with the kernel's exact messages — is re-raised (or returned) at unpack.

The release ledger vectorizes the same way: per lane, computation finish
times land in a column of a ``(n+1, n_lanes)`` plane (non-decreasing by
construction) and are consumed by an integer cursor vector; the drain and
memory-wait loops pop *one release per masked lane per iteration*, which
preserves each lane's exact pop order while amortising the Python-level
iteration across every lane that needs one.

Lanes with ``capacity == inf`` ride the same loop: their fit limits are
``+inf`` so the wait branch never fires, and the remaining arithmetic is
operand-for-operand the unconstrained chain.

Supported lanes are the sweep hot path: one link, one CPU, no release
dates, a :class:`~repro.simulator.policies.FixedOrderPolicy` (optionally
with the Proposition 1 ``comp_order`` second order), no event recording.
:func:`batched_unsupported_reason` reports why a run cannot join a batch;
the sweep engine (:mod:`repro.api.engine`) groups eligible lanes and
falls back per-instance for everything else.
"""

from __future__ import annotations

import gc
import math
from array import array
from contextlib import contextmanager
from typing import Sequence

import numpy as np

from ..core.instance import Instance
from ..core.task import Task
from ..core.validation import TOLERANCE
from ..obs import spans as _obs
from ..obs.stats import KernelStats
from .columnar import (
    ColumnarInstance,
    _columnar_schedule,
    _fixed_order_indices,
    columnar_view,
    unsupported_reason,
)
from .policies import FixedOrderPolicy, SelectionPolicy
from .resources import DEFAULT_MACHINE, MachineModel

__all__ = [
    "BatchedPlane",
    "BatchRun",
    "simulate_batched",
    "simulate_batched_outcomes",
    "batched_supported",
    "batched_unsupported_reason",
    "BATCH_AUTO_THRESHOLD",
]

#: ``engine="auto"`` batches a homogeneous sweep group at or above this many
#: lanes (combined with the columnar task-count threshold); below it the
#: per-lane numpy dispatch overhead beats the saved Python iterations.
BATCH_AUTO_THRESHOLD = 16

#: One run to batch: ``(instance, policy)`` or ``(instance, policy, comp_order)``.
BatchRun = tuple


@contextmanager
def _gc_paused():
    """Suspend the cyclic GC for a bounded batch operation.

    A wide pack/scan allocates plane buffers while the process may hold
    millions of tracked ``Task`` objects; each incidental generation-2
    collection then walks them all (measured: ~5x the entire pack cost at
    1024 lanes).  The batch itself creates no reference cycles, so pausing
    collection — not collection *tracking* — is safe and strictly bounded.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def batched_unsupported_reason(
    instance: Instance,
    policy: SelectionPolicy,
    *,
    machine: MachineModel | None = None,
    comp_order: Sequence[Task] | Sequence[str] | None = None,
    record: bool = False,
) -> str | None:
    """Why this run cannot join a batch plane, or ``None`` if it can.

    Batching is stricter than the columnar engine: only single-link
    machines and exact :class:`FixedOrderPolicy` lanes vectorize across
    the lane axis; anything else falls back to columnar/object per run.
    """
    machine = DEFAULT_MACHINE if machine is None else machine
    if machine.link_count != 1:
        return "multi-link machines run per-instance on the columnar/object kernels"
    if type(policy) is not FixedOrderPolicy:
        return "only fixed-order policies batch across lanes"
    return unsupported_reason(
        instance, policy, machine=machine, comp_order=comp_order, record=record
    )


def batched_supported(
    instance: Instance,
    policy: SelectionPolicy,
    *,
    machine: MachineModel | None = None,
    comp_order: Sequence[Task] | Sequence[str] | None = None,
    record: bool = False,
) -> bool:
    """Whether this run can be a :class:`BatchedPlane` lane."""
    return (
        batched_unsupported_reason(
            instance, policy, machine=machine, comp_order=comp_order, record=record
        )
        is None
    )


class _Lane:
    """Resolved per-lane inputs: view, placement order, optional comp order,
    capacity, and any upfront infeasibility captured at pack time."""

    __slots__ = ("view", "order", "comp_idx", "capacity", "error", "order_ix", "comp_ix")

    def __init__(self, view, order, comp_idx, capacity, error):
        self.view = view
        self.order = order
        self.comp_idx = comp_idx
        self.capacity = capacity
        self.error = error
        #: ``order``/``comp_idx`` as ``intp`` arrays, filled while staging:
        #: pack needs the arrays anyway, and unpack reuses them so the
        #: per-lane list→array conversion is paid once, not per output row.
        self.order_ix = None
        self.comp_ix = None


class BatchedPlane:
    """A packed group of homogeneous fixed-order runs.

    ``pack`` gathers each lane's columns into placement order and stacks
    them as ``(n_tasks_max, n_lanes)`` planes — C-order, so the per-step
    row slices the scan touches are contiguous.  Ragged lanes are padded
    with zero-cost tasks and ``+inf`` fit limits (see the module notes on
    zombie padding); upfront-infeasible lanes contribute an all-padding
    column and carry their error to unpack.
    """

    __slots__ = (
        "lanes",
        "n_steps",
        "comm_p",
        "comp_p",
        "mem_p",
        "fit_caps",
        "ledger_mask",
        "has_comp_order",
        "place_pos_p",
        "comp_dur_p",
        "mem_rel_p",
    )

    @classmethod
    def pack(
        cls, runs: Sequence[BatchRun], *, machine: MachineModel | None = None
    ) -> "BatchedPlane":
        with _gc_paused():
            return cls._pack(runs, machine)

    @classmethod
    def _pack(
        cls, runs: Sequence[BatchRun], machine: MachineModel | None
    ) -> "BatchedPlane":
        from .engine import InfeasibleOrderError, resolve_order

        machine = DEFAULT_MACHINE if machine is None else machine
        lanes: list[_Lane] = []
        for run in runs:
            instance, policy = run[0], run[1]
            comp_order = run[2] if len(run) > 2 else None
            reason = batched_unsupported_reason(
                instance, policy, machine=machine, comp_order=comp_order
            )
            if reason is not None:
                raise ValueError(f"batched engine cannot run this lane: {reason}")
            view = columnar_view(instance)
            order = _fixed_order_indices(view, policy)
            if order is None:
                raise ValueError(
                    "batched engine cannot run this lane: the fixed order "
                    "does not cover the instance's own tasks"
                )
            order_ix = None
            if not isinstance(order, range):
                # Cache the intp form on the (immutable) policy beside
                # ``_columnar_order`` — re-packing the same policy (racing,
                # benchmark reps) skips the list->array conversion.
                cached = getattr(policy, "_batched_order_ix", None)
                if cached is not None and cached[0] is order:
                    order_ix = cached[1]
                else:
                    order_ix = np.asarray(order, dtype=np.intp)
                    try:
                        object.__setattr__(
                            policy, "_batched_order_ix", (order, order_ix)
                        )
                    except AttributeError:  # pragma: no cover - slotted policy
                        pass
            comp_idx: list[int] | None = None
            if comp_order is not None:
                resolved = resolve_order(instance, comp_order)
                index = view.index
                comp_idx = [index[t.name] for t in resolved]
            capacity = machine.effective_capacity(instance.capacity)
            error: Exception | None = None
            # Upfront feasibility — same walk, same first offender, same
            # message as the scalar kernels; captured, not raised, so one
            # infeasible lane cannot sink its batch.
            if len(view) and math.isfinite(capacity):
                over = view.memory > capacity + TOLERANCE
                if bool(over.any()):
                    i = int(np.argmax(over))
                    error = InfeasibleOrderError(
                        f"task {view.names[i]!r} needs {view.memory_list[i]:g} "
                        f"memory but capacity is {capacity:g}"
                    )
            lane = _Lane(view, order, comp_idx, capacity, error)
            lane.order_ix = order_ix
            lanes.append(lane)

        plane = cls.__new__(cls)
        plane.lanes = lanes
        n_lanes = len(lanes)
        n_steps = max((len(lane.view) for lane in lanes if lane.error is None), default=0)
        plane.n_steps = n_steps
        plane.has_comp_order = any(
            lane.comp_idx is not None for lane in lanes if lane.error is None
        )
        # Stage lane-major: each lane fills a *contiguous row*, then one
        # transpose-copy per plane yields the step-major layout the scan
        # wants — far cheaper than 6 strided column writes per lane.
        comm_b = np.zeros((n_lanes, n_steps))
        comp_b = np.zeros((n_lanes, n_steps))
        mem_b = np.zeros((n_lanes, n_steps))
        # Per-lane fit ceiling (``capacity + slack``, ``inf`` when the lane
        # can never wait).  The scan derives each step's element-wise fit
        # limit as ``fit_caps - mem_p[t]`` — one broadcast subtract per step
        # instead of staging and transposing a whole limit plane.
        fit_caps = np.full(n_lanes, math.inf)
        ledger_mask = np.zeros(n_lanes, dtype=bool)
        if plane.has_comp_order:
            # Placement position of each lane's j-th computation; the
            # sentinel row (and value) keeps drained chains unready forever.
            pos_b = np.full((n_lanes, n_steps + 1), n_steps + 1, dtype=np.int64)
            cdur_b = np.zeros((n_lanes, n_steps))
            mrel_b = np.zeros((n_lanes, n_steps))
        for l, lane in enumerate(lanes):
            if lane.error is not None:
                continue  # all-padding zombie column
            view = lane.view
            n = len(view)
            if n == 0:
                continue
            order = lane.order
            identity = isinstance(order, range)
            if identity:
                comm_b[l, :n] = view.comm
                comp_b[l, :n] = view.comp
                mem_g = view.memory
            else:
                order_np = lane.order_ix
                if order_np is None:
                    order_np = np.asarray(order, dtype=np.intp)
                    lane.order_ix = order_np
                comm_b[l, :n] = view.comm[order_np]
                comp_b[l, :n] = view.comp[order_np]
                mem_g = view.memory[order_np]
            mem_b[l, :n] = mem_g
            capacity = lane.capacity
            if math.isfinite(capacity):
                slack = max(TOLERANCE, TOLERANCE * capacity)
                fit_caps[l] = capacity + slack
                ledger_mask[l] = True
            if plane.has_comp_order:
                if lane.comp_idx is None:
                    pos_b[l, :n] = np.arange(n)
                    cdur_b[l, :n] = comp_b[l, :n]
                    mrel_b[l, :n] = mem_b[l, :n]
                else:
                    seq_np = np.asarray(lane.comp_idx, dtype=np.intp)
                    lane.comp_ix = seq_np
                    inv = np.empty(n, dtype=np.int64)
                    if identity:
                        order_np = np.arange(n, dtype=np.intp)
                    inv[order_np] = np.arange(n)
                    pos_b[l, :n] = inv[seq_np]
                    cdur_b[l, :n] = view.comp[seq_np]
                    mrel_b[l, :n] = view.memory[seq_np]
                # Zombie rows chain identity computations after the lane ends.
                pos_b[l, n : n_steps] = np.arange(n, n_steps)
        plane.comm_p = np.ascontiguousarray(comm_b.T)
        plane.comp_p = np.ascontiguousarray(comp_b.T)
        plane.mem_p = np.ascontiguousarray(mem_b.T)
        plane.fit_caps = fit_caps
        plane.ledger_mask = ledger_mask
        if plane.has_comp_order:
            plane.place_pos_p = np.ascontiguousarray(pos_b.T)
            plane.comp_dur_p = np.ascontiguousarray(cdur_b.T)
            plane.mem_rel_p = np.ascontiguousarray(mrel_b.T)
        else:
            plane.place_pos_p = None
            plane.comp_dur_p = None
            plane.mem_rel_p = plane.mem_p  # releases in placement order
        return plane

    def run(self) -> list:
        """Advance every lane to completion; one outcome per lane, in lane
        order — a :class:`~repro.simulator.engine.SimulationResult` or the
        lane's captured kernel error."""
        with _gc_paused():
            return self._run()

    def _run(self) -> list:
        from .engine import SimulationResult

        traced = _obs.is_enabled()
        run_started = _obs.now() if traced else 0.0
        if self.has_comp_order:
            comm_plane, comp_plane, mw, errors = self._scan_general()
        else:
            comm_plane, comp_plane, mw, errors = self._scan_plain()
        # Lane-major copies: unpack pulls one lane at a time, and a column
        # walk over the step-major planes touches a cache line per element.
        comm_t = np.ascontiguousarray(comm_plane.T)
        comp_t = np.ascontiguousarray(comp_plane.T)
        outcomes: list = []
        for l, lane in enumerate(self.lanes):
            error = lane.error if lane.error is not None else errors.get(l)
            if error is not None:
                outcomes.append(error)
                continue
            view = lane.view
            n = len(view)
            order_key = lane.order if lane.order_ix is None else lane.order_ix
            comm_starts = _scatter_column(order_key, n, comm_t[l, :n])
            if lane.comp_idx is None:
                comp_key = order_key
            else:
                comp_key = lane.comp_idx if lane.comp_ix is None else lane.comp_ix
            comp_starts = _scatter_column(comp_key, n, comp_t[l, :n])
            stats = KernelStats(
                engine="batched",
                tasks=n,
                events=6 * n,
                memory_wait_s=float(mw[l]),
                ledger_ops=2 * n,
            )
            outcomes.append(
                SimulationResult(
                    schedule=_columnar_schedule(view, lane.order, comm_starts, comp_starts),
                    trace=None,
                    engine="batched",
                    stats=stats,
                )
            )
        if traced:
            _obs.record_span(
                "batched.scan",
                run_started,
                _obs.now(),
                lanes=len(self.lanes),
                steps=self.n_steps,
                mode="two-order" if self.has_comp_order else "fixed",
            )
        return outcomes

    # ----------------------------------------------------------------- #
    # The scans
    # ----------------------------------------------------------------- #
    def _scan_plain(self):
        """All-lanes step loop for plain fixed-order lanes (computations in
        placement order).  Elementwise image of
        ``columnar._fixed_scan_single_link`` — see the module docstring.

        Two structural facts keep the per-step op count minimal:

        * ``time == link_avail`` at the top of every step: each placement
          commits ``link_avail = start + c`` with ``start >= time``, and the
          scalar kernel opens the next step with ``time = max(time,
          link_avail)``.  The clock therefore never needs its own array —
          ``link_avail`` *is* the clock, and the transfer-start row is a
          plain copy (``max(start_at, link_avail) == start_at`` whenever a
          wait fired, because popped releases sit beyond the horizon).
        * Lanes that can never wait (infinite capacity, upfront-infeasible
          zombies) park their ledger cursor on the sentinel always-``inf``
          row, so their ``next_release`` stays ``+inf`` and every drain /
          wait mask excludes them with no per-step masking cost.

        The ledger cursor is kept *flattened* (``row * n_lanes + lane``) so
        every ledger read is a single flat ``np.take`` into a preallocated
        buffer instead of 2-D advanced indexing; all per-step temporaries
        are preallocated — the loop body allocates nothing.
        """
        n_steps = self.n_steps
        n_lanes = len(self.lanes)
        comm_p = self.comm_p
        comp_p = self.comp_p
        mem_p = self.mem_p
        fit_caps = self.fit_caps
        inf = math.inf

        comm_plane = np.empty((n_steps, n_lanes))
        comp_plane = np.empty((n_steps, n_lanes))
        mw = np.zeros(n_lanes)
        errors: dict[int, Exception] = {}
        link_avail = np.zeros(n_lanes)
        cpu_avail = np.zeros(n_lanes)

        ledger_mask = self.ledger_mask
        if not ledger_mask.any():
            # No lane can ever wait: the whole batch is the unconstrained
            # chain — four vector ops per step, no ledger at all.  (Same
            # floats: with ``limit == +inf`` the fit checks never fire and
            # ``used`` is never read, so skipping them is unobservable.)
            for t in range(n_steps):
                np.copyto(comm_plane[t], link_avail)
                np.add(comm_plane[t], comm_p[t], link_avail)
                np.maximum(link_avail, cpu_avail, out=comp_plane[t])
                np.add(comp_plane[t], comp_p[t], cpu_avail)
            return comm_plane, comp_plane, mw, errors

        mem_flat = mem_p.ravel()
        rel_p = np.full((n_steps + 1, n_lanes), inf)
        rel_flat = rel_p.ravel()
        used = np.zeros(n_lanes)
        #: ``next_release[l] == rel_flat[cursor_f[l]]`` is a loop invariant:
        #: un-chained rows hold ``inf``, so the cache equals the scalar
        #: kernel's ``rel_time[rel_cursor] if rel_cursor < rel_count else inf``
        #: and refreshing it is always one unmasked flat take.
        next_release = np.full(n_lanes, inf)
        #: flat ledger cursor: starts at row 0, advances a whole row per pop.
        cursor_f = np.arange(n_lanes)
        if not ledger_mask.all():
            cursor_f[~ledger_mask] += n_steps * n_lanes  # park on sentinel row

        # Below this many masked lanes a vector iteration costs more than
        # finishing the stragglers with scalar pops (measured crossover —
        # roughly width-independent: wider vector ops cost more, but the
        # scalar per-lane cost is constant).
        scalar_cutoff = min(16, n_lanes)
        horizon = np.empty(n_lanes)
        limit = np.empty(n_lanes)
        start_at = np.empty(n_lanes)
        diff = np.empty(n_lanes)
        gather = np.empty(n_lanes)
        ibuf = np.empty(n_lanes, dtype=np.int64)
        dmask = np.empty(n_lanes, dtype=bool)
        wmask = np.empty(n_lanes, dtype=bool)
        m2 = np.empty(n_lanes, dtype=bool)
        count_nonzero = np.count_nonzero
        mem_item = mem_flat.item
        rel_item = rel_flat.item

        for t in range(n_steps):
            np.add(link_avail, TOLERANCE, horizon)
            # Drain: one release popped per masked lane per iteration — the
            # scalar ledger's exact pop order, amortised across every lane
            # that needs one.  Masked-out lanes subtract an exact 0.0
            # (bit-preserving), which keeps every op on the ufunc fast path.
            np.less_equal(next_release, horizon, dmask)
            pending = count_nonzero(dmask)
            while pending >= scalar_cutoff:
                mem_flat.take(cursor_f, None, gather)
                np.multiply(gather, dmask, gather)
                np.subtract(used, gather, used)
                np.multiply(dmask, n_lanes, ibuf)
                np.add(cursor_f, ibuf, cursor_f)
                rel_flat.take(cursor_f, None, next_release)
                np.less_equal(next_release, horizon, dmask)
                pending = count_nonzero(dmask)
            if pending:
                # Straggler lanes: finish their pops at scalar speed (plain
                # C doubles — the identical arithmetic, without paying a
                # full-width vector op per leftover pop).
                for lane in np.flatnonzero(dmask).tolist():
                    h = horizon.item(lane)
                    u = used.item(lane)
                    cf = int(cursor_f[lane])
                    nr = next_release.item(lane)
                    while nr <= h:
                        u -= mem_item(cf)
                        cf += n_lanes
                        nr = rel_item(cf)
                    used[lane] = u
                    cursor_f[lane] = cf
                    next_release[lane] = nr
            # Derived fit limit for this row (``capacity + slack - mem``);
            # same floats the staged plane held.  Padding steps read
            # ``fit_caps`` itself (``mem == 0``), which never fires: ``used``
            # can only reach ``capacity + slack`` and ``>`` is strict.
            np.subtract(fit_caps, mem_p[t], limit)
            np.greater(used, limit, wmask)
            waiting = count_nonzero(wmask)
            patches = None
            if waiting and waiting < scalar_cutoff:
                # Few waiters: resolve them at scalar speed and patch their
                # transfer starts into the committed row afterwards — no
                # full-width ``start_at`` materialisation, no moved-mask.
                patches = []
                row_f = t * n_lanes
                for lane in np.flatnonzero(wmask).tolist():
                    u = used.item(lane)
                    lim = limit.item(lane)
                    cf = int(cursor_f[lane])
                    nr = next_release.item(lane)
                    dead_f = row_f + lane
                    while True:
                        if cf == dead_f:  # ledger drained: deadlock
                            self._deadlock(lane, t, errors)
                            break
                        release = nr
                        u -= mem_item(cf)
                        cf += n_lanes
                        nr = rel_item(cf)
                        if u <= lim:
                            # Popped releases sit beyond the horizon, so the
                            # start strictly moved: accrue the wait now.
                            mw[lane] += release - link_avail.item(lane)
                            patches.append((lane, release))
                            break
                    used[lane] = u
                    cursor_f[lane] = cf
                    next_release[lane] = nr
                start = link_avail
            elif waiting:
                np.copyto(start_at, link_avail)
                row_f = t * n_lanes
                while waiting >= scalar_cutoff:
                    # A drained ledger that still does not fit is the
                    # kernel's deadlock; capture and zombie the lane.
                    np.equal(cursor_f, row_f, m2)
                    m2 &= wmask
                    if m2.any():
                        for lane in np.flatnonzero(m2).tolist():
                            self._deadlock(lane, t, errors)
                        wmask ^= m2
                        waiting = count_nonzero(wmask)
                        if not waiting:
                            break
                    np.copyto(diff, next_release)  # release instant, pre-pop
                    mem_flat.take(cursor_f, None, gather)
                    np.multiply(gather, wmask, gather)
                    np.subtract(used, gather, used)
                    np.multiply(wmask, n_lanes, ibuf)
                    np.add(cursor_f, ibuf, cursor_f)
                    rel_flat.take(cursor_f, None, next_release)
                    np.less_equal(used, limit, m2)
                    m2 &= wmask
                    np.copyto(start_at, diff, where=m2)
                    wmask ^= m2  # fitted lanes leave the wait set
                    waiting = count_nonzero(wmask)
                if waiting:
                    for lane in np.flatnonzero(wmask).tolist():
                        u = used.item(lane)
                        lim = limit.item(lane)
                        cf = int(cursor_f[lane])
                        nr = next_release.item(lane)
                        dead_f = row_f + lane
                        while True:
                            if cf == dead_f:  # ledger drained: deadlock
                                self._deadlock(lane, t, errors)
                                break
                            release = nr
                            u -= mem_item(cf)
                            cf += n_lanes
                            nr = rel_item(cf)
                            if u <= lim:
                                start_at[lane] = release
                                break
                        used[lane] = u
                        cursor_f[lane] = cf
                        next_release[lane] = nr
                np.greater(start_at, link_avail, m2)
                if m2.any():
                    np.subtract(start_at, link_avail, diff)
                    np.add(mw, diff, out=mw, where=m2)
                start = start_at
            else:
                start = link_avail  # no waits: the start row is the clock
            # Placement: start/end/compute chain, committed row-wise.  The
            # release row doubles as next step's ``cpu_avail`` (same values,
            # contiguous row view) — one write instead of two.
            np.copyto(comm_plane[t], start)
            if patches:
                row = comm_plane[t]
                for lane, moved_start in patches:
                    row[lane] = moved_start
            np.add(comm_plane[t], comm_p[t], link_avail)
            np.add(used, mem_p[t], used)
            np.maximum(link_avail, cpu_avail, out=comp_plane[t])
            rel_row = rel_p[t]
            np.add(comp_plane[t], comp_p[t], rel_row)
            cpu_avail = rel_row
            # Lanes whose cursor sits on the just-written row see the new
            # release; everyone else re-reads their unchanged cache.
            rel_flat.take(cursor_f, None, next_release)
        return comm_plane, comp_plane, mw, errors

    def _deadlock(self, lane: int, t: int, errors: dict) -> None:
        """Capture the lane's kernel-exact deadlock and zombie its column."""
        from .engine import DeadlockError

        view = self.lanes[lane].view
        i = self.lanes[lane].order[t]
        errors[lane] = DeadlockError(
            f"task {view.names[i]!r} can never acquire its memory"
        )
        # The lane never waits again: every future derived limit is +inf.
        # (The current step's limit row is left as-is — the caller drops the
        # lane from the wait mask, so that element is never read again.)
        self.fit_caps[lane] = math.inf

    def _scan_general(self):
        """Step loop for batches containing two-order (``comp_order``)
        lanes: the computation chain advances per lane as transfers land,
        mirroring the generic loop of ``columnar._fixed_order_scan``."""
        from .engine import DeadlockError

        n_steps = self.n_steps
        n_lanes = len(self.lanes)
        comm_p = self.comm_p
        mem_p = self.mem_p
        fit_caps = self.fit_caps
        place_pos_p = self.place_pos_p
        comp_dur_p = self.comp_dur_p
        mem_rel_p = self.mem_rel_p
        inf = math.inf

        comm_plane = np.empty((n_steps, n_lanes))
        end_plane = np.empty((n_steps, n_lanes))
        comp_plane = np.empty((n_steps, n_lanes))  # indexed by comp step
        rel_p = np.full((n_steps + 1, n_lanes), inf)

        time = np.zeros(n_lanes)
        link_avail = np.zeros(n_lanes)
        cpu_avail = np.zeros(n_lanes)
        used = np.zeros(n_lanes)
        mw = np.zeros(n_lanes)
        cursor = np.zeros(n_lanes, dtype=np.int64)
        cc = np.zeros(n_lanes, dtype=np.int64)  # per-lane computations chained
        next_release = np.full(n_lanes, inf)
        lanes_ix = np.arange(n_lanes)

        horizon = np.empty(n_lanes)
        limit = np.empty(n_lanes)
        start_at = np.empty(n_lanes)
        diff = np.empty(n_lanes)
        dmask = np.empty(n_lanes, dtype=bool)
        wmask = np.empty(n_lanes, dtype=bool)
        m2 = np.empty(n_lanes, dtype=bool)
        errors: dict[int, Exception] = {}

        for t in range(n_steps):
            c = comm_p[t]
            m = mem_p[t]
            np.subtract(fit_caps, m, out=limit)  # derived fit limit row
            np.maximum(time, link_avail, out=time)
            np.add(time, TOLERANCE, out=horizon)
            np.less_equal(next_release, horizon, out=dmask)
            while dmask.any():
                np.subtract(used, mem_rel_p[cursor, lanes_ix], out=used, where=dmask)
                np.add(cursor, 1, out=cursor, where=dmask)
                np.copyto(next_release, rel_p[cursor, lanes_ix], where=dmask)
                np.less_equal(next_release, horizon, out=dmask)
            np.copyto(start_at, time)
            np.greater(used, limit, out=wmask)
            if wmask.any():
                while True:
                    np.equal(cursor, cc, out=m2)
                    m2 &= wmask
                    if m2.any():
                        for lane in np.flatnonzero(m2):
                            lane = int(lane)
                            view = self.lanes[lane].view
                            i = self.lanes[lane].order[t]
                            errors[lane] = DeadlockError(
                                f"task {view.names[i]!r} can never acquire its memory"
                            )
                            fit_caps[lane] = inf  # never waits again
                        wmask &= ~m2
                    if not wmask.any():
                        break
                    np.copyto(diff, next_release)
                    np.subtract(used, mem_rel_p[cursor, lanes_ix], out=used, where=wmask)
                    np.add(cursor, 1, out=cursor, where=wmask)
                    np.copyto(next_release, rel_p[cursor, lanes_ix], where=wmask)
                    fitted = wmask & (used <= limit)
                    np.copyto(start_at, diff, where=fitted)
                    wmask &= ~fitted
                moved = start_at > time
                if moved.any():
                    np.subtract(start_at, time, out=diff)
                    np.add(mw, diff, out=mw, where=moved)
                    np.copyto(time, start_at, where=moved)
            np.maximum(start_at, link_avail, out=comm_plane[t])
            np.add(comm_plane[t], c, out=link_avail)
            end_plane[t] = link_avail
            np.add(used, m, out=used)
            # Chain every computation whose transfer has landed, one per
            # ready lane per round — the generic loop's exact order.
            while True:
                pp = place_pos_p[cc, lanes_ix]
                ready = pp <= t
                if not ready.any():
                    break
                idx = np.flatnonzero(ready)
                rows = cc[idx]
                te = end_plane[pp[idx], idx]
                cs = np.maximum(te, cpu_avail[idx])
                ce = cs + comp_dur_p[rows, idx]
                comp_plane[rows, idx] = cs
                rel_p[rows, idx] = ce
                cpu_avail[idx] = ce
                refresh = cursor[idx] == rows
                next_release[idx[refresh]] = ce[refresh]
                cc[idx] += 1
        return comm_plane, comp_plane, mw, errors


def _scatter_column(order, n: int, column: np.ndarray) -> "array[float]":
    """One lane's per-step outputs scattered back to task positions as
    ``array('d')`` — reads hand back plain Python floats, exactly like the
    single-run columnar unpack."""
    out = array("d", bytes(8 * n))
    if isinstance(order, range):
        np.frombuffer(out)[:] = column
    else:
        if not isinstance(order, np.ndarray):
            order = np.asarray(order, dtype=np.intp)
        np.frombuffer(out)[order] = column
    return out


def simulate_batched_outcomes(
    runs: Sequence[BatchRun], *, machine: MachineModel | None = None
) -> list:
    """Pack ``runs`` into one plane and simulate; per-lane outcomes in lane
    order (each a ``SimulationResult`` or the lane's captured kernel
    error).  Raises :class:`ValueError` when any run cannot batch — use
    :func:`batched_supported` / the sweep grouping to pre-filter."""
    if not runs:
        return []
    return BatchedPlane.pack(runs, machine=machine).run()


def simulate_batched(
    runs: Sequence[BatchRun], *, machine: MachineModel | None = None
) -> list:
    """Like :func:`simulate_batched_outcomes`, but re-raises the first
    failed lane's error (in lane order) — the behaviour of running the
    lanes serially through ``simulate_columnar``."""
    outcomes = simulate_batched_outcomes(runs, machine=machine)
    for outcome in outcomes:
        if isinstance(outcome, Exception):
            raise outcome
    return outcomes
