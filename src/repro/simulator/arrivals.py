"""Arrival processes: release-date generators for streaming workloads.

The paper's offline model hands the scheduler every task up front; real
runtime systems observe tasks *arriving over time*.  An
:class:`ArrivalProcess` maps a task stream to absolute, non-decreasing
release dates, which the streaming runtime (:mod:`repro.simulator.online`)
and the ``arrivals=`` engine option of :func:`repro.solve` stamp onto the
instance.

Three processes cover the usual regimes:

* :class:`PoissonArrivals` — memoryless submission at a target ``load``
  (exponential inter-arrival gaps);
* :class:`BurstyArrivals` — on/off submission: dense bursts separated by
  idle gaps (application phases, collective boundaries);
* :class:`TraceReplayArrivals` — inter-arrival gaps inferred from the trace
  itself: the original run issued task ``k`` when task ``k-1`` finished, so
  the gaps are the recorded per-task service times, optionally compressed.

All processes are deterministic given their seed-derived RNG; the sweep
engine derives one RNG per trace so capacity sweeps reuse identical
arrival patterns across factors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from ..core.task import Task

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceReplayArrivals",
    "resolve_arrivals",
]


@runtime_checkable
class ArrivalProcess(Protocol):
    """Maps a task stream to absolute release dates (one per task, in order)."""

    name: str

    def sample(self, rng: np.random.Generator, tasks: Sequence[Task]) -> list[float]:
        """Non-decreasing release dates aligned with the submission order."""
        ...


def _mean_gap(tasks: Sequence[Task], load: float) -> float:
    """Mean inter-arrival gap hitting ``load`` relative to the busiest resource.

    ``load == 1`` spreads the arrivals over the instance's resource lower
    bound (``max(sum comm, sum comp)``): the submission rate just keeps the
    machine fed.  ``load > 1`` over-subscribes (queues build up), ``load < 1``
    starves the machine.
    """
    if load <= 0:
        raise ValueError(f"load must be positive, got {load}")
    if not tasks:
        return 0.0
    span = max(sum(t.comm for t in tasks), sum(t.comp for t in tasks))
    if span <= 0:
        return 0.0
    return span / (load * len(tasks))


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals: exponential inter-arrival gaps at a target load.

    Parameters
    ----------
    load:
        Submission pressure relative to the busiest resource (see
        ``_mean_gap``); 1.0 keeps the machine exactly fed on average.
    rate:
        Explicit arrival rate (tasks per unit time).  Overrides ``load``
        when given.
    """

    load: float = 1.0
    rate: float | None = None
    name: str = "poisson"

    def sample(self, rng: np.random.Generator, tasks: Sequence[Task]) -> list[float]:
        if not tasks:
            return []
        if self.rate is not None:
            if self.rate <= 0:
                raise ValueError(f"rate must be positive, got {self.rate}")
            mean = 1.0 / self.rate
        else:
            mean = _mean_gap(tasks, self.load)
        gaps = rng.exponential(mean, size=len(tasks)) if mean > 0 else np.zeros(len(tasks))
        times = np.cumsum(gaps)
        times -= times[0]  # first task arrives at t=0: the run starts immediately
        return [float(t) for t in times]


@dataclass(frozen=True)
class BurstyArrivals:
    """On/off arrivals: bursts of back-to-back tasks separated by idle gaps.

    Parameters
    ----------
    burst_size:
        Mean number of tasks per burst (geometric burst lengths).
    load:
        Long-run submission pressure, as in :class:`PoissonArrivals`; the
        idle gaps absorb the time the bursts save.
    within_fraction:
        Fraction of the mean gap kept *inside* a burst (0 = truly
        back-to-back, 1 = no burstiness at all).
    """

    burst_size: int = 10
    load: float = 1.0
    within_fraction: float = 0.05
    name: str = "bursty"

    def sample(self, rng: np.random.Generator, tasks: Sequence[Task]) -> list[float]:
        if self.burst_size < 1:
            raise ValueError(f"burst_size must be at least 1, got {self.burst_size}")
        if not 0 <= self.within_fraction <= 1:
            raise ValueError(
                f"within_fraction must be in [0, 1], got {self.within_fraction}"
            )
        if not tasks:
            return []
        mean = _mean_gap(tasks, self.load)
        within = mean * self.within_fraction
        # Idle gaps between bursts restore the long-run rate: a burst of b
        # tasks must span b * mean on average, and its b-1 within-gaps only
        # cover (b-1) * within — the leading off-gap repays the difference.
        off = self.burst_size * (mean - within) + within
        times: list[float] = []
        clock = 0.0
        remaining = 0
        for _ in tasks:
            if remaining == 0:
                remaining = int(rng.geometric(1.0 / self.burst_size))  # mean burst_size, >= 1
                if times:  # no leading idle gap before the very first burst
                    clock += float(rng.exponential(off)) if off > 0 else 0.0
            elif within > 0:
                clock += float(rng.exponential(within))
            times.append(clock)
            remaining -= 1
        return times


@dataclass(frozen=True)
class TraceReplayArrivals:
    """Replay the trace's own submission cadence.

    The instrumented application issued its tasks sequentially: task ``k``
    was submitted when task ``k-1``'s transfer and computation had finished.
    The inferred inter-arrival gap is therefore the previous task's recorded
    service time (``comm + comp``), divided by ``speedup`` to model a faster
    producer re-running the same trace.
    """

    speedup: float = 1.0
    name: str = "trace-replay"

    def sample(self, rng: np.random.Generator, tasks: Sequence[Task]) -> list[float]:
        if self.speedup <= 0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")
        times: list[float] = []
        clock = 0.0
        for task in tasks:
            times.append(clock)
            clock += (task.comm + task.comp) / self.speedup
        return times


def resolve_arrivals(
    spec: "ArrivalProcess | Mapping[str, float] | Sequence[float]",
    tasks: Sequence[Task],
    *,
    seed: int = 0,
) -> dict[str, float]:
    """Resolve an arrivals spec into a ``{task name: release date}`` mapping.

    ``spec`` may be an :class:`ArrivalProcess` (sampled with a
    ``default_rng(seed)``), a ready-made mapping (validated against the task
    names), or a sequence of dates aligned with the submission order.
    """
    if isinstance(spec, Mapping):
        names = {t.name for t in tasks}
        unknown = sorted(set(spec) - names)
        if unknown:
            raise ValueError(f"arrival mapping names unknown tasks: {unknown}")
        for date in spec.values():
            if not (math.isfinite(date) and date >= 0):
                raise ValueError(f"release dates must be finite and >= 0, got {date}")
        return {name: float(date) for name, date in spec.items()}
    if isinstance(spec, ArrivalProcess):
        rng = np.random.default_rng(seed)
        times = spec.sample(rng, tasks)
    else:
        times = [float(t) for t in spec]
    if len(times) != len(tasks):
        raise ValueError(f"expected {len(tasks)} release dates, got {len(times)}")
    for date in times:
        if not (math.isfinite(date) and date >= 0):
            raise ValueError(f"release dates must be finite and >= 0, got {date}")
    return {task.name: float(date) for task, date in zip(tasks, times)}
