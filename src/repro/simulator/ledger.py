"""Incremental memory ledger: amortised O(log n) acquire/release/fit queries.

The seed executors re-summed every memory holder at every decision point,
making both execution engines O(n²) in the number of tasks (multiplied across
every capacity factor of a ``Study`` sweep).  :class:`MemoryLedger` replaces
the re-sum with a running usage counter plus a min-heap of release events:
advancing the clock pops due releases, and a feasibility probe walks each
release event at most once over the whole run.

Semantics are pinned byte-for-byte against the seed executors (see
``tests/simulator/test_kernel_crosscheck.py``):

* a holder with a known ``release`` time frees its memory as soon as the
  clock reaches ``release`` (within the feasibility tolerance);
* a holder acquired with ``release=None`` — its computation is not placed
  yet, so its release instant is unknown — holds its memory indefinitely
  until :meth:`MemoryLedger.set_release` attaches one;
* the feasibility slack scales with the capacity, matching
  ``check_schedule``'s peak-memory test: byte-scale amounts leave float dust
  far above an absolute ``1e-9``.
"""

from __future__ import annotations

import heapq
import math

from ..core.validation import TOLERANCE

__all__ = ["MemoryLedger"]


class MemoryLedger:
    """Running memory account of one simulation run.

    The ledger only ever moves forward in time: once :meth:`advance` or
    :meth:`earliest_fit` has consumed a release event, that event can never
    matter again (memory usage is non-increasing while the link idles), which
    is what makes the destructive heap walk correct.
    """

    __slots__ = ("capacity", "slack", "_finite", "_used", "_heap", "_deferred", "_time")

    def __init__(self, capacity: float) -> None:
        self.capacity = float(capacity)
        self._finite = math.isfinite(self.capacity)
        self.slack = max(TOLERANCE, TOLERANCE * self.capacity) if self._finite else TOLERANCE
        self._used = 0.0
        #: (release time, amount) for holders whose computation is placed.
        self._heap: list[tuple[float, float]] = []
        #: Total amount held by tasks whose release instant is not known yet.
        self._deferred = 0.0
        self._time = 0.0

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def time(self) -> float:
        """Clock of the last advance/fit query."""
        return self._time

    @property
    def used(self) -> float:
        """Memory currently held (deferred holders included)."""
        return self._used

    @property
    def available(self) -> float:
        """Capacity minus current usage (infinite for unconstrained runs)."""
        if not self._finite:
            return math.inf
        return self.capacity - self._used

    def headroom(self) -> float:
        """Largest amount that currently fits, feasibility slack included."""
        if not self._finite:
            return math.inf
        return self.capacity + self.slack - self._used

    def fits(self, amount: float) -> bool:
        """Whether ``amount`` more memory fits right now."""
        return not self._finite or self._used + amount <= self.capacity + self.slack

    def next_release(self) -> float | None:
        """Earliest pending release instant, or ``None`` when only deferred
        holders (or nothing) remain."""
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def acquire(self, amount: float, release: float | None = None) -> None:
        """Hold ``amount`` memory until ``release`` (``None``: not known yet)."""
        self._used += amount
        if release is None:
            self._deferred += amount
        else:
            heapq.heappush(self._heap, (release, amount))

    def set_release(self, amount: float, release: float) -> None:
        """Attach a release instant to ``amount`` of previously deferred memory."""
        self._deferred -= amount
        heapq.heappush(self._heap, (release, amount))

    def advance(self, time: float) -> None:
        """Move the clock to ``time``, freeing every release due by then."""
        heap = self._heap
        horizon = time + TOLERANCE
        while heap and heap[0][0] <= horizon:
            self._used -= heapq.heappop(heap)[1]
        if time > self._time:
            self._time = time

    def earliest_fit(self, ready_time: float, amount: float) -> float:
        """Earliest ``t >= ready_time`` at which ``amount`` more memory fits.

        Memory usage is non-increasing after ``ready_time`` (the link idles
        until the returned instant), so it suffices to test ``ready_time``
        and each release instant in order.  Releases due by the returned time
        are consumed.  Returns ``math.inf`` when only deferred holders remain
        and the amount still does not fit — the run has deadlocked.
        """
        self.advance(ready_time)
        if not self._finite:
            return ready_time
        limit = self.capacity + self.slack - amount
        if self._used <= limit:
            return ready_time
        heap = self._heap
        while heap:
            release, held = heapq.heappop(heap)
            self._used -= held
            if self._used <= limit:
                if release > self._time:
                    self._time = release
                return release
        return math.inf

    def earliest_fit_before(
        self, ready_time: float, amount: float, horizon: float
    ) -> float | None:
        """Bounded :meth:`earliest_fit`: probe only up to ``horizon``.

        Returns the earliest ``t`` in ``[ready_time, horizon]`` at which
        ``amount`` more memory fits, or ``None`` when no release due by
        ``horizon`` frees enough.  Only releases due by ``horizon`` are
        consumed, so a caller that then advances the clock to ``horizon``
        (the streaming runtime jumping to the next arrival) keeps the
        account consistent — nothing beyond the horizon is ever popped.
        """
        self.advance(ready_time)
        if not self._finite:
            return ready_time
        limit = self.capacity + self.slack - amount
        if self._used <= limit:
            return ready_time
        heap = self._heap
        bound = horizon + TOLERANCE
        while heap and heap[0][0] <= bound:
            release, held = heapq.heappop(heap)
            self._used -= held
            if self._used <= limit:
                if release > self._time:
                    self._time = release
                return release
        return None
