"""Scheduling policies: every execution mode of the paper over one kernel.

The unified kernel (:mod:`repro.simulator.engine`) asks a policy which task
to transfer next; everything else — memory accounting, resource timelines,
event emission — is shared.  The paper's three execution modes map to three
policies:

* :class:`FixedOrderPolicy` — static heuristics (Section 4.1) and baselines:
  transfer the tasks in a precomputed order, idling the link until the next
  task's memory fits;
* :class:`CriterionPolicy` — dynamic selection (Section 4.2): among the tasks
  that currently fit, keep those inducing the minimum idle time on the
  computation resource and break ties with a criterion;
* :class:`CorrectedOrderPolicy` — static order with dynamic corrections
  (Section 4.3): follow a precomputed order while its next task fits, fall
  back to a dynamic criterion otherwise.

Policies are immutable; any run-local state (order cursors) lives in the
``scratch`` mapping of the :class:`ExecutionState`, which the engine creates
fresh for every run.  One policy object can therefore drive many runs — even
concurrently — without cross-talk (the seed ``CorrectedOrderPolicy`` consumed
an internal ``_remaining`` list and silently produced wrong schedules on
reuse; see ``tests/simulator/test_engine.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, ClassVar, MutableMapping, Protocol, Sequence

from ..core.task import Task
from ..core.validation import TOLERANCE

__all__ = [
    "ExecutionState",
    "SelectionPolicy",
    "FixedOrderPolicy",
    "CriterionPolicy",
    "CorrectedOrderPolicy",
    "minimum_idle_filter",
    "largest_communication",
    "smallest_communication",
    "maximum_acceleration",
]


@dataclass(frozen=True, slots=True)
class ExecutionState:
    """Snapshot handed to selection policies at each decision point.

    ``scratch`` is a mutable mapping owned by the engine and shared across
    all decision points of one run; policies keep run-local state (cursors,
    caches) there instead of on themselves, so a policy object can be reused
    across runs safely.

    ``ready`` and ``arrivals_fired`` expose the streaming view: the tasks
    that have arrived but whose transfer is not yet placed, and how many
    release dates have fired so far.  Offline runs leave them at their
    defaults (no ready view, zero arrivals); online policies re-rank
    ``ready`` whenever ``arrivals_fired`` moves.
    """

    time: float
    available_memory: float
    comm_available: float
    comp_available: float
    scheduled: tuple[str, ...]
    ready: tuple[Task, ...] = ()
    arrivals_fired: int = 0
    scratch: MutableMapping = field(default_factory=dict)

    def induced_idle(self, task: Task) -> float:
        """Idle time forced on the computation resource if ``task`` is started now."""
        return max(0.0, self.time + task.comm - self.comp_available)


class SelectionPolicy(Protocol):
    """Chooses the next transfer among the tasks that currently fit in memory."""

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task | None:
        """Return the task to transfer next; ``candidates`` is never empty.

        Window/online policies may return ``None`` to decline every
        candidate, making the kernel wait for the next memory release or
        task arrival before asking again.
        """
        ...


# --------------------------------------------------------------------------- #
# Selection criteria (Section 4.2)
# --------------------------------------------------------------------------- #
def largest_communication(task: Task) -> tuple[float, str]:
    """LCMR criterion key: prefer the largest communication time."""
    return (-task.comm, task.name)


def smallest_communication(task: Task) -> tuple[float, str]:
    """SCMR criterion key: prefer the smallest communication time."""
    return (task.comm, task.name)


def maximum_acceleration(task: Task) -> tuple[float, str]:
    """MAMR criterion key: prefer the largest computation/communication ratio."""
    return (-task.acceleration, task.name)


def minimum_idle_filter(candidates: Sequence[Task], state: ExecutionState) -> list[Task]:
    """Candidates inducing the minimum idle time on the computation resource."""
    # Inline induced_idle (max(0, time + comm - comp_available)): this filter
    # runs at every decision point of every dynamic schedule, so it must not
    # pay two method calls per candidate.
    threshold = state.comp_available - state.time
    best = math.inf
    for task in candidates:
        idle = task.comm - threshold
        if idle < best:
            best = idle
    cutoff = max(best, 0.0) + TOLERANCE
    return [task for task in candidates if task.comm - threshold <= cutoff]


# --------------------------------------------------------------------------- #
# Policies
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FixedOrderPolicy:
    """Transfer the tasks in a fixed order, idling the link while the next
    task's memory does not fit (Section 4.1 execution semantics).

    The engine recognises :attr:`waits_for_memory` and, instead of offering
    the currently-fitting candidates, asks the memory ledger for the earliest
    instant at which the chosen task fits — so a fixed-order run never
    enumerates candidates and stays O(n log n).
    """

    tasks: tuple[Task, ...]
    name: str = "fixed-order"

    #: The engine must wait for the chosen task's memory rather than offer
    #: only fitting candidates.
    waits_for_memory: ClassVar[bool] = True

    _CURSOR: ClassVar[str] = "fixed_order_cursor"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        cursor = state.scratch.get(self._CURSOR, 0)
        state.scratch[self._CURSOR] = cursor + 1
        return self.tasks[cursor]


@dataclass(frozen=True)
class CriterionPolicy:
    """Pure dynamic selection: minimum-idle filter, then a criterion key.

    ``criterion`` maps a task to a sort key; the task with the smallest key
    among the minimum-idle candidates is selected (ties broken by name inside
    the key functions, keeping runs deterministic).
    """

    criterion: Callable[[Task], tuple[float, str]]
    name: str = "criterion"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        filtered = minimum_idle_filter(candidates, state)
        return min(filtered, key=self.criterion)


@dataclass(frozen=True)
class CorrectedOrderPolicy:
    """Static order followed when possible, corrected dynamically otherwise.

    The next not-yet-scheduled task of ``order`` is started whenever it fits
    in the available memory.  When it does not fit, a task is chosen among
    the fitting ones by the minimum-idle filter followed by ``criterion``,
    and the static order is updated by removing the chosen task
    (Section 4.3).  The order cursor lives in the run's scratch space, so the
    policy object itself is reusable.
    """

    order: Sequence[str]
    criterion: Callable[[Task], tuple[float, str]]
    name: str = "corrected"

    _CURSOR: ClassVar[str] = "corrected_cursor"
    _DONE: ClassVar[str] = "corrected_done"

    def select(self, candidates: Sequence[Task], state: ExecutionState) -> Task:
        scratch = state.scratch
        done = scratch.get(self._DONE)
        if done is None:
            done = scratch[self._DONE] = set(state.scheduled)
        order = self.order
        cursor = scratch.get(self._CURSOR, 0)
        while cursor < len(order) and order[cursor] in done:
            cursor += 1
        scratch[self._CURSOR] = cursor
        chosen: Task | None = None
        if cursor < len(order):
            head = order[cursor]
            for task in candidates:
                if task.name == head:
                    chosen = task
                    break
        if chosen is None:
            filtered = minimum_idle_filter(candidates, state)
            chosen = min(filtered, key=self.criterion)
        done.add(chosen.name)
        return chosen
