"""Pluggable resource models: availability timelines for link and processor.

The paper's machine has exactly one communication link and one processing
unit, each handling one interval at a time.  The kernel only ever talks to a
resource through two operations — *when is the resource next free* and
*commit an interval* — so richer machines (``k`` parallel transfer links, a
multi-core processing unit, a capacity override for what-if sweeps) plug in
without touching the engine or the policies.  :class:`MachineModel` bundles
the choices and is exposed as the ``machine`` engine option on
:func:`repro.solve` and :class:`repro.api.Study`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["ResourceModel", "UnitResource", "ParallelResource", "MachineModel", "DEFAULT_MACHINE"]


@runtime_checkable
class ResourceModel(Protocol):
    """Availability timeline of one renewable resource."""

    def next_free(self) -> float:
        """Earliest instant at which the resource can start new work."""
        ...

    def commit(self, ready: float, duration: float) -> tuple[float, float]:
        """Book ``duration`` units starting no earlier than ``ready``.

        Returns the booked ``(start, end)`` interval; ``start`` is the
        earliest feasible instant ``>= ready``.
        """
        ...


class UnitResource:
    """One server processing one interval at a time (the paper's machine)."""

    __slots__ = ("_available",)

    def __init__(self) -> None:
        self._available = 0.0

    def next_free(self) -> float:
        return self._available

    def commit(self, ready: float, duration: float) -> tuple[float, float]:
        start = ready if ready > self._available else self._available
        end = start + duration
        self._available = end
        return start, end


class ParallelResource:
    """``count`` identical servers; work goes to the earliest-free one."""

    __slots__ = ("_free",)

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError(f"resource needs at least one server, got {count}")
        self._free = [0.0] * count

    def next_free(self) -> float:
        return self._free[0]

    def commit(self, ready: float, duration: float) -> tuple[float, float]:
        start = max(ready, self._free[0])
        heapq.heapreplace(self._free, start + duration)
        return start, start + duration


@dataclass(frozen=True)
class MachineModel:
    """Machine description handed to the simulation kernel.

    The defaults describe the paper's machine exactly — one transfer at a
    time, one computation at a time, the instance's own memory capacity — and
    the kernel reproduces the seed executors byte-for-byte under them.

    Parameters
    ----------
    link_count:
        Number of parallel communication links (transfers may overlap when
        greater than one).
    cpu_count:
        Number of parallel processing units.
    capacity:
        Memory-capacity override; ``None`` keeps the instance's capacity.
        Leave unset in ``Study`` capacity sweeps (it would override every
        swept capacity).
    """

    link_count: int = 1
    cpu_count: int = 1
    capacity: float | None = None

    def __post_init__(self) -> None:
        if self.link_count < 1:
            raise ValueError(f"link_count must be at least 1, got {self.link_count}")
        if self.cpu_count < 1:
            raise ValueError(f"cpu_count must be at least 1, got {self.cpu_count}")
        if self.capacity is not None and not self.capacity > 0:
            raise ValueError(f"capacity override must be positive, got {self.capacity}")

    @property
    def is_paper_machine(self) -> bool:
        """True for the single-link, single-unit machine of the paper."""
        return self.link_count == 1 and self.cpu_count == 1 and self.capacity is None

    def effective_capacity(self, instance_capacity: float) -> float:
        return instance_capacity if self.capacity is None else self.capacity

    def build_link(self) -> ResourceModel:
        return UnitResource() if self.link_count == 1 else ParallelResource(self.link_count)

    def build_cpu(self) -> ResourceModel:
        return UnitResource() if self.cpu_count == 1 else ParallelResource(self.cpu_count)


#: The paper's machine: one link, one processing unit, instance capacity.
DEFAULT_MACHINE = MachineModel()
