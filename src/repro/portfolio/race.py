"""Parallel solver racing with lower-bound pruning.

No single heuristic dominates (Table 6), and when an instance's regime is
unclear the cheapest hedge is to *race* a small portfolio of members and keep
the virtual-best schedule.  :class:`PortfolioSolver` does exactly that:

* members run concurrently on a thread pool (the same fan-out discipline as
  :meth:`repro.api.Study.parallel`);
* a shared :class:`Incumbent` tracks the best makespan seen so far, floored
  by the instance's OMIM/area lower bounds (:mod:`repro.core.bounds`);
* kernel-backed members run under a :class:`PruningPolicy` wrapper that
  aborts the member as soon as its simulation clock passes the incumbent —
  a partial schedule's clock only grows, so such a member can no longer win;
* once the incumbent reaches the lower bound, members still queued are
  skipped outright (nothing can strictly beat a lower bound).

The outcome is deterministic despite the thread scheduling: a member with
the minimal makespan is never pruned (its decision clock never exceeds its
own makespan, which is never above the incumbent), so every minimal member
completes and the winner is the first of them in member order.  The racer
therefore never returns a makespan worse than the best of its members —
property-tested in ``tests/portfolio/test_race.py``.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from threading import Lock
from typing import Sequence

from ..core.bounds import area_lower_bound, omim
from ..core.instance import Instance
from ..core.schedule import Schedule
from ..heuristics.base import Category, Heuristic
from ..simulator.engine import SimulationResult, simulate
from ..simulator.policies import SelectionPolicy
from ..simulator.resources import MachineModel
from .outcome import OutcomeMixin, PortfolioOutcome

__all__ = [
    "DEFAULT_RACE_MEMBERS",
    "Incumbent",
    "MemberOutcome",
    "PortfolioSolver",
    "PruningPolicy",
    "RacePruned",
    "RaceReport",
]

#: Default race line-up: one strong member per behaviour family — Johnson's
#: order, both ends of the static comm+comp sorts, the three dynamic rules'
#: extremes and the paper's most robust corrected variant.
DEFAULT_RACE_MEMBERS: tuple[str, ...] = (
    "OOSIM",
    "DOCCS",
    "LCMR",
    "SCMR",
    "MAMR",
    "OOMAMR",
)

#: Makespans within this relative tolerance are considered tied.
_TOLERANCE = 1e-9


class RacePruned(Exception):
    """Raised inside a member run once it can no longer beat the incumbent."""


class Incumbent:
    """Thread-shared best-makespan tracker, floored by a lower bound."""

    def __init__(self, lower_bound: float = 0.0) -> None:
        self.lower_bound = lower_bound
        self._lock = Lock()
        self._best = math.inf

    @property
    def best(self) -> float:
        return self._best

    def offer(self, makespan: float) -> bool:
        """Record ``makespan``; True when it improved the incumbent."""
        with self._lock:
            if makespan < self._best:
                self._best = makespan
                return True
            return False

    def beaten(self, clock: float) -> bool:
        """True when a partial schedule at ``clock`` can no longer win."""
        return clock > self._best * (1.0 + _TOLERANCE)

    def settled(self) -> bool:
        """True once the incumbent has reached the lower bound."""
        return self._best <= self.lower_bound * (1.0 + _TOLERANCE)


class PruningPolicy:
    """Wrap a member's kernel policy with incumbent-based early abort.

    The kernel clock is monotone and every decision happens at or before the
    member's final makespan, so raising :class:`RacePruned` the moment the
    clock passes the incumbent cancels only members that are already beaten.
    """

    def __init__(self, inner: SelectionPolicy, incumbent: Incumbent) -> None:
        self._inner = inner
        self._incumbent = incumbent
        self.name = getattr(inner, "name", "pruned")
        self.waits_for_memory = getattr(inner, "waits_for_memory", False)

    def select(self, candidates, state):
        if self._incumbent.beaten(state.time):
            raise RacePruned(self.name)
        return self._inner.select(candidates, state)


@dataclass(frozen=True)
class MemberOutcome:
    """Attribution of one member's run inside a race."""

    solver: str
    category: str
    status: str  # "won" | "completed" | "pruned" | "skipped" | "failed"
    makespan: float = math.nan
    detail: str = ""

    @property
    def finished(self) -> bool:
        return self.status in ("won", "completed")


@dataclass(frozen=True)
class RaceReport:
    """Full per-member attribution of one race."""

    winner: str
    makespan: float
    lower_bound: float
    members: tuple[MemberOutcome, ...]

    @property
    def pruned(self) -> tuple[str, ...]:
        return tuple(m.solver for m in self.members if m.status in ("pruned", "skipped"))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{m.solver}:{m.status}"
            + (f"({m.makespan:g})" if math.isfinite(m.makespan) else "")
            for m in self.members
        )
        return f"race won by {self.winner} (makespan {self.makespan:g}; {parts})"


class PortfolioSolver(OutcomeMixin):
    """Registered solver (``"portfolio.race"``) racing K members per instance.

    Parameters
    ----------
    members:
        Solver specs resolved through the registry (names, aliases,
        instances, classes); defaults to :data:`DEFAULT_RACE_MEMBERS`.
    n_jobs:
        Thread-pool width; defaults to one thread per member (capped by the
        CPU count).
    prune:
        Disable to run every member to completion (pure virtual-best, used
        by the differential tests).
    """

    category = Category.PORTFOLIO

    def __init__(
        self,
        members: Sequence = (),
        *,
        n_jobs: int | None = None,
        prune: bool = True,
    ) -> None:
        super().__init__()
        self.name = "portfolio.race"
        self._member_specs = tuple(members) if members else DEFAULT_RACE_MEMBERS
        self._n_jobs = n_jobs
        self._prune = bool(prune)

    @property
    def runs_on_kernel(self) -> bool:
        return True

    def _resolve_members(self):
        from ..api.registry import resolve_solvers  # lazy: registry imports us

        members = resolve_solvers(*self._member_specs)
        names = [member.name for member in members]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate race members: {dupes}")
        return members

    def _run_member(
        self,
        member,
        instance: Instance,
        machine: MachineModel | None,
        incumbent: Incumbent,
    ) -> tuple[MemberOutcome, Schedule | None]:
        if self._prune and incumbent.settled():
            return MemberOutcome(member.name, str(member.category), "skipped"), None
        policy = None
        if self._prune and isinstance(member, Heuristic) and member.runs_on_kernel:
            policy = (
                member.online_policy(instance)
                if instance.has_releases
                else member.kernel_policy(instance)
            )
        try:
            if policy is not None:
                result = simulate(
                    instance, PruningPolicy(policy, incumbent), machine=machine
                )
                schedule = result.schedule
            elif hasattr(member, "simulate"):
                schedule = member.simulate(instance, machine=machine).schedule
            else:
                if machine is not None:
                    raise ValueError(
                        f"race member {member.name!r} does not run on the simulation "
                        "kernel and cannot target a custom machine model"
                    )
                schedule = member.schedule(instance)
        except RacePruned:
            return MemberOutcome(member.name, str(member.category), "pruned"), None
        except Exception as error:  # a broken member must not kill the hedge
            return (
                MemberOutcome(member.name, str(member.category), "failed", detail=repr(error)),
                None,
            )
        makespan = schedule.makespan
        incumbent.offer(makespan)
        return (
            MemberOutcome(member.name, str(member.category), "completed", makespan=makespan),
            schedule,
        )

    def race(
        self, instance: Instance, *, machine: MachineModel | None = None
    ) -> tuple[Schedule, RaceReport]:
        """Race the members on ``instance``; returns the winning schedule
        and the per-member attribution."""
        members = self._resolve_members()
        # OMIM/area are valid floors whenever link and processor are unique
        # (a capacity override cannot go below the infinite-memory optimum);
        # parallel links/processors could beat OMIM, so only 0 remains there.
        single_server = machine is None or (machine.link_count == 1 and machine.cpu_count == 1)
        lower_bound = (
            max(area_lower_bound(instance), omim(instance)) if single_server else 0.0
        )
        incumbent = Incumbent(lower_bound)

        if self._n_jobs is not None:
            workers = max(1, self._n_jobs)
        else:
            from ..api.engine import default_jobs  # lazy: api imports us

            workers = min(len(members), default_jobs())
        if workers > 1 and len(members) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                runs = list(
                    pool.map(
                        lambda member: self._run_member(member, instance, machine, incumbent),
                        members,
                    )
                )
        else:
            runs = [self._run_member(member, instance, machine, incumbent) for member in members]

        finished = [
            (outcome, schedule) for outcome, schedule in runs if schedule is not None
        ]
        if not finished:
            failures = "; ".join(
                f"{outcome.solver}: {outcome.detail or outcome.status}" for outcome, _ in runs
            )
            raise RuntimeError(f"every race member failed — {failures}")
        win_outcome, win_schedule = min(finished, key=lambda pair: pair[0].makespan)
        outcomes = tuple(
            MemberOutcome(o.solver, o.category, "won", makespan=o.makespan)
            if o is win_outcome
            else o
            for o, _ in runs
        )
        report = RaceReport(
            winner=win_outcome.solver,
            makespan=win_outcome.makespan,
            lower_bound=lower_bound,
            members=outcomes,
        )
        return win_schedule, report

    def simulate(
        self,
        instance: Instance,
        *,
        machine: MachineModel | None = None,
        record: bool = False,
        engine: str | None = None,
    ) -> SimulationResult:
        # engine= is accepted for interface uniformity; the race itself runs
        # its members through their own simulate() dispatch (auto engine).
        schedule, report = self.race(instance, machine=machine)
        self._record_outcome(PortfolioOutcome(selected=report.winner, report=report))
        if record:
            # Members are deterministic: re-running the winner with event
            # recording on reproduces the winning schedule plus its trace.
            # Winners that cannot record (MILP members, schedule-only
            # solvers) degrade to the traceless result instead of failing
            # the race after the fact.
            winner = next(
                member for member in self._resolve_members() if member.name == report.winner
            )
            if getattr(winner, "runs_on_kernel", False):
                return winner.simulate(instance, machine=machine, record=True)
        return SimulationResult(schedule=schedule, trace=None)

    def schedule(self, instance: Instance) -> Schedule:
        return self.simulate(instance).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortfolioSolver(members={list(self._member_specs)!r}, prune={self._prune})"
