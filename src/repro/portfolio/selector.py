"""Algorithm selection: pick the right solver for an instance's regime.

Two selectors are provided:

* :class:`Table6Selector` — the paper's Table 6 as code: every proposed
  heuristic carries a machine-readable ``favors(features)`` predicate
  (:meth:`repro.heuristics.base.Heuristic.favors`), and the selector
  dispatches on the memory-pressure band and intensity mix exactly as the
  table's prose does.  No training data needed.
* :class:`EmpiricalSelector` — data-driven nearest-regime lookup: feed it
  the :class:`~repro.api.results.ResultSet` of any past
  :class:`~repro.api.Study` sweep (plus the instances that produced it) and
  it memorises which solver won in which feature regime; new instances are
  routed to the winner of the nearest recorded regime.

:class:`SelectingSolver` wraps either selector as a registered solver
(``"portfolio.select"``), so selection composes with everything
:func:`repro.solve` supports — machine models, arrivals, event traces.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.instance import Instance
from ..core.schedule import Schedule
from ..heuristics.base import TABLE6_HEURISTICS, Category
from ..simulator.engine import SimulationResult
from ..simulator.resources import MachineModel
from .features import InstanceFeatures, featurize
from .outcome import OutcomeMixin, PortfolioOutcome

__all__ = [
    "Table6Selector",
    "EmpiricalSelector",
    "SelectingSolver",
    "DEFAULT_EMPIRICAL_DIMS",
]


def _solver_favors(name: str, features: InstanceFeatures) -> bool:
    from ..api.registry import get_solver  # lazy: avoid a registry import cycle

    solver = get_solver(name)
    favors = getattr(solver, "favors", None)
    return bool(favors(features)) if callable(favors) else False


class Table6Selector:
    """Rule-based selector codifying the paper's Table 6.

    ``candidates`` restricts the choices (defaults to the eleven proposed
    heuristics of the table); ``default`` is returned when no candidate's
    predicate matches — OOMAMR, the paper's most robust all-rounder.
    """

    def __init__(
        self,
        candidates: Sequence[str] = TABLE6_HEURISTICS,
        default: str = "OOMAMR",
    ) -> None:
        if not candidates:
            raise ValueError("Table6Selector needs at least one candidate solver")
        self.candidates = tuple(candidates)
        self.default = default

    def _preferences(self, features: InstanceFeatures) -> list[str]:
        """Candidate order for the instance's band, most specific first."""
        if features.memory_relaxed:
            # Capacity is no restriction: the matching sort order is optimal.
            return ["IOCMS", "DOCPS", "OOSIM"]
        if features.memory_tight:
            # Limited memory: the dynamic rules.  LCMR/SCMR name a specific
            # comm-size class, so they outrank the generic MAMR row.
            by_share = (
                ["LCMR", "SCMR"]
                if features.large_comm_compute_fraction >= features.small_comm_compute_fraction
                else ["SCMR", "LCMR"]
            )
            return [*by_share, "MAMR"]
        # Moderate memory: the "highly intensive" static sorts when their
        # strict rows match, otherwise the corrected variants.
        if features.mostly_compute_intensive:
            return ["IOCCS", "OOSCMR", "OOMAMR", "OOLCMR"]
        if features.mostly_communication_intensive:
            return ["DOCCS", "OOLCMR", "OOMAMR", "OOSCMR"]
        ordered = (
            ["OOSCMR", "OOLCMR"] if features.compute_fraction >= 0.5 else ["OOLCMR", "OOSCMR"]
        )
        return ["OOMAMR", *ordered]

    def rank(self, features: InstanceFeatures) -> list[str]:
        """Candidates ranked for ``features``: matching predicates first
        (in band-preference order), then the remaining candidates."""
        preferences = [name for name in self._preferences(features) if name in self.candidates]
        favored = [name for name in preferences if _solver_favors(name, features)]
        rest = [name for name in preferences if name not in favored]
        tail = [name for name in self.candidates if name not in preferences]
        return favored + rest + tail

    def select(self, features: InstanceFeatures) -> str:
        """The candidate whose Table 6 situation matches ``features``.

        Falls back to ``default`` when no predicate matches; a default
        outside a restricted candidate set is never returned — the best
        in-band candidate (then the first candidate) is used instead.
        """
        for name in self._preferences(features):
            if name in self.candidates and _solver_favors(name, features):
                return name
        if self.default in self.candidates:
            return self.default
        for name in self._preferences(features):
            if name in self.candidates:
                return name
        return self.candidates[0]


#: Feature dimensions the empirical selector measures regimes in.
DEFAULT_EMPIRICAL_DIMS: tuple[str, ...] = (
    "memory_pressure",
    "peak_pressure",
    "compute_fraction",
    "intensity_cv",
    "comm_cv",
    "large_comm_compute_fraction",
    "small_comm_compute_fraction",
    "footprint_diversity",
)


@dataclass(frozen=True)
class RegimePoint:
    """One recorded regime: a feature vector and the solver that won there."""

    vector: tuple[float, ...]
    best: str
    score: float


class EmpiricalSelector:
    """Nearest-regime lookup fit from recorded sweep results.

    Every training point pairs the feature vector of one solved instance
    with the solver that achieved the lowest ratio-to-OMIM on it.  Selection
    returns the winner of the nearest recorded regime — Euclidean distance
    over ``dims``, with each dimension divided by ``max(1, max |value|)``
    over the training points: the default dims are already fractions or
    O(1) spreads, so this keeps them comparable without letting a
    dimension the training data barely varies in amplify sampling noise
    (which min/max range scaling would).
    """

    def __init__(self, dims: Sequence[str] = DEFAULT_EMPIRICAL_DIMS) -> None:
        self.dims = tuple(dims)
        self._points: list[RegimePoint] = []

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> tuple[RegimePoint, ...]:
        return tuple(self._points)

    def observe(self, features: InstanceFeatures, results: Iterable) -> None:
        """Record the winner of one instance's measurements.

        ``results`` holds the rows of a single (instance, capacity) run —
        a :class:`~repro.api.results.ResultSet` slice or any iterable of
        :class:`~repro.api.results.RunRecord`; the row with the lowest
        ``ratio_to_optimal`` (ties broken by solver name) becomes the
        regime's winner.
        """
        rows = list(results)
        if not rows:
            raise ValueError("observe() needs at least one measurement row")
        best = min(rows, key=lambda row: (row.ratio_to_optimal, row.heuristic))
        self._points.append(
            RegimePoint(
                vector=features.as_vector(self.dims),
                best=best.heuristic,
                score=float(best.ratio_to_optimal),
            )
        )

    @classmethod
    def fit(
        cls,
        results,
        instances: Iterable[Instance],
        *,
        dims: Sequence[str] = DEFAULT_EMPIRICAL_DIMS,
        machine: MachineModel | None = None,
    ) -> "EmpiricalSelector":
        """Build a selector from a past sweep.

        ``results`` is the sweep's :class:`~repro.api.results.ResultSet`;
        ``instances`` supplies the task data the rows were measured on,
        matched by name against the ``trace`` column (each is re-sized to
        every recorded capacity before featurization, so one trace swept
        over nine capacities contributes nine regimes).  Rows whose trace
        has no matching instance are skipped.
        """
        by_name = {instance.name: instance for instance in instances}
        selector = cls(dims=dims)
        for (trace, capacity), group in results.group_by("trace", "capacity").items():
            base = by_name.get(trace)
            if base is None:
                continue
            sized = base if base.capacity == capacity else base.with_capacity(capacity)
            selector.observe(featurize(sized, machine), group)
        if not selector._points:
            raise ValueError(
                "no ResultSet row matched any provided instance by name; "
                f"known instances: {sorted(by_name)}"
            )
        return selector

    def _scales(self) -> list[float]:
        return [
            max(1.0, max(abs(point.vector[axis]) for point in self._points))
            for axis in range(len(self.dims))
        ]

    def select(self, features: InstanceFeatures) -> str:
        """Winner of the nearest recorded regime (ties: earliest point)."""
        if not self._points:
            raise ValueError("EmpiricalSelector has no training points; call fit()/observe()")
        target = features.as_vector(self.dims)
        scales = self._scales()
        best_point = None
        best_distance = math.inf
        for point in self._points:
            distance = 0.0
            for axis, scale in enumerate(scales):
                delta = (target[axis] - point.vector[axis]) / scale
                distance += delta * delta
            if distance < best_distance:
                best_distance = distance
                best_point = point
        return best_point.best

    # ------------------------------------------------------------------ #
    # Persistence (past sweeps as training data, shareable between runs)
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        return json.dumps(
            {
                "format": "repro.EmpiricalSelector",
                "version": 1,
                "dims": list(self.dims),
                "points": [
                    {
                        "vector": [value.hex() for value in point.vector],
                        "best": point.best,
                        "score": point.score.hex(),
                    }
                    for point in self._points
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "EmpiricalSelector":
        payload = json.loads(text)
        if payload.get("format") != "repro.EmpiricalSelector":
            raise ValueError("not an EmpiricalSelector JSON dump")
        selector = cls(dims=tuple(payload["dims"]))
        for point in payload["points"]:
            selector._points.append(
                RegimePoint(
                    vector=tuple(float.fromhex(value) for value in point["vector"]),
                    best=str(point["best"]),
                    score=float.fromhex(point["score"]),
                )
            )
        return selector


class SelectingSolver(OutcomeMixin):
    """Registered solver (``"portfolio.select"``) delegating per instance.

    Featurizes the instance (machine-aware), asks the selector for a member
    name, and runs that member — so callers get regime-appropriate
    scheduling through the plain :func:`repro.solve` interface.  The choice
    is exposed as ``last_outcome.selected`` and flows into the
    ``selected_solver`` column of sweep results.
    """

    category = Category.PORTFOLIO

    def __init__(self, selector: Table6Selector | EmpiricalSelector | None = None) -> None:
        super().__init__()
        self.name = "portfolio.select"
        self.selector = Table6Selector() if selector is None else selector

    @property
    def runs_on_kernel(self) -> bool:
        return True

    def choose(self, instance: Instance, machine: MachineModel | None = None) -> str:
        """The member the selector picks for ``instance`` (no run)."""
        return self.selector.select(featurize(instance, machine))

    def simulate(
        self,
        instance: Instance,
        *,
        machine: MachineModel | None = None,
        record: bool = False,
        engine: str | None = None,
    ) -> SimulationResult:
        from ..api.registry import get_solver  # lazy: avoid a registry import cycle

        choice = self.choose(instance, machine)
        solver = get_solver(choice)
        extra = {} if engine is None else {"engine": engine}
        result = solver.simulate(instance, machine=machine, record=record, **extra)
        self._record_outcome(PortfolioOutcome(selected=solver.name))
        return result

    def schedule(self, instance: Instance) -> Schedule:
        return self.simulate(instance).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SelectingSolver(selector={type(self.selector).__name__})"
