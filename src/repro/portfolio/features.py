"""Deterministic instance featurization for algorithm selection.

Table 6 of the paper describes each heuristic's *favorable situation* in
terms of a handful of workload properties: how tight the memory capacity is,
whether tasks are compute or communication intensive, how heterogeneous the
task mix is.  :class:`InstanceFeatures` turns those properties into a flat,
serializable vector computed from an :class:`~repro.core.instance.Instance`
(plus an optional :class:`~repro.simulator.resources.MachineModel` whose
capacity override and resource counts shift the picture), so selectors can
act on them instead of on prose.

The featurizer is

* **cheap** — one pass over the tasks, one sort and one infinite-memory
  Johnson run for the peak-demand pressure (O(n log n) in total);
* **pure** — no randomness, no global state, no wall clock;
* **deterministic** — the same instance yields the identical vector on every
  run and platform (plain float arithmetic over the submission order, pinned
  by ``tests/portfolio/test_features.py``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields

from ..core.instance import Instance
from ..flowshop.johnson import johnson_schedule
from ..simulator.resources import MachineModel

__all__ = [
    "InstanceFeatures",
    "featurize",
    "RATIO_CAP",
    "RELAXED_PEAK_MAX",
    "TIGHT_PEAK_MIN",
    "MEMORY_TIGHT_MIN",
    "SIGNIFICANT_SHARE",
    "DOMINANT_SHARE",
    "HIGHLY_INTENSE_RATIO",
    "HIGHLY_SIGNIFICANT_SHARE",
]

#: Cap substituted for the comp/comm ratio of zero-communication tasks.
RATIO_CAP = 1e9

#: Peak pressure (Johnson-schedule peak demand / capacity) at or below which
#: the capacity is "not a restriction": the optimal infinite-memory schedule
#: fits as-is, so OOSIM (and the matching sorts) are optimal.
RELAXED_PEAK_MAX = 1.02

#: Peak pressure beyond which the capacity is "limited"/tight — less than
#: half of what the relaxed optimal schedule wants to keep in flight.
TIGHT_PEAK_MIN = 2.0

#: ``mc / capacity`` at or above which the capacity is tight regardless of
#: the peak demand (paper: capacity close to ``mc``).
MEMORY_TIGHT_MIN = 0.80

#: Share of tasks that counts as a "significant percentage" in Table 6.
SIGNIFICANT_SHARE = 0.35

#: Share of tasks beyond which one intensity class dominates the mix.
DOMINANT_SHARE = 0.65

#: comp/comm ratio beyond which (or below whose inverse) a task counts as
#: *highly* compute (resp. communication) intensive.
HIGHLY_INTENSE_RATIO = 4.0

#: Share of highly-intense tasks that counts as significant (they are much
#: rarer than plain compute/communication-intensive ones).
HIGHLY_SIGNIFICANT_SHARE = 0.2


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _moments(values: list[float]) -> tuple[float, float, float]:
    """``(mean, coefficient of variation, skewness)`` of ``values``.

    Population moments (not sample-corrected), computed in submission order
    so the float summation order — and therefore the result — is fixed.
    """
    if not values:
        return 0.0, 0.0, 0.0
    mean = _mean(values)
    centered = [v - mean for v in values]
    m2 = _mean([c * c for c in centered])
    if m2 <= 0.0:
        return mean, 0.0, 0.0
    std = math.sqrt(m2)
    cv = std / mean if mean != 0.0 else 0.0
    m3 = _mean([c * c * c for c in centered])
    return mean, cv, m3 / (std * std * std)


def _intensity(comm: float, comp: float) -> float:
    """Guarded comp/comm ratio (zero-communication tasks hit :data:`RATIO_CAP`)."""
    if comm <= 0.0:
        return RATIO_CAP if comp > 0.0 else 1.0
    return min(comp / comm, RATIO_CAP)


@dataclass(frozen=True, slots=True)
class InstanceFeatures:
    """Flat feature vector of one instance (+ machine) for algorithm selection.

    Every field is a plain int or float, so the vector serializes losslessly
    (:meth:`to_json` / :meth:`from_json`) and embeds directly into nearest-
    neighbour lookups (:meth:`as_vector`).  The ``memory_*`` / ``*_intensive``
    properties express the Table 6 vocabulary as explicit thresholds.
    """

    #: Number of tasks in the instance.
    task_count: int
    #: Effective memory capacity (machine override applied; may be ``inf``).
    capacity: float
    #: Largest single-task footprint (``mc`` in the paper).
    min_capacity: float
    #: ``mc / capacity`` — 0 for unconstrained instances, 1 at the feasibility edge.
    memory_pressure: float
    #: Peak memory demand of the infinite-memory Johnson (OMIM) schedule
    #: divided by the capacity — at most 1 exactly when the capacity is "not
    #: a restriction" in the Table 6 sense (0 for unconstrained instances).
    peak_pressure: float
    #: Sum of task footprints divided by the capacity (0 when unconstrained).
    memory_load: float
    #: Share of tasks with ``comp >= comm`` (compute intensive).
    compute_fraction: float
    #: Share of *highly* compute-intensive tasks (ratio >= :data:`HIGHLY_INTENSE_RATIO`).
    highly_compute_fraction: float
    #: Share of *highly* communication-intensive tasks (ratio <= 1/:data:`HIGHLY_INTENSE_RATIO`).
    highly_comm_fraction: float
    #: Mean of the guarded comp/comm ratio.
    intensity_mean: float
    #: Coefficient of variation of the comp/comm ratio.
    intensity_cv: float
    #: Skewness of the comp/comm ratio distribution.
    intensity_skew: float
    #: Coefficient of variation of the communication times (heterogeneity).
    comm_cv: float
    #: Distinct task footprints divided by the task count (batch structure:
    #: tiled workloads like HF sit near 0, CCSD-like mixes near 1).
    footprint_diversity: float
    #: Share of compute-intensive tasks among the above-median-``comm`` half.
    large_comm_compute_fraction: float
    #: Share of compute-intensive tasks among the below-median-``comm`` half.
    small_comm_compute_fraction: float
    #: Tasks per unit time over ``[0, last release]``; 0 for offline instances.
    arrival_intensity: float
    #: Share of tasks with a positive release date.
    released_fraction: float
    #: Parallel transfer links of the machine model (1 = the paper's machine).
    link_count: int = 1
    #: Parallel processing units of the machine model.
    cpu_count: int = 1

    # ------------------------------------------------------------------ #
    # Table 6 vocabulary
    # ------------------------------------------------------------------ #
    @property
    def memory_relaxed(self) -> bool:
        """Memory capacity is not a restriction: the OMIM schedule fits."""
        return self.peak_pressure <= RELAXED_PEAK_MAX

    @property
    def memory_tight(self) -> bool:
        """Limited memory capacity: close to the feasibility edge, or well
        under half of what the relaxed optimal schedule keeps in flight."""
        return not self.memory_relaxed and (
            self.memory_pressure >= MEMORY_TIGHT_MIN or self.peak_pressure >= TIGHT_PEAK_MIN
        )

    @property
    def memory_moderate(self) -> bool:
        """Moderate memory capacity (between relaxed and tight)."""
        return not self.memory_relaxed and not self.memory_tight

    @property
    def mostly_compute_intensive(self) -> bool:
        return self.compute_fraction >= DOMINANT_SHARE

    @property
    def mostly_communication_intensive(self) -> bool:
        return self.compute_fraction <= 1.0 - DOMINANT_SHARE

    @property
    def significant_compute_share(self) -> bool:
        return self.compute_fraction >= SIGNIFICANT_SHARE

    @property
    def significant_communication_share(self) -> bool:
        return 1.0 - self.compute_fraction >= SIGNIFICANT_SHARE

    @property
    def mixed_intensity(self) -> bool:
        """Significant percentage of tasks of both intensity types."""
        return self.significant_compute_share and self.significant_communication_share

    @property
    def mostly_highly_compute_intensive(self) -> bool:
        """Most tasks are *highly* compute intensive (IOCCS's row)."""
        return self.highly_compute_fraction >= DOMINANT_SHARE

    @property
    def mostly_highly_communication_intensive(self) -> bool:
        """Most tasks are *highly* communication intensive (DOCCS's row)."""
        return self.highly_comm_fraction >= DOMINANT_SHARE

    @property
    def highly_intense_mix(self) -> bool:
        """Significant shares of highly compute- *and* communication-intensive
        tasks coexist (OOMAMR's row)."""
        return (
            self.highly_compute_fraction >= HIGHLY_SIGNIFICANT_SHARE
            and self.highly_comm_fraction >= HIGHLY_SIGNIFICANT_SHARE
        )

    @property
    def online(self) -> bool:
        return self.released_fraction > 0.0

    # ------------------------------------------------------------------ #
    # Serialization / vector access
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def as_vector(self, dims: tuple[str, ...]) -> tuple[float, ...]:
        """The named fields as a tuple of floats (nearest-neighbour lookups)."""
        return tuple(float(getattr(self, name)) for name in dims)

    def to_json(self) -> str:
        payload = {
            name: str(value) if isinstance(value, float) and not math.isfinite(value) else value
            for name, value in self.as_dict().items()
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "InstanceFeatures":
        kwargs = {}
        for f in fields(cls):
            value = payload[f.name]
            kwargs[f.name] = int(value) if f.type == "int" else float(value)
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "InstanceFeatures":
        return cls.from_dict(json.loads(text))


def featurize(instance: Instance, machine: MachineModel | None = None) -> InstanceFeatures:
    """Compute the :class:`InstanceFeatures` of ``instance`` on ``machine``.

    Pure and deterministic: every aggregate is accumulated in submission
    order and the only sort (the median-``comm`` split) uses the task values
    themselves, so identical instances map to identical vectors.
    """
    tasks = instance.tasks
    count = len(tasks)
    capacity = (
        machine.effective_capacity(instance.capacity) if machine is not None else instance.capacity
    )
    min_capacity = instance.min_capacity
    if count and math.isfinite(capacity) and capacity > 0:
        memory_pressure = min_capacity / capacity
        memory_load = sum(t.memory for t in tasks) / capacity
        # The capacity the relaxed (infinite-memory) optimum would need:
        # one Johnson run plus a profile sweep, both O(n log n).
        peak_pressure = (
            johnson_schedule(instance.without_memory_constraint()).peak_memory() / capacity
        )
    else:
        memory_pressure = 0.0
        memory_load = 0.0
        peak_pressure = 0.0

    intensities = [_intensity(t.comm, t.comp) for t in tasks]
    intensity_mean, intensity_cv, intensity_skew = _moments(intensities)
    highly_compute = (
        sum(1 for r in intensities if r >= HIGHLY_INTENSE_RATIO) / count if count else 0.0
    )
    highly_comm = (
        sum(1 for r in intensities if r <= 1.0 / HIGHLY_INTENSE_RATIO) / count if count else 0.0
    )
    _, comm_cv, _ = _moments([t.comm for t in tasks])
    compute_flags = [t.is_compute_intensive for t in tasks]
    compute_fraction = sum(compute_flags) / count if count else 0.0

    if count:
        ordered_comm = sorted(t.comm for t in tasks)
        mid = count // 2
        median_comm = (
            ordered_comm[mid]
            if count % 2
            else 0.5 * (ordered_comm[mid - 1] + ordered_comm[mid])
        )
        large = [flag for t, flag in zip(tasks, compute_flags) if t.comm >= median_comm]
        small = [flag for t, flag in zip(tasks, compute_flags) if t.comm <= median_comm]
        large_fraction = sum(large) / len(large) if large else 0.0
        small_fraction = sum(small) / len(small) if small else 0.0
        footprint_diversity = len({t.memory for t in tasks}) / count
    else:
        large_fraction = small_fraction = footprint_diversity = 0.0

    max_release = instance.max_release
    released = sum(1 for t in tasks if t.release > 0.0)
    arrival_intensity = count / max_release if max_release > 0.0 else 0.0

    return InstanceFeatures(
        task_count=count,
        capacity=capacity,
        min_capacity=min_capacity,
        memory_pressure=memory_pressure,
        peak_pressure=peak_pressure,
        memory_load=memory_load,
        compute_fraction=compute_fraction,
        highly_compute_fraction=highly_compute,
        highly_comm_fraction=highly_comm,
        intensity_mean=intensity_mean,
        intensity_cv=intensity_cv,
        intensity_skew=intensity_skew,
        comm_cv=comm_cv,
        footprint_diversity=footprint_diversity,
        large_comm_compute_fraction=large_fraction,
        small_comm_compute_fraction=small_fraction,
        arrival_intensity=arrival_intensity,
        released_fraction=released / count if count else 0.0,
        link_count=machine.link_count if machine is not None else 1,
        cpu_count=machine.cpu_count if machine is not None else 1,
    )
