"""Content-addressed persistent result cache for solver runs.

Repeated ``solve()``/``Study`` traffic over the same instances (capacity
sweeps re-run after a code tweak, dashboards re-rendering figures, services
answering the same advisory query) pays the full simulation cost every time.
:class:`ResultCache` memoises schedules on disk, keyed by a stable SHA-256
fingerprint of *everything that determines the output*:

* the canonical instance — every task's name/comm/comp/memory/release/tag
  (float bits exactly, via ``float.hex``) in submission order, plus the
  capacity; the instance's display name is deliberately excluded;
* the solver name and its (sorted) parameters;
* the machine model.

Hits rebuild the schedule from the stored float bits, so a cached result is
**byte-identical** to the cold run — differential-tested for all fourteen
paper heuristics plus GGX in ``tests/portfolio/test_cache.py``.  A corrupted
or truncated store entry degrades to a miss (the entry is dropped and
recomputed), never a crash.  Writes are atomic (temp file + rename), so
concurrent processes sharing one cache directory cannot observe torn
entries.

:class:`CachedSolver` wraps any registered solver with the cache and is
itself registered as ``"portfolio.cached"``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import threading
from pathlib import Path

from .. import obs
from ..core.instance import Instance
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import Task
from ..heuristics.base import Category
from ..simulator.engine import SimulationResult
from ..simulator.resources import MachineModel
from .outcome import OutcomeMixin, PortfolioOutcome

__all__ = [
    "CachedSolver",
    "ResultCache",
    "default_cache_dir",
    "instance_fingerprint",
    "solve_key",
]

_FORMAT = "repro.cache"
_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-dt``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    return Path("~/.cache/repro-dt").expanduser()


def _hex(value: float) -> str:
    """Exact, platform-independent float encoding (inf/nan included)."""
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value.hex()


def _unhex(text: str) -> float:
    if text == "nan":
        return math.nan
    if text in ("inf", "-inf"):
        return math.inf if text == "inf" else -math.inf
    return float.fromhex(text)


def instance_fingerprint(instance: Instance) -> str:
    """Stable SHA-256 of the canonical instance.

    Covers the submission order, every task quantity bit-exactly and the
    capacity; excludes the display name, so a renamed copy of the same
    mathematical instance hits the same cache entries.
    """
    digest = hashlib.sha256()
    digest.update(_hex(instance.capacity).encode())
    for task in instance.tasks:
        digest.update(
            "|".join(
                (
                    task.name,
                    _hex(task.comm),
                    _hex(task.comp),
                    _hex(task.memory),
                    _hex(task.release),
                    task.tag,
                )
            ).encode()
        )
        digest.update(b"\n")
    return digest.hexdigest()


def solve_key(
    instance: Instance,
    solver_name: str,
    params: dict | None = None,
    machine: MachineModel | None = None,
) -> str:
    """Content address of one (instance, solver, params, machine) solve."""
    digest = hashlib.sha256()
    digest.update(instance_fingerprint(instance).encode())
    digest.update(solver_name.upper().encode())
    for key in sorted(params or {}):
        value = (params or {})[key]
        encoded = _hex(value) if isinstance(value, float) else repr(value)
        digest.update(f"|{key}={encoded}".encode())
    if machine is not None and not machine.is_paper_machine:
        digest.update(
            f"|machine:{machine.link_count}:{machine.cpu_count}:"
            f"{_hex(machine.capacity) if machine.capacity is not None else 'none'}".encode()
        )
    return digest.hexdigest()


class ResultCache:
    """On-disk (plus in-memory) store of schedules, keyed by content hash.

    One JSON file per key under ``directory``; an in-memory layer makes
    repeated hits within a process free.  ``hits``/``misses`` count lookups
    for observability; :meth:`stats` snapshots them together with the entry
    count and on-disk footprint.  The counters are guarded by a lock, so a
    cache shared across threads — every client of one ``repro serve``
    daemon, or the members of a racing portfolio — reports exact numbers.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self._memory: dict[str, dict] = {}
        self._stats_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.bytes_written = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __contains__(self, key: str) -> bool:
        return key in self._memory or self._path(key).is_file()

    def stats(self) -> dict[str, float]:
        """Thread-safe counter snapshot: effectiveness plus store footprint.

        ``hits``/``misses`` count :meth:`get` lookups in this process,
        ``bytes_written`` the payload bytes this process stored, ``entries``
        and ``bytes`` the on-disk store as it is *now* (shared by every
        process pointing at the directory), and ``hit_rate`` the fraction of
        lookups served from the cache (``0.0`` before any lookup).
        """
        with self._stats_lock:
            hits, misses, written = self.hits, self.misses, self.bytes_written
        entries = 0
        disk_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    disk_bytes += path.stat().st_size
                except OSError:  # entry vanished mid-scan (concurrent clear)
                    continue
                entries += 1
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "entries": entries,
            "bytes": disk_bytes,
            "bytes_written": written,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    def clear(self) -> None:
        """Drop the in-memory layer and every on-disk entry."""
        self._memory.clear()
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #
    def _load(self, key: str) -> dict | None:
        payload = self._memory.get(key)
        if payload is not None:
            return payload
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            path.unlink(missing_ok=True)  # torn write / stray file: heal the store
            return None
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            path.unlink(missing_ok=True)
            return None
        self._memory[key] = payload
        return payload

    def get(self, key: str) -> Schedule | None:
        """The stored schedule, or ``None`` (miss or unreadable entry).

        A corrupted entry — truncated write, stray file, schema drift — is
        deleted and reported as a miss, so the caller transparently
        recomputes and heals the store.
        """
        started = obs.now()
        payload = self._load(key)
        if payload is not None:
            try:
                schedule = _decode_schedule(payload)
            except (KeyError, TypeError, ValueError):
                payload = None
                self._memory.pop(key, None)
                self._path(key).unlink(missing_ok=True)
        with self._stats_lock:
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
        hit = payload is not None
        obs.REGISTRY.inc("cache_hits_total" if hit else "cache_misses_total")
        obs.REGISTRY.observe("cache_get_latency", obs.now() - started)
        if obs.is_enabled():
            obs.record_span("cache.get", started, obs.now(), hit=hit)
        return None if payload is None else schedule

    def put(self, key: str, schedule: Schedule, *, solver: str = "") -> None:
        """Store ``schedule`` under ``key`` (atomic write, last writer wins)."""
        started = obs.now()
        payload = _encode_schedule(schedule, solver=solver)
        self._memory[key] = payload
        self.directory.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload)
        with self._stats_lock:
            self.bytes_written += len(text)
        handle, temp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(temp_path, self._path(key))
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        obs.REGISTRY.inc("cache_puts_total")
        obs.REGISTRY.observe("cache_put_latency", obs.now() - started)


def _encode_schedule(schedule: Schedule, *, solver: str = "") -> dict:
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "solver": solver,
        "entries": [
            {
                "name": entry.task.name,
                "comm": _hex(entry.task.comm),
                "comp": _hex(entry.task.comp),
                "memory": _hex(entry.task.memory),
                "release": _hex(entry.task.release),
                "tag": entry.task.tag,
                "comm_start": _hex(entry.comm_start),
                "comp_start": _hex(entry.comp_start),
            }
            for entry in schedule
        ],
    }


def _decode_schedule(payload: dict) -> Schedule:
    entries = []
    for item in payload["entries"]:
        task = Task(
            name=item["name"],
            comm=_unhex(item["comm"]),
            comp=_unhex(item["comp"]),
            memory=_unhex(item["memory"]),
            release=_unhex(item["release"]),
            tag=item["tag"],
        )
        entries.append(
            ScheduledTask(
                task=task,
                comm_start=_unhex(item["comm_start"]),
                comp_start=_unhex(item["comp_start"]),
            )
        )
    return Schedule(entries)


class CachedSolver(OutcomeMixin):
    """Registered solver (``"portfolio.cached"``) memoising an inner solver.

    ``inner`` is any registered solver name/alias (parameters forwarded via
    ``inner_params``) or an already-built solver instance.  Cache keys cover
    the canonical instance, the inner solver's name and parameters, and the
    machine model; whether the run hit is exposed as
    ``last_outcome.cache_hit`` and flows into the ``cache_hit`` column of
    sweep results.

    ``record=True`` runs always execute (an event trace cannot be served
    from the schedule store) but still warm the cache for later hits.
    """

    category = Category.PORTFOLIO

    def __init__(
        self,
        inner: str | object = "LCMR",
        *,
        cache: ResultCache | None = None,
        directory: str | os.PathLike | None = None,
        **inner_params,
    ) -> None:
        super().__init__()
        if cache is not None and directory is not None:
            raise ValueError("pass either cache= or directory=, not both")
        self.cache = cache if cache is not None else ResultCache(directory)
        if isinstance(inner, str):
            from ..api.registry import get_solver  # lazy: registry imports us

            self._inner = get_solver(inner, **inner_params)
            self._params = dict(inner_params)
        else:
            if inner_params:
                raise TypeError(
                    "inner solver parameters are only accepted when inner is a name"
                )
            self._inner = inner
            self._params = {}
        self.name = "portfolio.cached"

    @property
    def inner(self):
        return self._inner

    @property
    def runs_on_kernel(self) -> bool:
        # Deliberately False even for kernel-backed inners: the sweep engine
        # turns on event recording for kernel solvers, and recorded runs
        # cannot be served from the schedule store — reporting False keeps
        # Study traffic on the cacheable path.
        return False

    def key(self, instance: Instance, machine: MachineModel | None = None) -> str:
        return solve_key(instance, self._inner.name, self._params, machine)

    def _solve_fresh(
        self,
        instance: Instance,
        machine: MachineModel | None,
        record: bool,
        engine: str | None,
    ) -> SimulationResult:
        if hasattr(self._inner, "simulate"):
            extra = {} if engine is None else {"engine": engine}
            return self._inner.simulate(instance, machine=machine, record=record, **extra)
        if engine is not None and engine != "auto":
            raise ValueError(
                f"solver {self._inner.name!r} does not run on the simulation kernel "
                "and cannot target a specific execution engine"
            )
        if machine is not None:
            raise ValueError(
                f"solver {self._inner.name!r} does not run on the simulation kernel "
                "and cannot target a custom machine model"
            )
        if record:
            raise ValueError(
                f"solver {self._inner.name!r} does not run on the simulation kernel "
                "and cannot record an event trace"
            )
        return SimulationResult(schedule=self._inner.schedule(instance), trace=None)

    def simulate(
        self,
        instance: Instance,
        *,
        machine: MachineModel | None = None,
        record: bool = False,
        engine: str | None = None,
    ) -> SimulationResult:
        key = self.key(instance, machine)
        if not record:
            cached = self.cache.get(key)
            if cached is not None:
                self._record_outcome(
                    PortfolioOutcome(selected=self._inner.name, cache_hit=True)
                )
                return SimulationResult(schedule=cached, trace=None)
        result = self._solve_fresh(instance, machine, record, engine)
        self.cache.put(key, result.schedule, solver=self._inner.name)
        self._record_outcome(PortfolioOutcome(selected=self._inner.name, cache_hit=False))
        return result

    def schedule(self, instance: Instance) -> Schedule:
        return self.simulate(instance).schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CachedSolver(inner={self._inner.name!r}, directory={str(self.cache.directory)!r})"
