"""Portfolio layer: featurization, algorithm selection, racing, caching.

The paper's central empirical finding (Table 6) is that *no single heuristic
dominates* — each ordering wins only in its favorable situation.  This
package turns that finding into runtime capability:

* :mod:`~repro.portfolio.features` — deterministic
  :class:`~repro.portfolio.features.InstanceFeatures` summarising an
  instance's regime (memory pressure, intensity mix, heterogeneity,
  arrival intensity);
* :mod:`~repro.portfolio.selector` — rule-based
  :class:`~repro.portfolio.selector.Table6Selector` (the table as code) and
  the data-driven :class:`~repro.portfolio.selector.EmpiricalSelector`
  (nearest-regime lookup over recorded sweeps);
* :mod:`~repro.portfolio.race` —
  :class:`~repro.portfolio.race.PortfolioSolver`, racing K members
  concurrently with incumbent/lower-bound pruning;
* :mod:`~repro.portfolio.cache` — the content-addressed persistent
  :class:`~repro.portfolio.cache.ResultCache` and the memoising
  :class:`~repro.portfolio.cache.CachedSolver`.

All three solvers are registered (``"portfolio.race"``,
``"portfolio.select"``, ``"portfolio.cached"``) and reachable from
:func:`repro.solve` and :meth:`repro.api.Study.portfolio`.
"""

from .cache import (
    CachedSolver,
    ResultCache,
    default_cache_dir,
    instance_fingerprint,
    solve_key,
)
from .features import InstanceFeatures, featurize
from .outcome import PortfolioOutcome
from .race import (
    DEFAULT_RACE_MEMBERS,
    MemberOutcome,
    PortfolioSolver,
    RaceReport,
)
from .selector import (
    DEFAULT_EMPIRICAL_DIMS,
    EmpiricalSelector,
    SelectingSolver,
    Table6Selector,
)

__all__ = [
    "DEFAULT_EMPIRICAL_DIMS",
    "DEFAULT_RACE_MEMBERS",
    "CachedSolver",
    "EmpiricalSelector",
    "InstanceFeatures",
    "MemberOutcome",
    "PortfolioOutcome",
    "PortfolioSolver",
    "RaceReport",
    "ResultCache",
    "SelectingSolver",
    "Table6Selector",
    "default_cache_dir",
    "featurize",
    "instance_fingerprint",
    "solve_key",
]
