"""Shared attribution record for the portfolio solvers.

Every portfolio solver (racer, selector, cache) reports *what it actually
did* for its most recent run through a :class:`PortfolioOutcome` exposed as
``solver.last_outcome``.  The :mod:`repro.api` layer reads it after each run
to fill the ``selected_solver`` / ``cache_hit`` columns of a
:class:`~repro.api.results.ResultSet` and the matching
:class:`~repro.api.solve.SolveResult` fields.

Outcomes are stored in a ``threading.local`` slot so one solver instance can
be raced across Study worker threads without the attributions bleeding into
each other.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["PortfolioOutcome", "OutcomeMixin"]


@dataclass(frozen=True)
class PortfolioOutcome:
    """What one portfolio run actually executed.

    ``selected`` is the member solver whose schedule was returned (race
    winner, selector choice, or cached solver's inner method); ``cache_hit``
    is ``None`` for solvers without a cache, else whether the schedule was
    served from the store.  ``report`` optionally carries the full
    :class:`~repro.portfolio.race.RaceReport` attribution.
    """

    selected: str = ""
    cache_hit: bool | None = None
    report: object | None = None


class OutcomeMixin:
    """Per-thread ``last_outcome`` storage for portfolio solvers."""

    def __init__(self) -> None:
        self._outcomes = threading.local()

    @property
    def last_outcome(self) -> PortfolioOutcome | None:
        """Attribution of the most recent run on this thread (or ``None``)."""
        return getattr(self._outcomes, "value", None)

    def _record_outcome(self, outcome: PortfolioOutcome) -> None:
        self._outcomes.value = outcome
