"""Workload characterisation (Figure 8 of the paper).

For each trace, the paper reports four quantities normalised by the trace's
OMIM (optimal makespan with infinite memory):

* ``sum comm`` — total communication time;
* ``sum comp`` — total computation time;
* ``max(sum comm, sum comp)`` — the area lower bound;
* ``sum comm + sum comp`` — the sequential (zero overlap) upper bound.

The spread of those ratios across the 150 traces is what Figure 8 plots for HF
and CCSD: HF is communication-dominated (at most ~20% of the sequential time
can be hidden), while CCSD has balanced resources and much more potential
overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.bounds import omim
from .model import Trace, TraceEnsemble

__all__ = [
    "WorkloadCharacteristics",
    "characterise_trace",
    "characterise_ensemble",
    "DistributionSummary",
    "summarise",
]


@dataclass(frozen=True)
class WorkloadCharacteristics:
    """Figure 8 quantities for a single trace, normalised by its OMIM."""

    trace: str
    task_count: int
    omim_seconds: float
    sum_comm_ratio: float
    sum_comp_ratio: float
    area_bound_ratio: float
    sequential_ratio: float
    compute_intensive_fraction: float
    min_capacity_bytes: float

    @property
    def max_overlap_fraction(self) -> float:
        """Largest fraction of the sequential makespan that overlap can hide."""
        if self.sequential_ratio == 0:
            return 0.0
        return 1.0 - self.area_bound_ratio / self.sequential_ratio


def characterise_trace(trace: Trace) -> WorkloadCharacteristics:
    """Compute the Figure 8 quantities for ``trace``."""
    instance = trace.to_instance()
    reference = omim(instance)
    denom = reference if reference > 0 else 1.0
    return WorkloadCharacteristics(
        trace=trace.label,
        task_count=len(trace),
        omim_seconds=reference,
        sum_comm_ratio=instance.total_comm / denom,
        sum_comp_ratio=instance.total_comp / denom,
        area_bound_ratio=instance.resource_lower_bound / denom,
        sequential_ratio=instance.sequential_makespan / denom,
        compute_intensive_fraction=instance.compute_intensive_fraction(),
        min_capacity_bytes=trace.min_capacity_bytes,
    )


def characterise_ensemble(ensemble: TraceEnsemble) -> list[WorkloadCharacteristics]:
    """Characteristics of every trace in ``ensemble``."""
    return [characterise_trace(trace) for trace in ensemble]


@dataclass(frozen=True)
class DistributionSummary:
    """Boxplot-style five-number summary plus mean (used by figure reports)."""

    minimum: float
    first_quartile: float
    median: float
    third_quartile: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def empty(cls) -> "DistributionSummary":
        return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)


def summarise(values: Iterable[float]) -> DistributionSummary:
    """Five-number summary of ``values`` (matching the paper's boxplots)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return DistributionSummary.empty()
    q1, med, q3 = np.percentile(data, [25.0, 50.0, 75.0])
    return DistributionSummary(
        minimum=float(data.min()),
        first_quartile=float(q1),
        median=float(med),
        third_quartile=float(q3),
        maximum=float(data.max()),
        mean=float(data.mean()),
        count=int(data.size),
    )
