"""Synthetic trace generators.

Besides the molecular-chemistry simulator (:mod:`repro.chemistry`), the
test-suite and the Table 6 ablation benches need workloads with controlled
statistical regimes: mostly compute-intensive, mostly communication-intensive,
mixed, homogeneous, heterogeneous...  These generators produce such traces
from a seeded :class:`numpy.random.Generator`, in the same physical units as
real traces (bytes / seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .model import Trace, TraceEnsemble, TraceStream, TraceTask

__all__ = [
    "WorkloadRegime",
    "REGIMES",
    "synthetic_trace",
    "synthetic_ensemble",
    "synthetic_stream",
    "regime_trace",
]


@dataclass(frozen=True)
class WorkloadRegime:
    """Statistical description of a synthetic workload.

    ``comm_seconds`` and ``intensity`` are sampled per task: the communication
    time comes from a log-normal distribution with the given median and
    spread, the computation time is ``comm * intensity`` where ``intensity``
    is itself log-normally distributed around ``intensity_median``.
    A ``bandwidth`` (bytes/second) converts communication times to volumes so
    that memory requirements follow the paper's proportionality convention.

    ``arrivals`` optionally attaches an
    :class:`~repro.simulator.arrivals.ArrivalProcess` to the regime: sampled
    traces then carry release dates and the instances built from them run on
    the streaming runtime.  ``None`` (the default) keeps the offline model.
    """

    name: str
    comm_median: float = 1e-3
    comm_sigma: float = 0.5
    intensity_median: float = 1.0
    intensity_sigma: float = 0.5
    bandwidth: float = 3e9
    arrivals: object | None = None
    description: str = ""

    def sample(self, rng: np.random.Generator, count: int) -> list[TraceTask]:
        """Draw ``count`` tasks; ``rng`` also drives the arrival process.

        Communication times are log-normal around ``comm_median``,
        computation times are ``comm * intensity`` with log-normal
        ``intensity``, volumes are ``comm * bandwidth``.  When the regime
        carries an arrival process, the sampled stream is stamped with its
        release dates in submission order.
        """
        comm = self.comm_median * np.exp(rng.normal(0.0, self.comm_sigma, size=count))
        intensity = self.intensity_median * np.exp(
            rng.normal(0.0, self.intensity_sigma, size=count)
        )
        comp = comm * intensity
        volume = comm * self.bandwidth
        tasks = [
            TraceTask(
                name=f"t{i:05d}",
                volume_bytes=float(volume[i]),
                comm_seconds=float(comm[i]),
                comp_seconds=float(comp[i]),
                kind=self.name,
            )
            for i in range(count)
        ]
        if self.arrivals is not None:
            releases = self.arrivals.sample(rng, [t.to_task() for t in tasks])
            tasks = [
                replace(task, release_seconds=float(date))
                for task, date in zip(tasks, releases)
            ]
        return tasks

    def with_arrivals(self, arrivals) -> "WorkloadRegime":
        """Same statistics under an arrival process (streaming variant)."""
        return replace(self, arrivals=arrivals)

    def stream(
        self,
        *,
        processes: int = 16,
        tasks_per_process: "int | tuple[int, int]" = (300, 800),
        seed: int = 0,
    ) -> TraceStream:
        """Lazy, iterator-based production of this regime's traces.

        Same traces as :func:`synthetic_ensemble` (exact same RNG draws),
        but produced one at a time as the stream is consumed — a sweep over
        the stream never holds more traces than it has jobs in flight.
        """
        return synthetic_stream(
            self, processes=processes, tasks_per_process=tasks_per_process, seed=seed
        )


#: Named regimes matching the favorable situations discussed around Table 6.
REGIMES: dict[str, WorkloadRegime] = {
    "balanced": WorkloadRegime(
        name="balanced",
        intensity_median=1.0,
        description="Communication and computation evenly matched, moderate heterogeneity.",
    ),
    "compute-heavy": WorkloadRegime(
        name="compute-heavy",
        intensity_median=4.0,
        description="Most tasks compute intensive (comp >> comm).",
    ),
    "communication-heavy": WorkloadRegime(
        name="communication-heavy",
        intensity_median=0.25,
        description="Most tasks communication intensive (comm >> comp).",
    ),
    "homogeneous": WorkloadRegime(
        name="homogeneous",
        comm_sigma=0.05,
        intensity_sigma=0.05,
        description="Near-identical tasks (HF-like tiling).",
    ),
    "heterogeneous": WorkloadRegime(
        name="heterogeneous",
        comm_sigma=1.2,
        intensity_sigma=0.9,
        description="Wildly varying task sizes (CCSD-like tiling).",
    ),
    "mixed-intensity": WorkloadRegime(
        name="mixed-intensity",
        comm_sigma=0.8,
        intensity_sigma=1.5,
        description="Significant share of both compute- and communication-intensive tasks.",
    ),
}


def synthetic_trace(
    regime: WorkloadRegime | str,
    *,
    tasks: int = 300,
    process: int = 0,
    seed: int = 0,
) -> Trace:
    """One synthetic trace drawn from ``regime`` with ``tasks`` tasks."""
    if isinstance(regime, str):
        regime = REGIMES[regime]
    rng = np.random.default_rng(np.random.SeedSequence([seed, process]))
    return Trace(
        application=f"synthetic-{regime.name}",
        process=process,
        tasks=regime.sample(rng, tasks),
        metadata={"regime": regime.name, "seed": str(seed)},
    )


def regime_trace(name: str, *, tasks: int = 300, seed: int = 0) -> Trace:
    """Convenience wrapper: trace for a named regime."""
    return synthetic_trace(REGIMES[name], tasks=tasks, seed=seed)


def synthetic_ensemble(
    regime: WorkloadRegime | str,
    *,
    processes: int = 16,
    tasks_per_process: int | tuple[int, int] = (300, 800),
    seed: int = 0,
) -> TraceEnsemble:
    """An ensemble of synthetic traces, one per simulated process.

    ``tasks_per_process`` is either a fixed count or an inclusive range from
    which per-process counts are drawn (the paper reports 300–800 tasks per
    process).
    """
    if isinstance(regime, str):
        regime = REGIMES[regime]
    rng = np.random.default_rng(seed)
    traces = []
    for rank in range(processes):
        if isinstance(tasks_per_process, tuple):
            low, high = tasks_per_process
            count = int(rng.integers(low, high + 1))
        else:
            count = int(tasks_per_process)
        traces.append(synthetic_trace(regime, tasks=count, process=rank, seed=seed))
    return TraceEnsemble(
        application=f"synthetic-{regime.name}",
        traces=traces,
        metadata={"regime": regime.name, "seed": str(seed)},
    )


def synthetic_stream(
    regime: WorkloadRegime | str,
    *,
    processes: int = 16,
    tasks_per_process: int | tuple[int, int] = (300, 800),
    seed: int = 0,
) -> TraceStream:
    """Lazy counterpart of :func:`synthetic_ensemble`: same traces, produced
    on demand.

    Each trace's tasks are drawn from a per-process RNG seeded by
    ``[seed, process]`` — independent of the other traces — so only the
    per-process task *counts* (drawn from the ensemble RNG, a few bytes per
    process) are fixed up front.  ``stream.materialize()`` is therefore
    byte-for-byte equal to ``synthetic_ensemble(...)`` with the same
    arguments, which makes eager and streaming sweeps directly comparable.
    """
    if isinstance(regime, str):
        regime = REGIMES[regime]
    rng = np.random.default_rng(seed)
    counts = []
    for _ in range(processes):
        if isinstance(tasks_per_process, tuple):
            low, high = tasks_per_process
            counts.append(int(rng.integers(low, high + 1)))
        else:
            counts.append(int(tasks_per_process))

    def build(rank: int) -> Trace:
        return synthetic_trace(regime, tasks=counts[rank], process=rank, seed=seed)

    return TraceStream(
        application=f"synthetic-{regime.name}",
        count=processes,
        factory=build,
        metadata={"regime": regime.name, "seed": str(seed)},
    )
