"""Trace model: the per-process task streams the heuristics are evaluated on.

A *trace* is what one MPI process of the instrumented application (NWChem in
the paper) recorded: an ordered stream of independent tasks, each with the
volume of input data it fetched from the Global Arrays memory, the time that
transfer took, and the time the computation took.  The order of the stream is
the submission order (the ``OS`` baseline).

The trace layer works in physical units (bytes, seconds); conversion to
Problem DT instances normalises nothing — the paper's memory capacities are
expressed in bytes (``mc`` = 176 KB for HF, 1.8 GB for CCSD), and the memory
requirement of a task is its communication volume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Sequence

from ..core.instance import Instance
from ..core.task import Task

__all__ = ["TraceTask", "Trace", "TraceEnsemble", "TraceStream"]


@dataclass(frozen=True, slots=True)
class TraceTask:
    """One recorded task of a trace.

    ``volume_bytes`` is the amount of remote data fetched before execution; it
    is also the memory the task pins locally from the start of its transfer to
    the end of its computation (the paper's model).  ``release_seconds`` is
    the instant the task was submitted to the runtime — zero (the offline
    default) unless an arrival process stamped the trace.
    """

    name: str
    volume_bytes: float
    comm_seconds: float
    comp_seconds: float
    release_seconds: float = 0.0
    kind: str = ""

    def __post_init__(self) -> None:
        if self.volume_bytes < 0 or self.comm_seconds < 0 or self.comp_seconds < 0:
            raise ValueError(f"trace task {self.name!r} has negative fields")
        if self.release_seconds < 0:
            raise ValueError(f"trace task {self.name!r} has a negative release date")

    def to_task(self) -> Task:
        """Convert to the scheduling-layer :class:`~repro.core.task.Task`.

        Times are kept in seconds; the memory requirement is the transferred
        volume in bytes; the release date carries over, so instances built
        from arrival-stamped traces stream automatically.
        """
        return Task(
            name=self.name,
            comm=self.comm_seconds,
            comp=self.comp_seconds,
            memory=self.volume_bytes,
            release=self.release_seconds,
            tag=self.kind,
        )


@dataclass
class Trace:
    """The task stream recorded by one process."""

    application: str
    process: int
    tasks: list[TraceTask] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [t.name for t in self.tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in trace {self.label}")

    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        return f"{self.application}/p{self.process:03d}"

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[TraceTask]:
        return iter(self.tasks)

    # ------------------------------------------------------------------ #
    @property
    def total_volume_bytes(self) -> float:
        return float(sum(t.volume_bytes for t in self.tasks))

    @property
    def total_comm_seconds(self) -> float:
        return float(sum(t.comm_seconds for t in self.tasks))

    @property
    def total_comp_seconds(self) -> float:
        return float(sum(t.comp_seconds for t in self.tasks))

    @property
    def min_capacity_bytes(self) -> float:
        """``mc``: largest single-task volume — the smallest workable capacity."""
        if not self.tasks:
            return 0.0
        return float(max(t.volume_bytes for t in self.tasks))

    # ------------------------------------------------------------------ #
    def to_instance(self, capacity_bytes: float = math.inf) -> Instance:
        """Build a Problem DT instance with memory capacity ``capacity_bytes``."""
        return Instance(
            (t.to_task() for t in self.tasks),
            capacity=capacity_bytes,
            name=self.label,
        )

    def to_instance_with_factor(self, factor: float) -> Instance:
        """Instance whose capacity is ``factor * mc`` (the paper sweeps 1.0–2.0)."""
        if factor <= 0:
            raise ValueError("capacity factor must be positive")
        return self.to_instance(self.min_capacity_bytes * factor)

    def with_arrivals(self, spec, *, seed: int = 0) -> "Trace":
        """Trace stamped with release dates from an arrival process.

        ``spec`` is anything :func:`repro.simulator.arrivals.resolve_arrivals`
        accepts — an arrival process, a ``{task name: date}`` mapping, or a
        sequence aligned with the submission order.  Instances built from
        the stamped trace run on the streaming runtime automatically.
        """
        # Imported lazily: repro.traces must stay importable without pulling
        # the whole simulator package in at module load.
        from ..simulator.arrivals import resolve_arrivals

        releases = resolve_arrivals(spec, [t.to_task() for t in self.tasks], seed=seed)
        return Trace(
            application=self.application,
            process=self.process,
            tasks=[
                replace(t, release_seconds=releases.get(t.name, t.release_seconds))
                for t in self.tasks
            ],
            metadata=dict(self.metadata),
        )

    def batched(self, batch_size: int) -> list["Trace"]:
        """Split the stream into successive batches of ``batch_size`` tasks."""
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        out = []
        for index, start in enumerate(range(0, len(self.tasks), batch_size)):
            out.append(
                Trace(
                    application=self.application,
                    process=self.process,
                    tasks=self.tasks[start : start + batch_size],
                    metadata={**self.metadata, "batch": str(index)},
                )
            )
        return out


@dataclass
class TraceEnsemble:
    """A collection of traces from one application run (one per process)."""

    application: str
    traces: list[Trace] = field(default_factory=list)
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for trace in self.traces:
            if trace.application != self.application:
                raise ValueError(
                    f"trace {trace.label} belongs to {trace.application!r}, "
                    f"ensemble is {self.application!r}"
                )

    def __len__(self) -> int:
        return len(self.traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)

    def __getitem__(self, index: int) -> Trace:
        return self.traces[index]

    @property
    def task_counts(self) -> list[int]:
        return [len(t) for t in self.traces]

    def subset(self, count: int) -> "TraceEnsemble":
        """First ``count`` traces (used to scale experiments down)."""
        return TraceEnsemble(
            application=self.application,
            traces=self.traces[:count],
            metadata=dict(self.metadata),
        )

    def stream(self) -> "TraceStream":
        """A :class:`TraceStream` view over the already-materialised traces.

        Useful for exercising the streaming sweep path against an ensemble
        that fits in memory anyway; for genuinely bounded-memory production
        build the stream first (e.g. :func:`repro.traces.synthetic_stream`)
        instead of materialising an ensemble just to wrap it.
        """
        return TraceStream(
            application=self.application,
            count=len(self.traces),
            factory=self.traces.__getitem__,
            metadata=dict(self.metadata),
        )


@dataclass
class TraceStream:
    """A sized, lazily produced sequence of traces — the generator-backed
    counterpart of :class:`TraceEnsemble`.

    ``factory(index)`` builds trace ``index`` on demand; nothing is cached,
    so a sweep iterating the stream holds only the traces currently in
    flight.  The factory must be **deterministic** (same index → same trace)
    — the streaming sweep engine relies on this for checkpoint resume and
    shard/merge byte-identity, and it lets the stream be iterated multiple
    times.  ``count`` is known up front so sweeps keep exact progress totals
    and auto-chunking without materialising anything.
    """

    application: str
    count: int
    factory: Callable[[int], Trace]
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"trace stream count must be >= 0, got {self.count!r}")

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Trace]:
        for index in range(self.count):
            yield self[index]

    def __getitem__(self, index: int) -> Trace:
        if not 0 <= index < self.count:
            raise IndexError(f"trace {index} out of range for {self.count}-trace stream")
        trace = self.factory(index)
        if not isinstance(trace, Trace):
            raise TypeError(
                f"trace stream factory returned {type(trace).__name__} "
                f"for index {index}, expected Trace"
            )
        return trace

    def subset(self, count: int) -> "TraceStream":
        """A stream over the first ``count`` traces (still lazy)."""
        return TraceStream(
            application=self.application,
            count=min(max(count, 0), self.count),
            factory=self.factory,
            metadata=dict(self.metadata),
        )

    def materialize(self) -> TraceEnsemble:
        """Produce every trace now and return a plain :class:`TraceEnsemble`."""
        return TraceEnsemble(
            application=self.application,
            traces=list(self),
            metadata=dict(self.metadata),
        )
