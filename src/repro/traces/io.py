"""Reading and writing trace files.

Two formats are supported:

* a flat CSV with one task per row (``name,volume_bytes,comm_seconds,
  comp_seconds,kind``) plus ``# key: value`` header comments — convenient for
  feeding externally-collected traces into the library;
* a JSON document holding a whole :class:`~repro.traces.model.TraceEnsemble`
  (all processes of a run), used by the experiment harness to cache generated
  workloads.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from .model import Trace, TraceEnsemble, TraceTask

__all__ = [
    "write_trace_csv",
    "read_trace_csv",
    "write_ensemble_json",
    "read_ensemble_json",
]

_CSV_FIELDS = ("name", "volume_bytes", "comm_seconds", "comp_seconds", "kind")


def write_trace_csv(trace: Trace, path: str | Path) -> Path:
    """Write one trace to ``path`` in CSV form; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        handle.write(f"# application: {trace.application}\n")
        handle.write(f"# process: {trace.process}\n")
        for key, value in sorted(trace.metadata.items()):
            handle.write(f"# {key}: {value}\n")
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for task in trace.tasks:
            writer.writerow(
                [task.name, repr(task.volume_bytes), repr(task.comm_seconds), repr(task.comp_seconds), task.kind]
            )
    return path


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv` (or hand-crafted)."""
    path = Path(path)
    application = path.stem
    process = 0
    metadata: dict[str, str] = {}
    tasks: list[TraceTask] = []
    with path.open(newline="") as handle:
        rows = []
        for line in handle:
            if line.startswith("#"):
                key, _, value = line[1:].partition(":")
                key, value = key.strip(), value.strip()
                if key == "application":
                    application = value
                elif key == "process":
                    process = int(value)
                else:
                    metadata[key] = value
            else:
                rows.append(line)
        reader = csv.DictReader(rows)
        for row in reader:
            tasks.append(
                TraceTask(
                    name=row["name"],
                    volume_bytes=float(row["volume_bytes"]),
                    comm_seconds=float(row["comm_seconds"]),
                    comp_seconds=float(row["comp_seconds"]),
                    kind=row.get("kind", "") or "",
                )
            )
    return Trace(application=application, process=process, tasks=tasks, metadata=metadata)


def write_ensemble_json(ensemble: TraceEnsemble, path: str | Path) -> Path:
    """Serialise a whole ensemble (all processes) to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "application": ensemble.application,
        "metadata": ensemble.metadata,
        "traces": [
            {
                "process": trace.process,
                "metadata": trace.metadata,
                "tasks": [
                    {
                        "name": task.name,
                        "volume_bytes": task.volume_bytes,
                        "comm_seconds": task.comm_seconds,
                        "comp_seconds": task.comp_seconds,
                        "kind": task.kind,
                    }
                    for task in trace.tasks
                ],
            }
            for trace in ensemble.traces
        ],
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def read_ensemble_json(path: str | Path) -> TraceEnsemble:
    """Load an ensemble written by :func:`write_ensemble_json`."""
    payload = json.loads(Path(path).read_text())
    traces = [
        Trace(
            application=payload["application"],
            process=entry["process"],
            metadata=dict(entry.get("metadata", {})),
            tasks=[
                TraceTask(
                    name=item["name"],
                    volume_bytes=float(item["volume_bytes"]),
                    comm_seconds=float(item["comm_seconds"]),
                    comp_seconds=float(item["comp_seconds"]),
                    kind=item.get("kind", ""),
                )
                for item in entry["tasks"]
            ],
        )
        for entry in payload["traces"]
    ]
    return TraceEnsemble(
        application=payload["application"],
        traces=traces,
        metadata=dict(payload.get("metadata", {})),
    )
