"""Trace layer: per-process task streams, IO, synthetic generators and statistics."""

from .generator import (
    REGIMES,
    WorkloadRegime,
    regime_trace,
    synthetic_ensemble,
    synthetic_stream,
    synthetic_trace,
)
from .io import read_ensemble_json, read_trace_csv, write_ensemble_json, write_trace_csv
from .model import Trace, TraceEnsemble, TraceStream, TraceTask
from .stats import (
    DistributionSummary,
    WorkloadCharacteristics,
    characterise_ensemble,
    characterise_trace,
    summarise,
)

__all__ = [
    "REGIMES",
    "DistributionSummary",
    "Trace",
    "TraceEnsemble",
    "TraceStream",
    "TraceTask",
    "WorkloadCharacteristics",
    "WorkloadRegime",
    "characterise_ensemble",
    "characterise_trace",
    "read_ensemble_json",
    "read_trace_csv",
    "regime_trace",
    "summarise",
    "synthetic_ensemble",
    "synthetic_stream",
    "synthetic_trace",
    "write_ensemble_json",
    "write_trace_csv",
]
