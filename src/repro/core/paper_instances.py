"""The worked-example instances of the paper (Tables 2–5).

These tiny instances are used throughout Sections 3 and 4 of the paper to
illustrate the behaviour of the heuristic families; the corresponding figures
(Figs. 3–6) are regenerated from them by the example scripts and benchmark
targets.  All of them follow the paper convention that the memory requirement
of a task equals its communication time.
"""

from __future__ import annotations

from .instance import Instance
from .task import Task

__all__ = [
    "proposition1_instance",
    "static_example_instance",
    "dynamic_example_instance",
    "corrected_example_instance",
    "PAPER_INSTANCES",
]


def proposition1_instance() -> Instance:
    """Table 2 — instance where optimal comm and comp orders must differ.

    Memory capacity is 10.  The best permutation schedule has makespan 23
    (Fig. 3a) while allowing different orders achieves 22 (Fig. 3b).
    """
    tasks = [
        Task.from_times("A", comm=0, comp=5),
        Task.from_times("B", comm=4, comp=3),
        Task.from_times("C", comm=1, comp=6),
        Task.from_times("D", comm=3, comp=7),
        Task.from_times("E", comm=6, comp=0.5),
        Task.from_times("F", comm=7, comp=0.5),
    ]
    return Instance(tasks, capacity=10, name="paper/table2-proposition1")


def static_example_instance(capacity: float = 6) -> Instance:
    """Table 3 — task set used to illustrate the static heuristics (Fig. 4)."""
    tasks = [
        Task.from_times("A", comm=3, comp=2),
        Task.from_times("B", comm=1, comp=3),
        Task.from_times("C", comm=4, comp=4),
        Task.from_times("D", comm=2, comp=1),
    ]
    return Instance(tasks, capacity=capacity, name="paper/table3-static")


def dynamic_example_instance(capacity: float = 6) -> Instance:
    """Table 4 — task set used to illustrate the dynamic heuristics (Fig. 5)."""
    tasks = [
        Task.from_times("A", comm=3, comp=2),
        Task.from_times("B", comm=1, comp=6),
        Task.from_times("C", comm=4, comp=6),
        Task.from_times("D", comm=5, comp=1),
    ]
    return Instance(tasks, capacity=capacity, name="paper/table4-dynamic")


def corrected_example_instance(capacity: float = 9) -> Instance:
    """Table 5 — task set for the static-order-with-dynamic-corrections heuristics (Fig. 6).

    The OMIM order of this instance is B, C, D, A, E.
    """
    tasks = [
        Task.from_times("A", comm=4, comp=1),
        Task.from_times("B", comm=2, comp=6),
        Task.from_times("C", comm=8, comp=8),
        Task.from_times("D", comm=5, comp=4),
        Task.from_times("E", comm=3, comp=2),
    ]
    return Instance(tasks, capacity=capacity, name="paper/table5-corrected")


#: Name → factory mapping for all worked examples (used by tests and examples).
PAPER_INSTANCES = {
    "table2": proposition1_instance,
    "table3": static_example_instance,
    "table4": dynamic_example_instance,
    "table5": corrected_example_instance,
}
