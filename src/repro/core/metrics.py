"""Performance metrics used in the paper's evaluation.

The headline metric (Figures 7, 9–13) is the **ratio to optimal**

    r(H) = makespan(H) / OMIM

where OMIM is the optimal makespan without memory constraint.  The ratio is
always at least 1 for feasible schedules; values close to 1 indicate the
heuristic achieves (near-)maximal communication/computation overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .bounds import omim as _omim
from .instance import Instance
from .schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - typing only (core must not import simulator)
    from ..simulator.events import EventTrace

__all__ = ["ratio_to_optimal", "overlap_fraction", "idle_fractions", "ScheduleMetrics", "evaluate"]


def ratio_to_optimal(schedule: Schedule, instance: Instance, *, reference: float | None = None) -> float:
    """Makespan of ``schedule`` divided by OMIM of ``instance``.

    ``reference`` short-circuits the OMIM computation when the caller already
    knows it (the experiment harness computes it once per instance).
    """
    ref = _omim(instance) if reference is None else reference
    makespan = schedule.makespan
    if ref == 0:
        return 1.0 if makespan == 0 else math.inf
    return makespan / ref


def overlap_fraction(schedule: Schedule) -> float:
    """Overlapped time divided by the makespan (0 = sequential, →1 = perfect)."""
    makespan = schedule.makespan
    if makespan == 0:
        return 0.0
    return schedule.overlap_time() / makespan


def idle_fractions(schedule: Schedule) -> tuple[float, float]:
    """``(communication idle fraction, computation idle fraction)`` of the makespan."""
    makespan = schedule.makespan
    if makespan == 0:
        return (0.0, 0.0)
    return (
        schedule.communication_idle_time() / makespan,
        schedule.computation_idle_time() / makespan,
    )


@dataclass(frozen=True, slots=True)
class ScheduleMetrics:
    """All per-schedule metrics reported by the experiment harness."""

    heuristic: str
    instance: str
    capacity: float
    makespan: float
    omim: float
    ratio_to_optimal: float
    peak_memory: float
    overlap_time: float
    communication_idle: float
    computation_idle: float
    task_count: int

    @property
    def overlap_fraction(self) -> float:
        if self.makespan == 0:
            return 0.0
        return self.overlap_time / self.makespan


def evaluate(
    schedule: Schedule,
    instance: Instance,
    *,
    heuristic: str = "",
    reference: float | None = None,
    trace: "EventTrace | None" = None,
) -> ScheduleMetrics:
    """Bundle every metric for one (heuristic, instance) run.

    When the kernel's structured event ``trace`` is available, the overlap,
    idle and peak-memory accounting is read from it directly (O(n log n))
    instead of being re-derived from the finished schedule (the
    schedule-based overlap computation is quadratic in the task count).
    """
    ref = _omim(instance) if reference is None else reference
    makespan = schedule.makespan
    if trace is not None:
        peak_memory = trace.peak_memory()
        overlap_time = trace.overlap_time()
        communication_idle = trace.idle_time("communication")
        computation_idle = trace.idle_time("computation")
    else:
        peak_memory = schedule.peak_memory()
        overlap_time = schedule.overlap_time()
        communication_idle = schedule.communication_idle_time()
        computation_idle = schedule.computation_idle_time()
    return ScheduleMetrics(
        heuristic=heuristic,
        instance=instance.name,
        capacity=instance.capacity,
        makespan=makespan,
        omim=ref,
        ratio_to_optimal=(makespan / ref) if ref > 0 else (1.0 if makespan == 0 else math.inf),
        peak_memory=peak_memory,
        overlap_time=overlap_time,
        communication_idle=communication_idle,
        computation_idle=computation_idle,
        task_count=len(schedule),
    )
