"""Performance metrics used in the paper's evaluation.

The headline metric (Figures 7, 9–13) is the **ratio to optimal**

    r(H) = makespan(H) / OMIM

where OMIM is the optimal makespan without memory constraint.  The ratio is
always at least 1 for feasible schedules; values close to 1 indicate the
heuristic achieves (near-)maximal communication/computation overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .bounds import omim as _omim
from .instance import Instance
from .schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - typing only (core must not import simulator)
    from ..simulator.events import EventTrace

__all__ = [
    "ratio_to_optimal",
    "overlap_fraction",
    "idle_fractions",
    "ScheduleMetrics",
    "OnlineMetrics",
    "evaluate",
    "evaluate_online",
]


def ratio_to_optimal(schedule: Schedule, instance: Instance, *, reference: float | None = None) -> float:
    """Makespan of ``schedule`` divided by OMIM of ``instance``.

    ``reference`` short-circuits the OMIM computation when the caller already
    knows it (the experiment harness computes it once per instance).
    """
    ref = _omim(instance) if reference is None else reference
    makespan = schedule.makespan
    if ref == 0:
        return 1.0 if makespan == 0 else math.inf
    return makespan / ref


def overlap_fraction(schedule: Schedule) -> float:
    """Overlapped time divided by the makespan (0 = sequential, →1 = perfect)."""
    makespan = schedule.makespan
    if makespan == 0:
        return 0.0
    return schedule.overlap_time() / makespan


def idle_fractions(schedule: Schedule) -> tuple[float, float]:
    """``(communication idle fraction, computation idle fraction)`` of the makespan."""
    makespan = schedule.makespan
    if makespan == 0:
        return (0.0, 0.0)
    return (
        schedule.communication_idle_time() / makespan,
        schedule.computation_idle_time() / makespan,
    )


@dataclass(frozen=True, slots=True)
class OnlineMetrics:
    """Arrival-aware metrics of one schedule (streaming workloads).

    * *response time* of a task — completion (end of computation) minus its
      release date; the time the task spent in the system;
    * *stretch* — response time divided by the task's own ``comm + comp``
      (its minimal possible response time on an empty machine), the classic
      slowdown measure for online scheduling;
    * *queue length* — number of tasks that have arrived but not yet
      completed, averaged over ``[first release, last completion]`` and
      tracked at its peak.

    All three degenerate gracefully on offline instances (every release 0):
    response time becomes the completion time and stretch the completion
    time over the task's total work.
    """

    mean_response_time: float
    max_response_time: float
    mean_stretch: float
    max_stretch: float
    avg_queue_length: float
    max_queue_length: int


def evaluate_online(schedule: Schedule) -> OnlineMetrics:
    """Compute :class:`OnlineMetrics` from a schedule of release-dated tasks.

    Release dates are read off the scheduled tasks themselves
    (:attr:`~repro.core.task.Task.release`), so the schedule is
    self-contained; offline schedules (all releases 0) are accepted.
    """
    if not len(schedule):
        return OnlineMetrics(0.0, 0.0, 0.0, 0.0, 0.0, 0)
    responses: list[float] = []
    stretches: list[float] = []
    boundaries: list[tuple[float, int]] = []
    for entry in schedule:
        release = entry.task.release
        response = entry.comp_end - release
        responses.append(response)
        work = entry.task.comm + entry.task.comp
        stretches.append(response / work if work > 0 else 1.0)
        boundaries.append((release, +1))
        boundaries.append((entry.comp_end, -1))
    boundaries.sort()
    queue = 0
    peak = 0
    area = 0.0
    previous = boundaries[0][0]
    for time, delta in boundaries:
        area += queue * (time - previous)
        queue += delta
        peak = max(peak, queue)
        previous = time
    span = boundaries[-1][0] - boundaries[0][0]
    return OnlineMetrics(
        mean_response_time=sum(responses) / len(responses),
        max_response_time=max(responses),
        mean_stretch=sum(stretches) / len(stretches),
        max_stretch=max(stretches),
        avg_queue_length=area / span if span > 0 else float(peak),
        max_queue_length=peak,
    )


@dataclass(frozen=True, slots=True)
class ScheduleMetrics:
    """All per-schedule metrics reported by the experiment harness."""

    heuristic: str
    instance: str
    capacity: float
    makespan: float
    omim: float
    ratio_to_optimal: float
    peak_memory: float
    overlap_time: float
    communication_idle: float
    computation_idle: float
    task_count: int

    @property
    def overlap_fraction(self) -> float:
        if self.makespan == 0:
            return 0.0
        return self.overlap_time / self.makespan


def evaluate(
    schedule: Schedule,
    instance: Instance,
    *,
    heuristic: str = "",
    reference: float | None = None,
    trace: "EventTrace | None" = None,
) -> ScheduleMetrics:
    """Bundle every metric for one (heuristic, instance) run.

    When the kernel's structured event ``trace`` is available, the overlap,
    idle and peak-memory accounting is read from it directly (O(n log n))
    instead of being re-derived from the finished schedule (the
    schedule-based overlap computation is quadratic in the task count).
    """
    ref = _omim(instance) if reference is None else reference
    makespan = schedule.makespan
    if trace is not None:
        peak_memory = trace.peak_memory()
        overlap_time = trace.overlap_time()
        communication_idle = trace.idle_time("communication")
        computation_idle = trace.idle_time("computation")
    else:
        peak_memory = schedule.peak_memory()
        overlap_time = schedule.overlap_time()
        communication_idle = schedule.communication_idle_time()
        computation_idle = schedule.computation_idle_time()
    return ScheduleMetrics(
        heuristic=heuristic,
        instance=instance.name,
        capacity=instance.capacity,
        makespan=makespan,
        omim=ref,
        ratio_to_optimal=(makespan / ref) if ref > 0 else (1.0 if makespan == 0 else math.inf),
        peak_memory=peak_memory,
        overlap_time=overlap_time,
        communication_idle=communication_idle,
        computation_idle=computation_idle,
        task_count=len(schedule),
    )
