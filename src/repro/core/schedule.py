"""Schedules for Problem DT.

A schedule assigns to each task a communication start time and a computation
start time.  The communication link processes one transfer at a time, the
processing unit one computation at a time, a task may only compute once its
transfer has completed, and a task holds its memory from the start of its
communication to the end of its computation.

:class:`Schedule` is a value object: it stores the decisions and derives the
makespan, idle times, memory profile and Gantt-chart information.  Validation
(feasibility with respect to a capacity) lives in
:mod:`repro.core.validation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .task import Task

__all__ = ["ScheduledTask", "Schedule", "MemoryEvent"]


@dataclass(frozen=True, slots=True)
class ScheduledTask:
    """Placement of one task on the two resources.

    ``comm_start``/``comm_end`` bound the data transfer on the communication
    link; ``comp_start``/``comp_end`` bound the execution on the processing
    unit.  Memory is held over ``[comm_start, comp_end)``.
    """

    task: Task
    comm_start: float
    comp_start: float

    def __post_init__(self) -> None:
        if self.comm_start < 0 or self.comp_start < 0:
            raise ValueError(f"negative start time for task {self.task.name!r}")
        if self.comp_start + 1e-9 < self.comm_start + self.task.comm:
            raise ValueError(
                f"task {self.task.name!r} starts computing at {self.comp_start} "
                f"before its transfer completes at {self.comm_start + self.task.comm}"
            )

    @property
    def name(self) -> str:
        return self.task.name

    @property
    def comm_end(self) -> float:
        return self.comm_start + self.task.comm

    @property
    def comp_end(self) -> float:
        return self.comp_start + self.task.comp

    @property
    def memory_interval(self) -> tuple[float, float]:
        """Half-open interval during which the task occupies local memory."""
        return (self.comm_start, self.comp_end)

    @property
    def wait_time(self) -> float:
        """Time spent between the end of the transfer and the start of the computation."""
        return self.comp_start - self.comm_end


@dataclass(frozen=True, slots=True)
class MemoryEvent:
    """One step of the piecewise-constant memory-occupation profile."""

    time: float
    usage: float


class Schedule:
    """An ordered collection of :class:`ScheduledTask` placements."""

    __slots__ = ("_entries", "_by_name")

    def __init__(self, entries: Iterable[ScheduledTask]):
        entries = tuple(entries)
        by_name: dict[str, ScheduledTask] = {}
        for entry in entries:
            if entry.name in by_name:
                raise ValueError(f"task {entry.name!r} scheduled twice")
            by_name[entry.name] = entry
        self._entries = entries
        self._by_name = by_name

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScheduledTask]:
        return iter(self._entries)

    def __getitem__(self, key: int | str) -> ScheduledTask:
        if isinstance(key, str):
            return self._by_name[key]
        return self._entries[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{e.name}@(comm={e.comm_start:g}, comp={e.comp_start:g})" for e in self._entries
        )
        return f"Schedule({parts})"

    @property
    def entries(self) -> tuple[ScheduledTask, ...]:
        return self._entries

    @property
    def tasks(self) -> tuple[Task, ...]:
        return tuple(e.task for e in self._entries)

    def entry(self, name: str) -> ScheduledTask:
        return self._by_name[name]

    # ------------------------------------------------------------------ #
    # Orders
    # ------------------------------------------------------------------ #
    def communication_order(self) -> list[str]:
        """Task names sorted by communication start time (ties: comp start, name)."""
        return [
            e.name
            for e in sorted(self._entries, key=lambda e: (e.comm_start, e.comp_start, e.name))
        ]

    def computation_order(self) -> list[str]:
        """Task names sorted by computation start time (ties: comm start, name)."""
        return [
            e.name
            for e in sorted(self._entries, key=lambda e: (e.comp_start, e.comm_start, e.name))
        ]

    def is_permutation_schedule(self) -> bool:
        """True when communication and computation follow the same order.

        All heuristics of the paper (Section 4, except the MILP) produce
        permutation schedules; Proposition 1 shows optimal schedules need not be.
        """
        return self.communication_order() == self.computation_order()

    # ------------------------------------------------------------------ #
    # Aggregate metrics
    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """Completion time of the last event on either resource."""
        if not self._entries:
            return 0.0
        return max(max(e.comp_end, e.comm_end) for e in self._entries)

    @property
    def communication_busy_time(self) -> float:
        return sum(e.task.comm for e in self._entries)

    @property
    def computation_busy_time(self) -> float:
        return sum(e.task.comp for e in self._entries)

    def communication_idle_time(self) -> float:
        """Idle time on the link within ``[0, makespan]``."""
        return self.makespan - self.communication_busy_time

    def computation_idle_time(self) -> float:
        """Idle time on the processing unit within ``[0, makespan]``."""
        return self.makespan - self.computation_busy_time

    def overlap_time(self) -> float:
        """Total time during which the link and the processor are both busy."""
        if not self._entries:
            return 0.0
        points = sorted(
            {e.comm_start for e in self._entries}
            | {e.comm_end for e in self._entries}
            | {e.comp_start for e in self._entries}
            | {e.comp_end for e in self._entries}
        )
        overlap = 0.0
        for left, right in zip(points, points[1:]):
            mid = 0.5 * (left + right)
            comm_busy = any(e.comm_start <= mid < e.comm_end for e in self._entries)
            comp_busy = any(e.comp_start <= mid < e.comp_end for e in self._entries)
            if comm_busy and comp_busy:
                overlap += right - left
        return overlap

    # ------------------------------------------------------------------ #
    # Memory profile
    # ------------------------------------------------------------------ #
    def memory_profile(self) -> list[MemoryEvent]:
        """Piecewise-constant memory occupation sampled at every breakpoint.

        Returns a list of :class:`MemoryEvent` such that the usage between
        ``events[i].time`` and ``events[i+1].time`` equals ``events[i].usage``.
        Breakpoints closer than a small tolerance are merged, so that
        floating-point noise from numerical solvers does not create spurious
        zero-length usage spikes.
        """
        if not self._entries:
            return []
        deltas: dict[float, float] = {}
        for e in self._entries:
            start, end = e.memory_interval
            deltas[start] = deltas.get(start, 0.0) + e.task.memory
            deltas[end] = deltas.get(end, 0.0) - e.task.memory
        horizon = max(abs(t) for t in deltas)
        # The executors treat a release due within 1e-9 of an instant as
        # already free, so a transfer may start up to 1e-9 (plus float
        # representation error, bounded by 1e-12 * horizon) before the
        # releasing computation ends; breakpoints that close are one instant.
        merge_tolerance = 1e-9 + 1e-12 * horizon
        usage = 0.0
        events: list[MemoryEvent] = []
        for time in sorted(deltas):
            usage += deltas[time]
            # Clamp tiny negative rounding residue.
            if -1e-9 < usage < 0:
                usage = 0.0
            if events and time - events[-1].time <= merge_tolerance:
                events[-1] = MemoryEvent(time=events[-1].time, usage=usage)
            else:
                events.append(MemoryEvent(time=time, usage=usage))
        return events

    def peak_memory(self) -> float:
        """Largest simultaneous memory occupation over the whole schedule."""
        profile = self.memory_profile()
        if not profile:
            return 0.0
        return max(event.usage for event in profile)

    def memory_usage_at(self, time: float) -> float:
        """Memory occupied at instant ``time`` (half-open interval convention)."""
        return float(
            sum(
                e.task.memory
                for e in self._entries
                if e.comm_start <= time < e.comp_end
            )
        )

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def restricted_to(self, names: Sequence[str]) -> "Schedule":
        """Sub-schedule containing only the named tasks (times unchanged)."""
        names_set = set(names)
        return Schedule(e for e in self._entries if e.name in names_set)

    def shifted(self, offset: float) -> "Schedule":
        """Schedule translated in time by ``offset`` (used by batch execution)."""
        if offset < 0 and any(
            e.comm_start + offset < -1e-12 or e.comp_start + offset < -1e-12
            for e in self._entries
        ):
            raise ValueError("shift would move a task before time zero")
        return Schedule(
            ScheduledTask(
                task=e.task,
                comm_start=max(0.0, e.comm_start + offset),
                comp_start=max(0.0, e.comp_start + offset),
            )
            for e in self._entries
        )

    def concatenated(self, other: "Schedule") -> "Schedule":
        """Append ``other`` after this schedule, shifting it by this makespan."""
        shifted = other.shifted(self.makespan)
        return Schedule(list(self._entries) + list(shifted.entries))

    def as_dict(self) -> Mapping[str, tuple[float, float]]:
        """``{task name: (comm_start, comp_start)}`` mapping (for serialisation)."""
        return {e.name: (e.comm_start, e.comp_start) for e in self._entries}

    @classmethod
    def from_dict(
        cls, tasks: Iterable[Task], placements: Mapping[str, tuple[float, float]]
    ) -> "Schedule":
        """Inverse of :meth:`as_dict`."""
        entries = []
        for task in tasks:
            comm_start, comp_start = placements[task.name]
            entries.append(ScheduledTask(task=task, comm_start=comm_start, comp_start=comp_start))
        return cls(entries)

    @classmethod
    def empty(cls) -> "Schedule":
        return cls(())
