"""Problem DT instances: a set of independent tasks plus a memory capacity.

An :class:`Instance` bundles the tasks that a runtime system sees as ready on
one processing unit together with the capacity ``C`` of the local memory node.
It provides the aggregate quantities the paper uses everywhere:

* ``min_capacity`` (``mc`` in the paper) — the smallest capacity for which all
  tasks can be executed at all, i.e. the largest single-task footprint;
* ``total_comm`` / ``total_comp`` — the trivial lower bounds of Figure 8;
* scaling helpers to sweep capacities from ``mc`` to ``2 mc``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from .task import Task, max_memory, max_release, total_comm, total_comp

__all__ = ["Instance"]


@dataclass(frozen=True)
class Instance:
    """A Problem DT instance.

    Parameters
    ----------
    tasks:
        The independent tasks to schedule.  Order is the *submission order*
        used by the ``OS`` heuristic; it carries no other meaning.
    capacity:
        Memory capacity ``C`` of the target node.  ``math.inf`` models the
        unconstrained (2-machine flowshop) case.
    name:
        Optional identifier (trace file name, generator seed, ...).
    """

    tasks: tuple[Task, ...]
    capacity: float = math.inf
    name: str = ""

    def __init__(
        self,
        tasks: Iterable[Task],
        capacity: float = math.inf,
        name: str = "",
    ) -> None:
        tasks = tuple(tasks)
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate task names in instance: {dupes}")
        if capacity <= 0 and tasks:
            raise ValueError(f"memory capacity must be positive, got {capacity}")
        object.__setattr__(self, "tasks", tasks)
        object.__setattr__(self, "capacity", float(capacity))
        object.__setattr__(self, "name", name)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __getitem__(self, key: int | str) -> Task:
        if isinstance(key, str):
            for task in self.tasks:
                if task.name == key:
                    return task
            raise KeyError(key)
        return self.tasks[key]

    def __contains__(self, key: object) -> bool:
        if isinstance(key, Task):
            return key in self.tasks
        return any(t.name == key for t in self.tasks)

    @property
    def task_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tasks)

    def by_name(self) -> Mapping[str, Task]:
        """Dictionary view keyed by task name."""
        return {t.name: t for t in self.tasks}

    # ------------------------------------------------------------------ #
    # Aggregate quantities
    # ------------------------------------------------------------------ #
    @property
    def total_comm(self) -> float:
        """Sum of communication times — lower bound on the link busy time."""
        return total_comm(self.tasks)

    @property
    def total_comp(self) -> float:
        """Sum of computation times — lower bound on the processor busy time."""
        return total_comp(self.tasks)

    @property
    def sequential_makespan(self) -> float:
        """Makespan with zero overlap (upper bound, Figure 8's ``sum+sum``)."""
        return self.total_comm + self.total_comp

    @property
    def resource_lower_bound(self) -> float:
        """``max(sum comm, sum comp)`` — the area lower bound of Figure 8."""
        return max(self.total_comm, self.total_comp)

    @property
    def min_capacity(self) -> float:
        """``mc``: the smallest memory capacity able to hold every single task."""
        return max_memory(self.tasks)

    @property
    def has_memory_constraint(self) -> bool:
        return math.isfinite(self.capacity)

    @property
    def is_trivially_feasible(self) -> bool:
        """True when every task individually fits in the capacity."""
        return self.min_capacity <= self.capacity or not self.tasks

    @property
    def max_release(self) -> float:
        """Latest release (arrival) date of any task; 0 for offline instances."""
        return max_release(self.tasks)

    @property
    def has_releases(self) -> bool:
        """True when at least one task arrives after time zero.

        Release-dated instances are scheduled by the streaming runtime
        (:mod:`repro.simulator.online`): the kernel gates each task's
        transfer on its arrival and solvers re-rank the ready set.
        """
        return any(t.release > 0.0 for t in self.tasks)

    def releases(self) -> Mapping[str, float]:
        """``{task name: release date}`` view of the arrival pattern."""
        return {t.name: t.release for t in self.tasks}

    def compute_intensive_fraction(self) -> float:
        """Fraction of tasks with ``comp >= comm`` (Table 6 discussions)."""
        if not self.tasks:
            return 0.0
        return sum(1 for t in self.tasks if t.is_compute_intensive) / len(self.tasks)

    # ------------------------------------------------------------------ #
    # Derivations
    # ------------------------------------------------------------------ #
    def with_capacity(self, capacity: float) -> "Instance":
        """Same tasks under a different memory capacity."""
        return Instance(self.tasks, capacity=capacity, name=self.name)

    def with_capacity_factor(self, factor: float) -> "Instance":
        """Capacity expressed as a multiple of ``mc`` (paper sweeps 1.0–2.0)."""
        if factor <= 0:
            raise ValueError(f"capacity factor must be positive, got {factor}")
        return self.with_capacity(self.min_capacity * factor)

    def without_memory_constraint(self) -> "Instance":
        return self.with_capacity(math.inf)

    def with_releases(
        self, releases: Mapping[str, float] | Sequence[float]
    ) -> "Instance":
        """Same tasks stamped with release (arrival) dates.

        ``releases`` is either a ``{task name: release}`` mapping (names
        missing from it keep their current release) or a sequence of dates
        aligned with the submission order.
        """
        if isinstance(releases, Mapping):
            stamped = [
                t.released_at(releases[t.name]) if t.name in releases else t
                for t in self.tasks
            ]
        else:
            if len(releases) != len(self.tasks):
                raise ValueError(
                    f"expected {len(self.tasks)} release dates, got {len(releases)}"
                )
            stamped = [t.released_at(r) for t, r in zip(self.tasks, releases)]
        return Instance(stamped, capacity=self.capacity, name=self.name)

    def without_releases(self) -> "Instance":
        """The offline relaxation: every task available at time zero."""
        if not self.has_releases:
            return self
        return Instance(
            [t.released_at(0.0) for t in self.tasks],
            capacity=self.capacity,
            name=self.name,
        )

    def subset(self, names: Sequence[str]) -> "Instance":
        """Instance restricted to the named tasks (keeps the given order)."""
        lookup = self.by_name()
        return Instance([lookup[n] for n in names], capacity=self.capacity, name=self.name)

    def sorted(self, key: Callable[[Task], float], reverse: bool = False) -> "Instance":
        """Instance whose submission order is re-sorted by ``key``."""
        return Instance(
            sorted(self.tasks, key=key, reverse=reverse),
            capacity=self.capacity,
            name=self.name,
        )

    def batches(self, batch_size: int) -> list["Instance"]:
        """Split into successive batches of ``batch_size`` tasks (Section 6.3).

        Unnamed instances get deterministic ``"batch-<k>"`` fallback names, so
        batch provenance survives into downstream
        :class:`~repro.api.results.ResultSet` rows.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        out = []
        for start in range(0, len(self.tasks), batch_size):
            chunk = self.tasks[start : start + batch_size]
            index = start // batch_size
            name = f"{self.name}[batch {index}]" if self.name else f"batch-{index}"
            out.append(Instance(chunk, capacity=self.capacity, name=name))
        return out

    def scaled(self, *, comm: float = 1.0, comp: float = 1.0, memory: float = 1.0) -> "Instance":
        """Scale every task; capacity is scaled by the memory factor."""
        capacity = self.capacity * memory if math.isfinite(self.capacity) else self.capacity
        return Instance(
            [t.scaled(comm=comm, comp=comp, memory=memory) for t in self.tasks],
            capacity=capacity,
            name=self.name,
        )
