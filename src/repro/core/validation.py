"""Feasibility validation for Problem DT schedules.

A schedule is feasible for an instance with capacity ``C`` when

1. every task of the instance appears exactly once,
2. the communication link carries at most one transfer at a time,
3. the processing unit executes at most one task at a time,
4. every task starts computing no earlier than its transfer completes,
5. at every instant the memory held by tasks whose interval
   ``[comm_start, comp_end)`` covers that instant does not exceed ``C``, and
6. no task starts its transfer before its release (arrival) date.

The checks report *all* violations (not just the first) so tests and the
experiment harness can produce actionable diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from .instance import Instance
from .schedule import Schedule, ScheduledTask

if TYPE_CHECKING:  # pragma: no cover - typing only (core must not import simulator)
    from ..simulator.resources import MachineModel

__all__ = [
    "Violation",
    "ValidationReport",
    "validate_schedule",
    "check_schedule",
    "InfeasibleScheduleError",
    "TOLERANCE",
]

#: Absolute tolerance used for all floating-point feasibility comparisons.
TOLERANCE = 1e-9


@dataclass(frozen=True, slots=True)
class Violation:
    """A single feasibility violation."""

    kind: str
    message: str
    tasks: tuple[str, ...] = ()
    time: float = math.nan


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_schedule`."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def is_feasible(self) -> bool:
        return not self.violations

    def add(self, kind: str, message: str, tasks: Sequence[str] = (), time: float = math.nan) -> None:
        self.violations.append(Violation(kind=kind, message=message, tasks=tuple(tasks), time=time))

    def kinds(self) -> set[str]:
        return {v.kind for v in self.violations}

    def summary(self) -> str:
        if self.is_feasible:
            return "feasible"
        lines = [f"{len(self.violations)} violation(s):"]
        lines.extend(f"  - [{v.kind}] {v.message}" for v in self.violations)
        return "\n".join(lines)


class InfeasibleScheduleError(ValueError):
    """Raised by :func:`check_schedule` when a schedule is infeasible."""

    def __init__(self, report: ValidationReport):
        super().__init__(report.summary())
        self.report = report


def _check_resource_exclusivity(
    report: ValidationReport,
    entries: Sequence[ScheduledTask],
    resource: str,
) -> None:
    """Check that intervals on one resource do not overlap pairwise."""
    if resource == "communication":
        intervals = [(e.comm_start, e.comm_end, e.name) for e in entries if e.task.comm > 0]
    else:
        intervals = [(e.comp_start, e.comp_end, e.name) for e in entries if e.task.comp > 0]
    intervals.sort()
    for (s1, e1, n1), (s2, e2, n2) in zip(intervals, intervals[1:]):
        if s2 < e1 - TOLERANCE:
            report.add(
                kind=f"{resource}-overlap",
                message=(
                    f"tasks {n1!r} and {n2!r} overlap on the {resource} resource: "
                    f"[{s1:g}, {e1:g}) and [{s2:g}, {e2:g})"
                ),
                tasks=(n1, n2),
                time=s2,
            )


def _check_resource_concurrency(
    report: ValidationReport,
    entries: Sequence[ScheduledTask],
    resource: str,
    limit: int,
) -> None:
    """Check that at most ``limit`` intervals run concurrently on one resource.

    Generalisation of :func:`_check_resource_exclusivity` for machine models
    with parallel links or processing units.
    """
    if resource == "communication":
        intervals = [(e.comm_start, e.comm_end, e.name) for e in entries if e.task.comm > 0]
    else:
        intervals = [(e.comp_start, e.comp_end, e.name) for e in entries if e.task.comp > 0]
    boundaries = sorted(
        [(start + TOLERANCE, 1, name) for start, _, name in intervals]
        + [(end, -1, name) for _, end, name in intervals]
    )
    depth = 0
    over = False
    for time, delta, name in boundaries:
        depth += delta
        if depth > limit and not over:
            # Report once per contiguous excess window, not per boundary.
            over = True
            active = sorted(n for s, e, n in intervals if s + TOLERANCE <= time < e)
            report.add(
                kind=f"{resource}-overlap",
                message=(
                    f"{depth} tasks run concurrently on the {resource} resource "
                    f"(limit {limit}) around time {time:g}: {active}"
                ),
                tasks=active,
                time=time,
            )
        elif depth <= limit:
            over = False


def validate_schedule(
    schedule: Schedule,
    instance: Instance,
    *,
    machine: "MachineModel | None" = None,
) -> ValidationReport:
    """Validate ``schedule`` against ``instance`` and return a full report.

    ``machine`` adapts the feasibility rules to a custom machine model: up to
    ``link_count`` concurrent transfers, up to ``cpu_count`` concurrent
    computations, and the model's capacity override instead of the
    instance's.  ``None`` checks the paper's machine (rules 1–5 above).
    """
    report = ValidationReport()

    scheduled_names = {e.name for e in schedule}
    instance_names = set(instance.task_names)
    missing = sorted(instance_names - scheduled_names)
    extra = sorted(scheduled_names - instance_names)
    if missing:
        report.add("missing-task", f"tasks not scheduled: {missing}", tasks=missing)
    if extra:
        report.add("unknown-task", f"scheduled tasks not in instance: {extra}", tasks=extra)

    lookup = instance.by_name()
    for entry in schedule:
        reference = lookup.get(entry.name)
        if reference is not None and (
            not math.isclose(reference.comm, entry.task.comm, abs_tol=TOLERANCE)
            or not math.isclose(reference.comp, entry.task.comp, abs_tol=TOLERANCE)
            or not math.isclose(reference.memory, entry.task.memory, abs_tol=TOLERANCE)
        ):
            report.add(
                "task-mismatch",
                f"task {entry.name!r} has different characteristics in the schedule "
                f"(comm={entry.task.comm}, comp={entry.task.comp}, mem={entry.task.memory}) "
                f"and the instance (comm={reference.comm}, comp={reference.comp}, "
                f"mem={reference.memory})",
                tasks=(entry.name,),
            )

    # Precedence (transfer before computation) is enforced by the ScheduledTask
    # constructor, but re-check here in case entries were built via subclassing.
    for entry in schedule:
        if entry.comp_start + TOLERANCE < entry.comm_end:
            report.add(
                "precedence",
                f"task {entry.name!r} computes at {entry.comp_start:g} before its "
                f"transfer completes at {entry.comm_end:g}",
                tasks=(entry.name,),
                time=entry.comp_start,
            )

    for entry in schedule:
        if entry.task.release > 0 and entry.comm_start + TOLERANCE < entry.task.release:
            report.add(
                "release",
                f"task {entry.name!r} starts its transfer at {entry.comm_start:g} "
                f"before its release date {entry.task.release:g}",
                tasks=(entry.name,),
                time=entry.comm_start,
            )

    link_count = 1 if machine is None else machine.link_count
    cpu_count = 1 if machine is None else machine.cpu_count
    if link_count == 1:
        _check_resource_exclusivity(report, schedule.entries, "communication")
    else:
        _check_resource_concurrency(report, schedule.entries, "communication", link_count)
    if cpu_count == 1:
        _check_resource_exclusivity(report, schedule.entries, "computation")
    else:
        _check_resource_concurrency(report, schedule.entries, "computation", cpu_count)

    capacity = instance.capacity
    if machine is not None and machine.capacity is not None:
        capacity = machine.capacity
    if math.isfinite(capacity):
        # Absolute tolerance for small (unit-free) instances, relative tolerance
        # for byte-sized capacities where float accumulation noise is larger.
        memory_tolerance = max(TOLERANCE, 1e-9 * capacity)
        for event in schedule.memory_profile():
            if event.usage > capacity + memory_tolerance:
                active = sorted(
                    e.name
                    for e in schedule
                    if e.comm_start <= event.time < e.comp_end
                )
                report.add(
                    "memory",
                    f"memory usage {event.usage:g} exceeds capacity {capacity:g} "
                    f"at time {event.time:g} (active: {active})",
                    tasks=active,
                    time=event.time,
                )

    return report


def check_schedule(
    schedule: Schedule,
    instance: Instance,
    *,
    machine: "MachineModel | None" = None,
) -> Schedule:
    """Validate and return ``schedule``; raise :class:`InfeasibleScheduleError` otherwise."""
    report = validate_schedule(schedule, instance, machine=machine)
    if not report.is_feasible:
        raise InfeasibleScheduleError(report)
    return schedule
