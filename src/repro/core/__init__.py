"""Core problem model: tasks, instances, schedules, bounds and metrics."""

from .bounds import BoundSet, area_lower_bound, bounds, omim, sequential_upper_bound
from .instance import Instance
from .metrics import (
    OnlineMetrics,
    ScheduleMetrics,
    evaluate,
    evaluate_online,
    idle_fractions,
    overlap_fraction,
    ratio_to_optimal,
)
from .paper_instances import (
    PAPER_INSTANCES,
    corrected_example_instance,
    dynamic_example_instance,
    proposition1_instance,
    static_example_instance,
)
from .schedule import MemoryEvent, Schedule, ScheduledTask
from .task import (
    Task,
    TaskKind,
    max_memory,
    max_release,
    tasks_from_pairs,
    total_comm,
    total_comp,
)
from .validation import (
    TOLERANCE,
    InfeasibleScheduleError,
    ValidationReport,
    Violation,
    check_schedule,
    validate_schedule,
)

__all__ = [
    "Task",
    "TaskKind",
    "Instance",
    "Schedule",
    "ScheduledTask",
    "MemoryEvent",
    "BoundSet",
    "OnlineMetrics",
    "ScheduleMetrics",
    "ValidationReport",
    "Violation",
    "InfeasibleScheduleError",
    "TOLERANCE",
    "PAPER_INSTANCES",
    "area_lower_bound",
    "bounds",
    "check_schedule",
    "corrected_example_instance",
    "dynamic_example_instance",
    "evaluate",
    "evaluate_online",
    "idle_fractions",
    "max_memory",
    "max_release",
    "omim",
    "overlap_fraction",
    "proposition1_instance",
    "ratio_to_optimal",
    "sequential_upper_bound",
    "static_example_instance",
    "tasks_from_pairs",
    "total_comm",
    "total_comp",
    "validate_schedule",
]
