"""Task model for the data-transfer ordering problem (Problem DT).

A task is characterised by three non-negative quantities:

* ``comm`` — the time needed to transfer its input data from the remote memory
  node ``M'`` to the local memory ``M`` over the (single) communication link.
* ``comp`` — the time needed to execute the task on the processing unit ``P``
  once its input data resides in ``M``.
* ``memory`` — the amount of local memory occupied by the task, held from the
  *start of its communication* until the *end of its computation*.

The paper assumes, for all worked examples and for the NWChem traces, that the
memory requirement equals the communication volume and therefore (with unit
bandwidth) the communication time.  :func:`Task.from_times` captures that
convention; an explicit ``memory`` can always be supplied for the more general
model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence


__all__ = [
    "Task",
    "TaskKind",
    "total_comm",
    "total_comp",
    "max_memory",
    "max_release",
    "tasks_from_pairs",
]


class TaskKind:
    """Intensity classification used throughout the paper.

    A task is *compute intensive* when ``comp >= comm`` and *communication
    intensive* otherwise (Section 3 of the paper).
    """

    COMPUTE_INTENSIVE = "compute-intensive"
    COMMUNICATION_INTENSIVE = "communication-intensive"


@dataclass(frozen=True, slots=True)
class Task:
    """One independent task of a Problem DT instance.

    Parameters
    ----------
    name:
        Identifier of the task; unique within an :class:`~repro.core.instance.Instance`.
    comm:
        Communication (input-transfer) time, ``CM_i`` in the paper.
    comp:
        Computation time, ``CP_i`` in the paper.
    memory:
        Memory footprint held from the start of the communication to the end of
        the computation.  Defaults to ``comm`` (the paper's convention of
        memory-proportional-to-communication).
    release:
        Release (arrival) date: the instant at which the runtime system first
        *sees* the task.  The paper's offline model has every task available
        up front (``release == 0``, the default); the streaming runtime of
        :mod:`repro.simulator.online` gates a task's transfer on its release.
    tag:
        Optional free-form label (e.g. ``"tensor_contraction"``) carried along
        from trace generators; never interpreted by the schedulers.
    """

    name: str
    comm: float
    comp: float
    memory: float = field(default=math.nan)
    release: float = 0.0
    tag: str = ""

    def __post_init__(self) -> None:
        if self.comm < 0:
            raise ValueError(f"task {self.name!r}: negative communication time {self.comm}")
        if self.comp < 0:
            raise ValueError(f"task {self.name!r}: negative computation time {self.comp}")
        if math.isnan(self.memory):
            object.__setattr__(self, "memory", float(self.comm))
        if self.memory < 0:
            raise ValueError(f"task {self.name!r}: negative memory requirement {self.memory}")
        if not self.release >= 0:
            raise ValueError(f"task {self.name!r}: release date must be >= 0, got {self.release}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_times(cls, name: str, comm: float, comp: float, *, tag: str = "") -> "Task":
        """Build a task whose memory requirement equals its communication time."""
        return cls(name=name, comm=float(comm), comp=float(comp), tag=tag)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """Paper classification: compute vs. communication intensive."""
        if self.comp >= self.comm:
            return TaskKind.COMPUTE_INTENSIVE
        return TaskKind.COMMUNICATION_INTENSIVE

    @property
    def is_compute_intensive(self) -> bool:
        return self.comp >= self.comm

    @property
    def is_communication_intensive(self) -> bool:
        return self.comp < self.comm

    @property
    def total_time(self) -> float:
        """Sum of communication and computation times (used by IOCCS/DOCCS)."""
        return self.comm + self.comp

    @property
    def acceleration(self) -> float:
        """Ratio comp/comm used by the MAMR selection rule.

        A zero communication time yields ``inf`` (such a task is always the
        most "accelerated" choice, which matches the intent of the rule: it
        occupies the link for no time at all).
        """
        if self.comm == 0:
            return math.inf if self.comp > 0 else 0.0
        return self.comp / self.comm

    def scaled(self, *, comm: float = 1.0, comp: float = 1.0, memory: float = 1.0) -> "Task":
        """Return a copy with the three quantities multiplied by the given factors."""
        return replace(
            self,
            comm=self.comm * comm,
            comp=self.comp * comp,
            memory=self.memory * memory,
        )

    def renamed(self, name: str) -> "Task":
        return replace(self, name=name)

    def released_at(self, release: float) -> "Task":
        """Return a copy carrying a different release (arrival) date."""
        return replace(self, release=float(release))


# ---------------------------------------------------------------------- #
# Aggregate helpers
# ---------------------------------------------------------------------- #
def total_comm(tasks: Iterable[Task]) -> float:
    """Sum of communication times of ``tasks``."""
    return float(sum(t.comm for t in tasks))


def total_comp(tasks: Iterable[Task]) -> float:
    """Sum of computation times of ``tasks``."""
    return float(sum(t.comp for t in tasks))


def max_memory(tasks: Iterable[Task]) -> float:
    """Largest single-task memory footprint (the minimum feasible capacity)."""
    tasks = list(tasks)
    if not tasks:
        return 0.0
    return float(max(t.memory for t in tasks))


def max_release(tasks: Iterable[Task]) -> float:
    """Latest release (arrival) date; 0 for offline instances and no tasks."""
    return float(max((t.release for t in tasks), default=0.0))


def tasks_from_pairs(
    pairs: Sequence[tuple[float, float]] | Iterator[tuple[float, float]],
    *,
    prefix: str = "T",
) -> list[Task]:
    """Build tasks ``prefix0, prefix1, ...`` from ``(comm, comp)`` pairs.

    Memory requirements follow the paper convention (equal to communication
    time).  Convenient in tests and property-based generators.
    """
    return [Task.from_times(f"{prefix}{i}", comm, comp) for i, (comm, comp) in enumerate(pairs)]
