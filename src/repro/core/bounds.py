"""Makespan bounds for Problem DT.

The paper uses the makespan of Johnson's schedule with infinite memory —
called **OMIM** (Optimal Makespan Infinite Memory) — as the reference lower
bound for every experiment: the performance metric of Figures 7–13 is the
ratio of a heuristic's makespan to OMIM.

Besides OMIM, this module exposes the two trivial bounds of Figure 8:

* ``max(sum comm, sum comp)`` — no schedule can finish before either resource
  has processed all its work (area bound);
* ``sum comm + sum comp`` — the fully sequential schedule with zero overlap
  is always feasible whenever the instance is feasible at all, so it is an
  upper bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .instance import Instance

__all__ = ["BoundSet", "omim", "area_lower_bound", "sequential_upper_bound", "bounds"]


def area_lower_bound(instance: Instance) -> float:
    """``max(sum comm, sum comp)``: the resource-occupation lower bound."""
    return instance.resource_lower_bound


def sequential_upper_bound(instance: Instance) -> float:
    """``sum comm + sum comp``: makespan of the zero-overlap schedule."""
    return instance.sequential_makespan


def omim(instance: Instance) -> float:
    """Optimal makespan with infinite memory (Johnson's algorithm, Alg. 1).

    This is the paper's lower bound for the memory-constrained problem.
    """
    # Imported lazily to avoid a circular import (flowshop uses core types).
    from ..flowshop.johnson import johnson_schedule

    return johnson_schedule(instance.without_memory_constraint()).makespan


@dataclass(frozen=True, slots=True)
class BoundSet:
    """All the bounds the paper reports for one instance (Figure 8)."""

    total_comm: float
    total_comp: float
    area_lower_bound: float
    omim: float
    sequential_upper_bound: float

    @property
    def max_possible_overlap_fraction(self) -> float:
        """Largest fraction of the sequential makespan that overlap can hide.

        For HF the paper observes this is about 20%; for CCSD it approaches 50%.
        """
        if self.sequential_upper_bound == 0:
            return 0.0
        return 1.0 - self.area_lower_bound / self.sequential_upper_bound

    def normalised(self) -> "BoundSet":
        """Bounds divided by OMIM, matching the y-axis of Figure 8."""
        ref = self.omim
        if ref == 0:
            return self
        return BoundSet(
            total_comm=self.total_comm / ref,
            total_comp=self.total_comp / ref,
            area_lower_bound=self.area_lower_bound / ref,
            omim=1.0,
            sequential_upper_bound=self.sequential_upper_bound / ref,
        )


def bounds(instance: Instance) -> BoundSet:
    """Compute every bound of interest for ``instance``."""
    return BoundSet(
        total_comm=instance.total_comm,
        total_comp=instance.total_comp,
        area_lower_bound=area_lower_bound(instance),
        omim=omim(instance),
        sequential_upper_bound=sequential_upper_bound(instance),
    )
