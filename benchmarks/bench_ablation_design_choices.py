"""Ablation benches for the design choices called out in DESIGN.md.

Three ablations, each exercised on one simulated CCSD trace at a moderate
capacity:

* **minimum-idle pre-filter** — the paper's dynamic selection first keeps the
  candidates inducing minimal idle time on the processor, then applies the
  criterion.  The ablation applies the criterion directly to every fitting
  task.
* **dynamic correction** — OOSIM (pure static Johnson order) versus its
  corrected variants (Section 4.3), quantifying what the corrections buy.
* **batch size** — Section 6.3 uses batches of 100 tasks; the sweep measures
  how smaller scheduling windows degrade the achievable overlap.
"""

from __future__ import annotations

import pytest

from repro.chemistry import ccsd_ensemble
from repro.core import omim
from repro import get_solver
from repro.simulator import (
    CriterionPolicy,
    execute_in_batches,
    execute_with_policy,
    largest_communication,
)
from repro.viz import render_series_table


@pytest.fixture(scope="module")
def ccsd_instance(config):
    trace = ccsd_ensemble(processes=config.processes, traces=1, seed=config.seed)[0]
    return trace.to_instance_with_factor(1.5)


class _UnfilteredPolicy(CriterionPolicy):
    """LCMR without the minimum-idle pre-filter (pure criterion selection)."""

    def select(self, candidates, state):  # type: ignore[override]
        return min(candidates, key=self.criterion)


@pytest.mark.benchmark(group="ablation")
def test_ablation_minimum_idle_filter(benchmark, ccsd_instance):
    def run():
        filtered = execute_with_policy(ccsd_instance, CriterionPolicy(largest_communication))
        unfiltered = execute_with_policy(ccsd_instance, _UnfilteredPolicy(largest_communication))
        return filtered.makespan, unfiltered.makespan

    filtered, unfiltered = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = omim(ccsd_instance)
    print(
        "\nminimum-idle filter ablation (LCMR, CCSD, 1.5 mc): "
        f"with filter {filtered / reference:.4f}, without {unfiltered / reference:.4f} (ratio to OMIM)"
    )
    # The ablation is a measurement, not a correctness property: report both
    # ratios and only check that the schedules respect the OMIM lower bound.
    assert filtered >= reference - 1e-9
    assert unfiltered >= reference - 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_dynamic_corrections(benchmark, ccsd_instance):
    def run():
        return {
            name: get_solver(name).schedule(ccsd_instance).makespan
            for name in ("OOSIM", "OOLCMR", "OOSCMR", "OOMAMR")
        }

    makespans = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = omim(ccsd_instance)
    ratios = {name: value / reference for name, value in makespans.items()}
    print("\ndynamic-correction ablation (CCSD, 1.5 mc):", {k: round(v, 4) for k, v in ratios.items()})
    # At least one corrected variant improves on the uncorrected Johnson order.
    assert min(ratios["OOLCMR"], ratios["OOSCMR"], ratios["OOMAMR"]) <= ratios["OOSIM"] + 1e-9


@pytest.mark.benchmark(group="ablation")
def test_ablation_batch_size(benchmark, ccsd_instance):
    heuristic = get_solver("OOLCMR")
    sizes = (25, 50, 100, 200)

    def run():
        return {
            size: execute_in_batches(ccsd_instance, heuristic.schedule, batch_size=size).makespan
            for size in sizes
        }

    makespans = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = omim(ccsd_instance)
    series = {"OOLCMR": [(float(size), makespans[size] / reference) for size in sizes]}
    print()
    print(
        render_series_table(
            series,
            title="batch-size ablation (CCSD, 1.5 mc)",
            x_label="batch size",
            y_label="ratio to OMIM",
        )
    )
    # Every batched run stays above the OMIM lower bound; the full-window run
    # is recorded for EXPERIMENTS.md (batching generally costs a few percent).
    assert all(value >= reference - 1e-9 for value in makespans.values())
