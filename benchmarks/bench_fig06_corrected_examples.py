"""Figure 6 — static-order-with-dynamic-corrections schedules on the Table 5 task set."""

import pytest

from conftest import run_figure
from repro.experiments import figure06_corrected_examples


@pytest.mark.benchmark(group="figure06")
def test_figure06_corrected_examples(benchmark, config):
    result = run_figure(benchmark, lambda cfg: figure06_corrected_examples(cfg), config)
    assert result.data["makespans"] == {"OOLCMR": 33.0, "OOSCMR": 35.0, "OOMAMR": 33.0}
