"""Table 6 — heuristics and their favorable situations.

Besides printing the table, this benchmark checks two of its qualitative rows
on synthetic regime workloads: IOCMS is optimal for compute-intensive tasks
with unconstrained memory, DOCPS for communication-intensive ones.
"""

import pytest

from conftest import run_figure
from repro.core import omim
from repro.experiments import table06_favorable_situations
from repro import get_solver
from repro.traces import regime_trace


@pytest.mark.benchmark(group="table6")
def test_table6_listing(benchmark, config):
    result = run_figure(benchmark, lambda cfg: table06_favorable_situations(cfg), config)
    assert "OOSIM" in result.text


@pytest.mark.benchmark(group="table6")
@pytest.mark.parametrize(
    "regime, heuristic, keep_compute_intensive",
    [("compute-heavy", "IOCMS", True), ("communication-heavy", "DOCPS", False)],
)
def test_table6_optimality_rows(benchmark, regime, heuristic, keep_compute_intensive):
    """With no memory restriction the matching sort order reaches the optimum.

    Table 6 states IOCMS is optimal when every task is compute intensive and
    DOCPS when every task is communication intensive; the workloads are
    filtered accordingly before the check.
    """
    trace = regime_trace(regime, tasks=120, seed=17)
    instance = trace.to_instance()  # infinite capacity
    names = [
        task.name
        for task in instance
        if (task.comp >= task.comm) == keep_compute_intensive
    ]
    instance = instance.subset(names)

    def run():
        return get_solver(heuristic).schedule(instance).makespan

    makespan = benchmark.pedantic(run, rounds=1, iterations=1)
    reference = omim(instance)
    print(
        f"\n{heuristic} on {regime} ({len(instance)} tasks): "
        f"makespan {makespan:.6f} vs OMIM {reference:.6f}"
    )
    assert makespan == pytest.approx(reference, rel=1e-9)
