"""Observability overhead — tracing must be cheap on, free off.

One n=10³ kernel benchmark, three measurements:

* **disabled** — the kernel with tracing off.  The instrumentation left in
  the hot path is a handful of ``obs.is_enabled()`` guards per run; their
  cost is also measured directly (a timed no-op-guard loop) and expressed
  as a fraction of the kernel run, which must stay **under 1%**.  A
  derived bound is used instead of differencing two wall-clock medians
  because a sub-1% difference between ~ms-scale runs is smaller than
  scheduler noise on shared runners.
* **traced** — the same runs with tracing enabled (span buffer cleared
  between rounds so it cannot grow across the benchmark).  The median
  slowdown against the disabled path must stay **under 10%**.

``REPRO_SCALE=ci`` (the CI smoke step) runs fewer, shorter rounds and
gates with doubled headroom to survive noisy shared runners; any other
scale applies the tight bars and writes the table to
``benchmarks/results/obs_overhead.txt``.
"""

from __future__ import annotations

import statistics
import time

import numpy as np

import repro.obs as obs
from conftest import RESULTS_DIR
from repro.core import Instance, Task
from repro.experiments.config import scaled_config
from repro.simulator import CriterionPolicy, largest_communication, simulate

#: Task count for the timed kernel runs (the issue's n=10³ bar).
TASKS = 1_000

#: Tight-but-feasible capacity, as a multiple of the largest footprint.
CAPACITY_FACTOR = 1.25

#: Upper bound on disabled-path obs touch points in one kernel run: the
#: run-level guards in engine.py/columnar.py plus one per-task guard of
#: slack for future instrumentation (today the per-event loop has none).
GUARDS_PER_RUN = 8 + TASKS


def make_instance(n: int = TASKS, seed: int = 7) -> Instance:
    rng = np.random.default_rng(seed)
    tasks = [
        Task(
            f"t{i:04d}",
            float(rng.uniform(0.1, 10.0)),
            float(rng.uniform(0.1, 10.0)),
            memory=float(rng.uniform(0.1, 10.0)),
        )
        for i in range(n)
    ]
    capacity = max(task.memory for task in tasks) * CAPACITY_FACTOR
    return Instance(tasks, capacity=capacity, name=f"obs-bench/n{n}")


def run_seconds(runner, *, rounds: int, min_seconds: float) -> float:
    """Median per-run seconds over ``rounds`` timed batches."""
    medians = []
    for _ in range(rounds):
        runs = 0
        start = time.perf_counter()
        while True:
            runner()
            runs += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_seconds:
                break
        medians.append(elapsed / runs)
    return statistics.median(medians)


def guard_seconds(calls: int = 200_000) -> float:
    """Per-call cost of the disabled-path guard pattern."""
    assert not obs.is_enabled()
    start = time.perf_counter()
    for _ in range(calls):
        if obs.is_enabled():  # pragma: no cover - tracing is off here
            obs.record_span("never", start, start)
    return (time.perf_counter() - start) / calls


def test_obs_overhead():
    scale_is_ci = scaled_config() is scaled_config("ci")
    rounds, min_seconds = (3, 0.2) if scale_is_ci else (5, 0.5)

    instance = make_instance()
    policy = CriterionPolicy(largest_communication)

    def kernel_run():
        return simulate(instance, policy, engine="object").schedule

    assert not obs.is_enabled()
    disabled_s = run_seconds(kernel_run, rounds=rounds, min_seconds=min_seconds)

    obs.enable()
    try:

        def traced_run():
            result = kernel_run()
            obs.clear()  # keep the span buffer from growing across rounds
            return result

        traced_s = run_seconds(traced_run, rounds=rounds, min_seconds=min_seconds)
    finally:
        obs.disable()
        obs.clear()

    traced_overhead = traced_s / disabled_s - 1.0
    noop_fraction = guard_seconds() * GUARDS_PER_RUN / disabled_s

    report = "\n".join(
        [
            f"Observability overhead on the object kernel (n={TASKS}, dynamic selection)",
            "",
            f"disabled path:        {disabled_s * 1e3:8.3f} ms/run",
            f"traced path:          {traced_s * 1e3:8.3f} ms/run",
            f"traced overhead:      {traced_overhead * 100:8.2f} %   (gate: < 10%)",
            f"no-op guard bound:    {noop_fraction * 100:8.4f} %   (gate: < 1%, "
            f"{GUARDS_PER_RUN} guards/run)",
        ]
    )
    print()
    print(report)

    # Smoke mode gates with doubled headroom: shared CI runners jitter far
    # more than a dedicated box, and the recorded full-scale table must not
    # be clobbered by a noisy truncated one.
    traced_bar, noop_bar = (0.20, 0.02) if scale_is_ci else (0.10, 0.01)
    assert traced_overhead < traced_bar, (
        f"traced kernel overhead {traced_overhead:.1%} exceeds {traced_bar:.0%}"
    )
    assert noop_fraction < noop_bar, (
        f"disabled-path bound {noop_fraction:.2%} exceeds {noop_bar:.0%}"
    )

    if not scale_is_ci:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "obs_overhead.txt").write_text(report + "\n")


if __name__ == "__main__":  # pragma: no cover - manual run
    test_obs_overhead()
