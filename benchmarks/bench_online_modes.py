"""Online execution modes — offline vs barrier-batch vs pipelined-batch vs
fully-online, across capacity factors.

Four ways to run the same task stream through the kernel:

* **offline** — the paper's model: every task visible up front;
* **barrier** — Section 6.3 batches: the machine drains between batches;
* **pipelined** — batches without the drain barrier: the next batch's
  transfers start as soon as link and memory allow;
* **online** — streaming arrivals (Poisson at a fixed load): the scheduler
  only ever sees the arrived tasks.

The table reports the makespan of each mode (and the online mode's mean
response time) per capacity factor and heuristic.  Pipelined <= barrier is
asserted per fixed-order heuristic (a theorem: identical transfer order,
every event only moves earlier) and on average across every row, and the
full-scale table is recorded to ``benchmarks/results/online_modes.txt``.

Offline is *not* asserted as a floor for every heuristic: re-planned orders
(OOSIM's per-batch Johnson) can beat their own global plan under tight
memory, because short windows never over-commit the ledger — visible in the
factor-1.0 rows of the recorded table.  Only OS, whose order is the
submission order in every mode, has offline == pipelined by construction.

``REPRO_SCALE=ci`` (the CI smoke step) uses a smaller stream and skips the
table write so the recorded full-scale table is never clobbered.
"""

from __future__ import annotations

import numpy as np

from conftest import RESULTS_DIR
from repro.api import solve
from repro.core import Instance, Task
from repro.experiments.config import scaled_config
from repro.simulator import PoissonArrivals

#: (task count, batch size) per scale.
CI_SHAPE = (120, 20)
FULL_SHAPE = (400, 50)

#: Capacity factors swept (multiples of the largest footprint).
CAPACITY_FACTORS = (1.0, 1.25, 1.5, 2.0)

#: Heuristics compared: one per category (submission / static / dynamic /
#: corrected) plus Johnson's offline-optimal order.
HEURISTICS = ("OS", "OOSIM", "DOCCS", "LCMR", "OOMAMR")

#: Fixed-transfer-order heuristics, for which pipelined <= barrier is a
#: theorem (same order, every event only moves earlier).
FIXED_ORDER = ("OS", "OOSIM", "DOCCS")

#: Submission pressure of the fully-online mode.
ONLINE_LOAD = 1.5


def make_instance(n: int, seed: int = 42) -> Instance:
    """A mixed-intensity stream with memory decoupled from transfer time."""
    rng = np.random.default_rng(seed)
    tasks = [
        Task(
            f"t{i:04d}",
            float(rng.uniform(0.1, 10.0)),
            float(rng.uniform(0.1, 10.0)),
            memory=float(rng.uniform(0.1, 10.0)),
        )
        for i in range(n)
    ]
    return Instance(tasks, capacity=max(t.memory for t in tasks), name=f"bench/n{n}")


def run_modes(instance: Instance, heuristic: str, batch_size: int) -> dict[str, float]:
    offline = solve(instance, heuristic)
    barrier = solve(instance, heuristic, batch_size=batch_size)
    pipelined = solve(instance, heuristic, batch_size=batch_size, pipelined=True)
    online = solve(
        instance, heuristic, arrivals=PoissonArrivals(load=ONLINE_LOAD), arrival_seed=7
    )
    return {
        "offline": offline.makespan,
        "barrier": barrier.makespan,
        "pipelined": pipelined.makespan,
        "online": online.makespan,
        "online_response": online.online.mean_response_time,
    }


def test_online_modes():
    scale_is_ci = scaled_config() is scaled_config("ci")
    n, batch_size = CI_SHAPE if scale_is_ci else FULL_SHAPE
    base = make_instance(n)
    lines = [
        f"Online execution modes: makespan per mode (n={n}, batch={batch_size}, "
        f"Poisson load={ONLINE_LOAD})",
        "",
        f"{'cap':>5} {'heuristic':<8} {'offline':>9} {'barrier':>9} "
        f"{'pipelined':>9} {'online':>9} {'resp':>8}",
    ]
    rows: list[tuple[str, dict[str, float]]] = []
    for factor in CAPACITY_FACTORS:
        instance = base.with_capacity_factor(factor)
        for heuristic in HEURISTICS:
            modes = run_modes(instance, heuristic, batch_size)
            rows.append((heuristic, modes))
            lines.append(
                f"{factor:>5.2f} {heuristic:<8} {modes['offline']:>9.1f} "
                f"{modes['barrier']:>9.1f} {modes['pipelined']:>9.1f} "
                f"{modes['online']:>9.1f} {modes['online_response']:>8.1f}"
            )
            # Dropping the drain barrier never hurts a fixed transfer order.
            if heuristic in FIXED_ORDER:
                assert modes["pipelined"] <= modes["barrier"] + 1e-9, heuristic
            # OS keeps the submission order in every mode, so its pipelined
            # run degenerates to the offline one.
            if heuristic == "OS":
                assert modes["pipelined"] == modes["offline"]

    barrier_mean = sum(m["barrier"] for _, m in rows) / len(rows)
    pipelined_mean = sum(m["pipelined"] for _, m in rows) / len(rows)
    lines += [
        "",
        f"mean barrier   makespan: {barrier_mean:9.1f}",
        f"mean pipelined makespan: {pipelined_mean:9.1f} "
        f"({100 * (1 - pipelined_mean / barrier_mean):.1f}% less)",
    ]
    report = "\n".join(lines)
    print()
    print(report)

    # The recorded headline: pipelining beats the barrier on average.
    assert pipelined_mean < barrier_mean

    if not scale_is_ci:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "online_modes.txt").write_text(report + "\n")


if __name__ == "__main__":  # pragma: no cover - manual run
    test_online_modes()
