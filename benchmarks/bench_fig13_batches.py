"""Figure 13 — batched scheduling (Section 6.3), best variant per category."""

import pytest

from conftest import run_figure
from repro.experiments import figure13_batches


@pytest.mark.benchmark(group="figure13")
def test_figure13_batches(benchmark, config):
    result = run_figure(benchmark, lambda cfg: figure13_batches(cfg), config)
    applications = {record.application for record in result.records}
    assert applications == {"HF", "CCSD"}
    assert all(record.ratio_to_optimal >= 1.0 - 1e-9 for record in result.records)
    # Batching keeps HF close to the optimum (its ratios stay below the CCSD ones).
    hf_ratios = [r.ratio_to_optimal for r in result.records if r.application == "HF"]
    ccsd_ratios = [r.ratio_to_optimal for r in result.records if r.application == "CCSD"]
    assert sum(hf_ratios) / len(hf_ratios) < sum(ccsd_ratios) / len(ccsd_ratios)
