"""Figure 13 — batched scheduling (Section 6.3), best variant per category."""

import pytest

from conftest import run_figure
from repro.experiments import figure13_batches


@pytest.mark.benchmark(group="figure13")
def test_figure13_batches(benchmark, config):
    result = run_figure(benchmark, lambda cfg: figure13_batches(cfg), config)
    assert set(result.records.column("application")) == {"HF", "CCSD"}
    assert all(ratio >= 1.0 - 1e-9 for ratio in result.records.column("ratio_to_optimal"))
    # Batching keeps HF close to the optimum (its ratios stay below the CCSD ones).
    means = result.records.aggregate("ratio_to_optimal", by=("application",), how="mean")
    assert means["HF"] < means["CCSD"]
