"""Serving latency — concurrent clients against a live ``repro serve`` daemon.

Boots the real daemon as a subprocess (``python -m repro serve``), drives it
with N concurrent HTTP clients issuing ``/solve`` requests over distinct
instances, and reports client-observed p50/p99/mean latency and aggregate
throughput.  The run ends with SIGTERM and asserts the graceful-shutdown
contract: exit code 0 and the "drained" line on stdout.

``REPRO_SCALE=ci`` (or ``--smoke`` from the shell) shrinks the load to a
few requests per client — enough for CI to prove the server boots, answers
concurrent clients and drains cleanly, without gating on shared-runner wall
clock.  Any other scale runs the full load and writes the table to
``benchmarks/results/serve_latency.txt``.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from conftest import RESULTS_DIR
from repro.core import Instance, Task
from repro.experiments.config import scaled_config
from repro.serve import quantile
from repro.serve.protocol import instance_to_wire

LISTENING = re.compile(r"repro-serve listening on http://([\d.]+):(\d+)")

#: (clients, requests per client, tasks per instance) per scale.
CI_SHAPE = (8, 4, 30)
FULL_SHAPE = (8, 40, 120)

WORKERS = 2


def make_instance(seed: int, tasks: int) -> Instance:
    rng = np.random.default_rng(seed)
    items = [
        Task.from_times(
            f"t{i}", float(rng.uniform(0.1, 9.0)), float(rng.uniform(0.1, 9.0))
        )
        for i in range(tasks)
    ]
    instance = Instance(items, name=f"bench-{seed}")
    return instance.with_capacity(instance.min_capacity * 1.5)


def boot_daemon() -> tuple[subprocess.Popen, str, int]:
    src = Path(__file__).resolve().parents[1] / "src"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--workers", str(WORKERS), "--queue-limit", "64",
            "--no-cache", "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
    )
    line = proc.stdout.readline()
    match = LISTENING.search(line)
    assert match, f"daemon did not report a listening address: {line!r}"
    return proc, match.group(1), int(match.group(2))


def post_solve(host: str, port: int, payload: dict, timeout: float = 60.0) -> dict:
    request = urllib.request.Request(
        f"http://{host}:{port}/solve",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def run_load(
    host: str, port: int, *, clients: int, requests_each: int, tasks: int
) -> tuple[list[float], float]:
    """Drive the daemon with concurrent clients; returns (latencies, wall)."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[Exception] = []
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        # Distinct instances per request: no cache effects, no shared state.
        bodies = [
            {
                "instance": instance_to_wire(
                    make_instance(seed=index * 1000 + n, tasks=tasks)
                ),
                "solver": "LCMR",
            }
            for n in range(requests_each)
        ]
        barrier.wait()
        for body in bodies:
            started = time.perf_counter()
            try:
                answer = post_solve(host, port, body)
            except Exception as error:  # noqa: BLE001 - recorded, fails the bench
                errors.append(error)
                return
            latencies[index].append(time.perf_counter() - started)
            assert answer["solver"] == "LCMR" and answer["makespan"] > 0

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start
    assert not errors, f"{len(errors)} client request(s) failed: {errors[:3]}"
    flat = [sample for per_client in latencies for sample in per_client]
    assert len(flat) == clients * requests_each
    return flat, wall


def test_serve_latency():
    scale_is_ci = scaled_config() is scaled_config("ci")
    clients, requests_each, tasks = CI_SHAPE if scale_is_ci else FULL_SHAPE

    proc, host, port = boot_daemon()
    try:
        latencies, wall = run_load(
            host, port, clients=clients, requests_each=requests_each, tasks=tasks
        )
    except BaseException:
        proc.kill()
        proc.wait()
        raise

    total = clients * requests_each
    report_lines = [
        "Serving latency: concurrent clients against a live `python -m repro serve`",
        f"load: {clients} concurrent clients x {requests_each} sequential /solve "
        f"requests each ({total} total), {tasks}-task instances, solver LCMR",
        f"daemon: {WORKERS} worker threads, queue limit 64, cache disabled",
        "",
        f"{'metric':<22} {'value':>12}",
        f"{'p50 latency':<22} {quantile(latencies, 0.50) * 1e3:>9.1f} ms",
        f"{'p99 latency':<22} {quantile(latencies, 0.99) * 1e3:>9.1f} ms",
        f"{'mean latency':<22} {sum(latencies) / total * 1e3:>9.1f} ms",
        f"{'max latency':<22} {max(latencies) * 1e3:>9.1f} ms",
        f"{'throughput':<22} {total / wall:>9.1f} req/s",
        f"{'wall clock':<22} {wall:>9.2f} s",
    ]

    # The graceful-shutdown contract is part of the benchmark: SIGTERM must
    # drain and exit 0 every single run, whatever the load was.
    proc.send_signal(signal.SIGTERM)
    out, _err = proc.communicate(timeout=60)
    assert proc.returncode == 0, f"daemon exited {proc.returncode}"
    assert "shut down gracefully (drained)" in out
    report_lines += ["", "graceful shutdown: SIGTERM drained in-flight work, exit 0"]

    import os

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    if cores < 4:
        report_lines += [
            "",
            f"note: this run saw only {cores} usable core(s); the daemon's worker",
            "threads time-share one core, so latency under concurrency reflects",
            "queueing rather than parallel service.  Regenerate on a multi-core",
            "host for service-time-bound numbers.",
        ]
    report = "\n".join(report_lines)
    print()
    print(report)

    # Smoke mode proves boot/serve/drain; only a full run records the table.
    if not scale_is_ci:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "serve_latency.txt").write_text(report + "\n")


if __name__ == "__main__":  # pragma: no cover - manual run
    import os

    if "--smoke" in sys.argv[1:]:
        os.environ["REPRO_SCALE"] = "ci"
    test_serve_latency()
    print("bench_serve_latency: OK")
