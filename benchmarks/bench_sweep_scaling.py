"""Sweep scaling — serial vs thread vs process backends, wall-clock.

Times one multi-trace heuristic sweep (a ``Study`` over a synthetic
ensemble) on every execution backend at 1/2/4/8 workers, asserting first
that every backend produces a byte-identical ``ResultSet``.  The thread
backend documents the GIL ceiling (the pure-Python kernel serializes, so
threads buy almost nothing); the process backend is the one expected to
scale with cores.

``REPRO_SCALE=ci`` (the default, used by the CI smoke step) shrinks the
sweep and only checks equivalence: wall clock on shared CI runners is too
noisy to gate on.  Any other scale runs the full sweep, writes the table to
``benchmarks/results/sweep_scaling.txt``, and — when the host actually has
4+ usable cores — asserts the process backend beats serial by at least 3x
at 4 workers.
"""

from __future__ import annotations

import os
import time

from conftest import RESULTS_DIR
from repro.api import Study
from repro.experiments.config import scaled_config
from repro.traces.generator import synthetic_ensemble

#: (traces, tasks per trace, capacity factors, worker counts) per scale.
CI_SHAPE = (3, 40, (1.0, 1.5), (2,))
FULL_SHAPE = (8, 350, (1.0, 1.25, 1.5, 1.75, 2.0), (1, 2, 4, 8))

SOLVERS = ("LCMR", "MAMR", "OOMAMR")


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_study(ensemble, factors) -> Study:
    return Study().traces(ensemble).capacities(*factors).solvers(*SOLVERS)


def timed_run(study: Study) -> tuple[float, str]:
    start = time.perf_counter()
    results = study.run()
    return time.perf_counter() - start, results.to_json()


def test_sweep_scaling():
    scale_is_ci = scaled_config() is scaled_config("ci")
    traces, tasks, factors, worker_counts = CI_SHAPE if scale_is_ci else FULL_SHAPE
    ensemble = synthetic_ensemble(
        "mixed-intensity", processes=traces, tasks_per_process=tasks, seed=2019
    )

    serial_seconds, reference = timed_run(build_study(ensemble, factors))
    cores = usable_cores()
    lines = [
        "Sweep scaling: one Study, three execution backends (wall-clock seconds)",
        f"workload: {traces} traces x {tasks} tasks x {len(factors)} capacities "
        f"x {len(SOLVERS)} heuristics; host: {cores} usable core(s)",
        "",
        f"{'backend':<10} {'workers':>7} {'seconds':>9} {'vs serial':>10}",
        f"{'serial':<10} {1:>7} {serial_seconds:>9.2f} {1.0:>9.2f}x",
    ]
    speedups: dict[tuple[str, int], float] = {}
    for backend in ("threads", "processes"):
        for workers in worker_counts:
            seconds, payload = timed_run(
                build_study(ensemble, factors).parallel(workers, backend=backend)
            )
            assert payload == reference, f"{backend}@{workers} diverged from serial"
            speedup = serial_seconds / seconds
            speedups[(backend, workers)] = speedup
            lines.append(f"{backend:<10} {workers:>7} {seconds:>9.2f} {speedup:>9.2f}x")
    if cores < 4:
        lines += [
            "",
            f"note: this run saw only {cores} usable core(s), so every backend is",
            "bound by the same single core and the process backend can only add",
            "overhead; regenerate on a 4+ core host to observe the scaling (the",
            ">=3x bar below is asserted automatically there).",
        ]
    report = "\n".join(lines)
    print()
    print(report)

    # Smoke mode (ci) only checks the byte-identical assertions above; the
    # recorded full-scale table must not be clobbered by a truncated one.
    if not scale_is_ci:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "sweep_scaling.txt").write_text(report + "\n")
        # The scaling bar only binds where the hardware can deliver it: a
        # single-core container cannot speed anything up with processes.
        if cores >= 4:
            best = max(speedups[("processes", w)] for w in worker_counts if w >= 4)
            assert best >= 3.0, f"process backend speedup {best:.2f}x < 3x: {speedups}"


if __name__ == "__main__":  # pragma: no cover - manual run
    test_sweep_scaling()
