"""Figure 5 — dynamic heuristic schedules on the Table 4 task set."""

import pytest

from conftest import run_figure
from repro.experiments import figure05_dynamic_examples


@pytest.mark.benchmark(group="figure05")
def test_figure05_dynamic_examples(benchmark, config):
    result = run_figure(benchmark, lambda cfg: figure05_dynamic_examples(cfg), config)
    assert result.data["makespans"] == {"LCMR": 23.0, "SCMR": 25.0, "MAMR": 24.0}
