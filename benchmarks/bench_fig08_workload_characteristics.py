"""Figure 8 — HF and CCSD workload characteristics (ratios to OMIM)."""

import pytest

from conftest import run_figure
from repro.experiments import figure08_workload_characteristics


@pytest.mark.benchmark(group="figure08")
def test_figure08_workload_characteristics(benchmark, config):
    result = run_figure(benchmark, lambda cfg: figure08_workload_characteristics(cfg), config)
    hf, ccsd = result.data["HF"], result.data["CCSD"]
    # HF is communication dominated (~20% possible overlap), CCSD is balanced
    # (~40-50%); CCSD's minimum capacity dwarfs HF's (1.8 GB vs 176 KB).
    assert hf["overlap"].median < 0.35
    assert ccsd["overlap"].median > hf["overlap"].median
    assert hf["mc"].median < 1e6 < ccsd["mc"].median
    assert hf["groups"]["sum comm"].median > hf["groups"]["sum comp"].median
