"""Portfolio vs single-best vs virtual-best across workload regimes.

Table 6's point is that no single heuristic dominates; this benchmark
measures what the portfolio layer buys back.  A mixed sweep over the paper's
workload shapes — HF-like homogeneous tiling, CCSD-like heterogeneous
mixes, compute/communication-heavy and mixed-intensity regimes — crossed
with capacity factors runs, per instance:

* every **fixed** heuristic (the twelve orderings of Figures 9/11);
* ``portfolio.select`` — the Table 6 selector, one member per instance;
* ``portfolio.race`` — the default six-member race (virtual best of its
  members, with incumbent pruning);
* the **oracle** — the per-instance best fixed heuristic (virtual best).

The recorded headline: ``portfolio.select`` beats *every* fixed heuristic on
mean ratio-to-OMIM across the sweep at single-solver cost, and the race
closes most of the remaining gap to the oracle.  Both are asserted, plus
the race's per-instance guarantee (never worse than any of its members).

``REPRO_SCALE=ci`` (the CI smoke step) uses a smaller sweep and skips the
table write so the recorded full-scale table is never clobbered.
"""

from __future__ import annotations

from conftest import RESULTS_DIR
from repro.api import solve
from repro.experiments.config import scaled_config
from repro.flowshop.johnson import omim_makespan
from repro.portfolio import DEFAULT_RACE_MEMBERS, SelectingSolver
from repro.traces import regime_trace

#: Workload regimes swept: HF-like (homogeneous), CCSD-like (heterogeneous)
#: and the Table 6 intensity mixes.
REGIMES = (
    "homogeneous",
    "heterogeneous",
    "compute-heavy",
    "communication-heavy",
    "mixed-intensity",
    "balanced",
)

#: (task count, capacity factors) per scale.
CI_SHAPE = (60, (1.0, 1.5, 2.0))
FULL_SHAPE = (120, (1.0, 1.25, 1.5, 2.0))

SEED = 11

#: The fixed single-heuristic baselines (Figure 9/11 line-up sans GG/BP,
#: which need finite capacities tuned to their assumptions).
FIXED = (
    "OS",
    "OOSIM",
    "IOCMS",
    "DOCPS",
    "IOCCS",
    "DOCCS",
    "LCMR",
    "SCMR",
    "MAMR",
    "OOLCMR",
    "OOSCMR",
    "OOMAMR",
)


def test_portfolio_vs_single_vs_oracle():
    scale_is_ci = scaled_config() is scaled_config("ci")
    tasks, factors = CI_SHAPE if scale_is_ci else FULL_SHAPE

    lines = [
        "Portfolio vs single-best vs virtual-best: ratio to OMIM "
        f"(tasks={tasks}, seed={SEED})",
        "",
        f"{'regime':<20} {'cap':>5} {'select->':<8} {'select':>7} {'race->':<8} "
        f"{'race':>7} {'oracle->':<8} {'oracle':>7}",
    ]
    fixed_ratios: dict[str, list[float]] = {name: [] for name in FIXED}
    select_ratios: list[float] = []
    race_ratios: list[float] = []
    oracle_ratios: list[float] = []

    for regime in REGIMES:
        trace = regime_trace(regime, tasks=tasks, seed=SEED)
        for factor in factors:
            instance = trace.to_instance(trace.min_capacity_bytes * factor)
            reference = omim_makespan(instance)
            ratios = {
                name: solve(instance, name, reference=reference).ratio_to_optimal
                for name in FIXED
            }
            for name in FIXED:
                fixed_ratios[name].append(ratios[name])

            choice = SelectingSolver().choose(instance)
            select_ratios.append(ratios[choice])

            race = solve(instance, "portfolio.race", reference=reference)
            race_ratios.append(race.ratio_to_optimal)
            # Per-instance guarantee: the race never loses to any member.
            member_best = min(ratios[name] for name in DEFAULT_RACE_MEMBERS)
            assert race.ratio_to_optimal <= member_best + 1e-9, (regime, factor)

            oracle_name = min(ratios, key=lambda name: (ratios[name], name))
            oracle_ratios.append(ratios[oracle_name])
            lines.append(
                f"{regime:<20} {factor:>5.2f} {choice:<8} {ratios[choice]:>7.4f} "
                f"{race.selected_solver:<8} {race.ratio_to_optimal:>7.4f} "
                f"{oracle_name:<8} {ratios[oracle_name]:>7.4f}"
            )

    def mean(values: list[float]) -> float:
        return sum(values) / len(values)

    lines += ["", "mean ratio to OMIM over the whole sweep:"]
    for name in FIXED:
        lines.append(f"  {name:<18} {mean(fixed_ratios[name]):.4f}")
    select_mean = mean(select_ratios)
    race_mean = mean(race_ratios)
    oracle_mean = mean(oracle_ratios)
    lines += [
        f"  {'portfolio.select':<18} {select_mean:.4f}",
        f"  {'portfolio.race':<18} {race_mean:.4f}",
        f"  {'oracle (virtual)':<18} {oracle_mean:.4f}",
    ]
    report = "\n".join(lines)
    print()
    print(report)

    # The recorded headline: selection beats every fixed single heuristic on
    # mean ratio-to-OMIM, at single-solver cost.
    for name in FIXED:
        assert select_mean <= mean(fixed_ratios[name]) + 1e-12, name
    # Racing is at least as good as selection on average, and neither can
    # beat the per-instance oracle.
    assert race_mean <= select_mean + 1e-9
    assert oracle_mean <= race_mean + 1e-9

    if not scale_is_ci:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "portfolio.txt").write_text(report + "\n")


if __name__ == "__main__":  # pragma: no cover - manual run
    test_portfolio_vs_single_vs_oracle()
