"""Table 1 / Theorem 2 — the 3-Partition reduction round trip.

Regenerates the NP-completeness construction: reduce a 3-Partition instance to
Problem DT, build the block schedule of Figure 2 from a partition, check it is
feasible with makespan exactly L, and recover the partition back from the
schedule.
"""

import numpy as np
import pytest

from repro.core import validate_schedule
from repro.flowshop import (
    ThreePartitionInstance,
    partition_from_schedule,
    reduce_three_partition,
    schedule_from_partition,
    solve_three_partition,
)


def _random_yes_instance(rng: np.random.Generator, m: int = 5) -> ThreePartitionInstance:
    """Build a 3-Partition yes-instance by sampling m triplets with equal sums."""
    b = 60
    values = []
    for _ in range(m):
        a = int(rng.integers(10, 30))
        c = int(rng.integers(10, min(45, b - a - 5)))
        values.extend([a, c, b - a - c])
    order = rng.permutation(len(values))
    return ThreePartitionInstance(tuple(int(values[i]) for i in order))


def _round_trip(m: int) -> float:
    rng = np.random.default_rng(42 + m)
    source = _random_yes_instance(rng, m=m)
    reduction = reduce_three_partition(source)
    triplets = solve_three_partition(source)
    assert triplets is not None, "generated instance should be a yes-instance"
    schedule = schedule_from_partition(reduction, triplets)
    assert validate_schedule(schedule, reduction.instance).is_feasible
    assert schedule.makespan == pytest.approx(reduction.target_makespan)
    recovered = partition_from_schedule(reduction, schedule)
    assert len(recovered) == source.m
    return schedule.makespan


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("m", [3, 5, 8])
def test_table1_reduction_round_trip(benchmark, m):
    makespan = benchmark.pedantic(_round_trip, args=(m,), rounds=1, iterations=1)
    print(f"\nTable 1 reduction, m={m}: target makespan reached = {makespan:g}")
