"""Table 2 / Proposition 1 / Figure 3 — same-order vs free-order optima."""

import pytest

from conftest import run_figure
from repro.experiments import table02_proposition1


@pytest.mark.benchmark(group="table2")
def test_table2_proposition1(benchmark, config):
    result = run_figure(benchmark, lambda cfg: table02_proposition1(cfg), config)
    assert result.data["free_makespan"] < result.data["permutation_makespan"]
    assert result.data["free_makespan"] == pytest.approx(22.0)
