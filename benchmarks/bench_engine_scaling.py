"""Engine scaling — seed executors vs kernel vs columnar, schedules/sec.

Two comparisons on random instances, schedules asserted byte-identical
before timing so every speedup is measured on equal work:

* **seed vs kernel** — the three execution modes (fixed order, dynamic
  selection, corrected order) on n ∈ {50, 200, 1000}: the frozen seed
  executors in ``repro.simulator._reference`` (O(n²) holder re-sum)
  against the object kernel (incremental ``MemoryLedger``).
* **kernel vs columnar** — the array-native engine of
  :mod:`repro.simulator.columnar` against the object kernel at n = 10⁴
  (all three modes) and, in full mode, fixed order at n = 10⁵ plus a
  columnar-only n = 10⁶ probe.  The seed executors are O(n²) and sit out
  these sizes.

``REPRO_SCALE=ci`` (the default, used by the CI smoke step) stops at n=200
for the seed comparison and asserts the columnar engine is at least 5x the
object kernel on fixed order at n=10⁴; any other scale includes n=1000
(kernel ≥ 2x seed there), the large columnar sizes, and writes the table
to ``benchmarks/results/engine_scaling.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import RESULTS_DIR
from repro.core import Instance, Task
from repro.experiments.config import scaled_config
from repro.simulator import (
    CorrectedOrderPolicy,
    CriterionPolicy,
    FixedOrderPolicy,
    execute_fixed_order,
    execute_with_policy,
    largest_communication,
    maximum_acceleration,
    simulate,
)
from repro.simulator._reference import (
    ReferenceCorrectedOrderPolicy,
    reference_execute_fixed_order,
    reference_execute_with_policy,
)

#: Task counts per scale; the 2x acceptance bar applies at n=1000.
CI_SIZES = (50, 200)
FULL_SIZES = (50, 200, 1000)

#: Kernel-vs-columnar sizes; the 5x acceptance bar applies at n=10_000.
COLUMNAR_CI_SIZES = (10_000,)
COLUMNAR_FULL_SIZES = (10_000, 100_000)
COLUMNAR_ONLY_SIZE = 1_000_000

#: Tight-but-feasible capacity, as a multiple of the largest footprint.
CAPACITY_FACTOR = 1.25


def make_instance(n: int, seed: int = 7) -> Instance:
    rng = np.random.default_rng(seed)
    tasks = [
        Task(
            f"t{i:04d}",
            float(rng.uniform(0.1, 10.0)),
            float(rng.uniform(0.1, 10.0)),
            memory=float(rng.uniform(0.1, 10.0)),
        )
        for i in range(n)
    ]
    capacity = max(task.memory for task in tasks) * CAPACITY_FACTOR
    return Instance(tasks, capacity=capacity, name=f"bench/n{n}")


def modes(instance: Instance):
    """(mode name, seed runner, kernel runner) for the three execution modes."""
    order = sorted(instance.tasks, key=lambda t: (-(t.comm + t.comp), t.name))
    johnson = [task.name for task in sorted(instance.tasks, key=lambda t: t.name)]
    return (
        (
            "fixed-order",
            lambda: reference_execute_fixed_order(instance, order),
            lambda: execute_fixed_order(instance, order),
        ),
        (
            "dynamic",
            lambda: reference_execute_with_policy(
                instance, CriterionPolicy(largest_communication)
            ),
            lambda: execute_with_policy(instance, CriterionPolicy(largest_communication)),
        ),
        (
            "corrected",
            lambda: reference_execute_with_policy(
                instance,
                ReferenceCorrectedOrderPolicy(order=johnson, criterion=maximum_acceleration),
            ),
            lambda: execute_with_policy(
                instance,
                CorrectedOrderPolicy(order=tuple(johnson), criterion=maximum_acceleration),
            ),
        ),
    )


def throughput(runner, *, min_seconds: float = 0.2, min_rounds: int = 3) -> float:
    """Schedules per second, best of three timed rounds."""
    best = 0.0
    for _ in range(min_rounds):
        runs = 0
        start = time.perf_counter()
        while True:
            runner()
            runs += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_seconds:
                break
        best = max(best, runs / elapsed)
    return best


def columnar_modes(instance: Instance):
    """(mode name, policy) pairs for the kernel-vs-columnar comparison.

    Policies are shared between the two engines and across timing rounds —
    exactly how a sweep reuses them — so the columnar order cache works for
    the fast path the way it does in production.
    """
    order = sorted(instance.tasks, key=lambda t: (-(t.comm + t.comp), t.name))
    johnson = tuple(task.name for task in sorted(instance.tasks, key=lambda t: t.name))
    return (
        ("fixed-order", FixedOrderPolicy(tuple(order))),
        ("dynamic", CriterionPolicy(largest_communication)),
        ("corrected", CorrectedOrderPolicy(order=johnson, criterion=maximum_acceleration)),
    )


def engine_runner(instance: Instance, policy, engine: str):
    """A timed runner for one (instance, policy) pair on one engine."""

    def run():
        return simulate(instance, policy, engine=engine).schedule

    return run


def test_engine_scaling():
    scale_is_ci = scaled_config() is scaled_config("ci")
    sizes = CI_SIZES if scale_is_ci else FULL_SIZES
    lines = [
        "Engine scaling: seed executors vs unified kernel (schedules/sec)",
        "",
        f"{'n':>7} {'mode':<12} {'seed/s':>10} {'kernel/s':>10} {'speedup':>8}",
    ]
    speedups: dict[tuple[int, str], float] = {}
    for n in sizes:
        instance = make_instance(n)
        for mode, seed_runner, kernel_runner in modes(instance):
            assert kernel_runner() == seed_runner(), f"{mode} schedules diverged at n={n}"
            seed_rate = throughput(seed_runner)
            kernel_rate = throughput(kernel_runner)
            speedup = kernel_rate / seed_rate
            speedups[(n, mode)] = speedup
            lines.append(
                f"{n:>7} {mode:<12} {seed_rate:>10.1f} {kernel_rate:>10.1f} {speedup:>7.1f}x"
            )

    # ------------------------------------------------------------------ #
    # Columnar engine vs object kernel (the seed executors are O(n²) and
    # cannot reach these sizes).
    # ------------------------------------------------------------------ #
    lines += [
        "",
        "Columnar engine vs object kernel (schedules/sec)",
        "",
        f"{'n':>7} {'mode':<12} {'object/s':>10} {'columnar/s':>12} {'speedup':>8}",
    ]
    columnar_speedups: dict[tuple[int, str], float] = {}
    columnar_sizes = COLUMNAR_CI_SIZES if scale_is_ci else COLUMNAR_FULL_SIZES
    for n in columnar_sizes:
        instance = make_instance(n)
        for mode, policy in columnar_modes(instance):
            if scale_is_ci and mode != "fixed-order":
                continue  # smoke gates on fixed order only; keep CI fast
            if n > COLUMNAR_CI_SIZES[0] and mode != "fixed-order":
                continue  # the object kernel's selection modes crawl at 10^5
            object_runner = engine_runner(instance, policy, "object")
            columnar_runner = engine_runner(instance, policy, "columnar")
            assert columnar_runner() == object_runner(), f"{mode} diverged at n={n}"
            object_rate = throughput(object_runner)
            columnar_rate = throughput(columnar_runner)
            speedup = columnar_rate / object_rate
            columnar_speedups[(n, mode)] = speedup
            lines.append(
                f"{n:>7} {mode:<12} {object_rate:>10.1f} {columnar_rate:>12.1f} {speedup:>7.1f}x"
            )

    if not scale_is_ci:
        # Columnar-only probe: 10^6 tasks end-to-end, makespan from the lazy
        # schedule's column reduction (no row materialisation).
        instance = make_instance(COLUMNAR_ONLY_SIZE)
        policy = FixedOrderPolicy(instance.tasks)
        start = time.perf_counter()
        result = simulate(instance, policy, engine="columnar")
        makespan = result.schedule.makespan
        elapsed = time.perf_counter() - start
        lines += [
            "",
            f"Columnar-only: n={COLUMNAR_ONLY_SIZE:,} fixed order in "
            f"{elapsed:.2f}s (makespan {makespan:.1f})",
        ]
        assert elapsed < 60.0, f"10^6-task columnar run took {elapsed:.1f}s"

    report = "\n".join(lines)
    print()
    print(report)

    # The columnar fast path must beat the object kernel at least 5x on
    # fixed order at n=10^4 — gated in smoke mode too: the margin is wide
    # enough (~7-8x measured) to survive noisy shared CI runners.
    assert columnar_speedups[(10_000, "fixed-order")] >= 5.0, columnar_speedups

    # Smoke mode (ci) stops here: full-scale wall clock is too noisy to
    # gate further on shared runners, and the recorded full-scale table
    # must not be clobbered by a truncated one.
    if 1000 in sizes:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "engine_scaling.txt").write_text(report + "\n")
        # The kernel must never be slower than ~the seed path at any size...
        assert all(speedup > 0.8 for speedup in speedups.values()), speedups
        # ...and at n=1000 the O(n log n) ledger must pay off at least 2x.
        for mode in ("fixed-order", "dynamic", "corrected"):
            assert speedups[(1000, mode)] >= 2.0, (mode, speedups)
        # The columnar engine must also hold its bar on every measured mode.
        assert all(speedup >= 2.0 for speedup in columnar_speedups.values()), (
            columnar_speedups
        )


if __name__ == "__main__":  # pragma: no cover - manual run
    test_engine_scaling()
