"""Engine scaling — seed executors vs unified kernel, schedules/sec.

Measures throughput of the three execution modes (fixed order, dynamic
selection, corrected order) on random instances of n ∈ {50, 200, 1000}
tasks, old code path (the frozen seed executors in
``repro.simulator._reference``, O(n²) holder re-sum) against the kernel
(incremental ``MemoryLedger``).  Schedules are asserted byte-identical
before timing, so the speedup is measured on equal work.

``REPRO_SCALE=ci`` (the default, used by the CI smoke step) stops at n=200;
any other scale includes n=1000 and asserts the kernel is at least 2x
faster there.  The table is written to ``benchmarks/results/engine_scaling.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import RESULTS_DIR
from repro.core import Instance, Task
from repro.experiments.config import scaled_config
from repro.simulator import (
    CorrectedOrderPolicy,
    CriterionPolicy,
    execute_fixed_order,
    execute_with_policy,
    largest_communication,
    maximum_acceleration,
)
from repro.simulator._reference import (
    ReferenceCorrectedOrderPolicy,
    reference_execute_fixed_order,
    reference_execute_with_policy,
)

#: Task counts per scale; the 2x acceptance bar applies at n=1000.
CI_SIZES = (50, 200)
FULL_SIZES = (50, 200, 1000)

#: Tight-but-feasible capacity, as a multiple of the largest footprint.
CAPACITY_FACTOR = 1.25


def make_instance(n: int, seed: int = 7) -> Instance:
    rng = np.random.default_rng(seed)
    tasks = [
        Task(
            f"t{i:04d}",
            float(rng.uniform(0.1, 10.0)),
            float(rng.uniform(0.1, 10.0)),
            memory=float(rng.uniform(0.1, 10.0)),
        )
        for i in range(n)
    ]
    capacity = max(task.memory for task in tasks) * CAPACITY_FACTOR
    return Instance(tasks, capacity=capacity, name=f"bench/n{n}")


def modes(instance: Instance):
    """(mode name, seed runner, kernel runner) for the three execution modes."""
    order = sorted(instance.tasks, key=lambda t: (-(t.comm + t.comp), t.name))
    johnson = [task.name for task in sorted(instance.tasks, key=lambda t: t.name)]
    return (
        (
            "fixed-order",
            lambda: reference_execute_fixed_order(instance, order),
            lambda: execute_fixed_order(instance, order),
        ),
        (
            "dynamic",
            lambda: reference_execute_with_policy(
                instance, CriterionPolicy(largest_communication)
            ),
            lambda: execute_with_policy(instance, CriterionPolicy(largest_communication)),
        ),
        (
            "corrected",
            lambda: reference_execute_with_policy(
                instance,
                ReferenceCorrectedOrderPolicy(order=johnson, criterion=maximum_acceleration),
            ),
            lambda: execute_with_policy(
                instance,
                CorrectedOrderPolicy(order=tuple(johnson), criterion=maximum_acceleration),
            ),
        ),
    )


def throughput(runner, *, min_seconds: float = 0.2, min_rounds: int = 3) -> float:
    """Schedules per second, best of three timed rounds."""
    best = 0.0
    for _ in range(min_rounds):
        runs = 0
        start = time.perf_counter()
        while True:
            runner()
            runs += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_seconds:
                break
        best = max(best, runs / elapsed)
    return best


def test_engine_scaling():
    scale_is_ci = scaled_config() is scaled_config("ci")
    sizes = CI_SIZES if scale_is_ci else FULL_SIZES
    lines = [
        "Engine scaling: seed executors vs unified kernel (schedules/sec)",
        "",
        f"{'n':>6} {'mode':<12} {'seed/s':>10} {'kernel/s':>10} {'speedup':>8}",
    ]
    speedups: dict[tuple[int, str], float] = {}
    for n in sizes:
        instance = make_instance(n)
        for mode, seed_runner, kernel_runner in modes(instance):
            assert kernel_runner() == seed_runner(), f"{mode} schedules diverged at n={n}"
            seed_rate = throughput(seed_runner)
            kernel_rate = throughput(kernel_runner)
            speedup = kernel_rate / seed_rate
            speedups[(n, mode)] = speedup
            lines.append(
                f"{n:>6} {mode:<12} {seed_rate:>10.1f} {kernel_rate:>10.1f} {speedup:>7.1f}x"
            )
    report = "\n".join(lines)
    print()
    print(report)

    # Smoke mode (ci) only checks the byte-identical assertion above: wall
    # clock on shared CI runners is too noisy to gate on, and the recorded
    # full-scale table must not be clobbered by a truncated one.
    if 1000 in sizes:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / "engine_scaling.txt").write_text(report + "\n")
        # The kernel must never be slower than ~the seed path at any size...
        assert all(speedup > 0.8 for speedup in speedups.values()), speedups
        # ...and at n=1000 the O(n log n) ledger must pay off at least 2x.
        for mode in ("fixed-order", "dynamic", "corrected"):
            assert speedups[(1000, mode)] >= 2.0, (mode, speedups)


if __name__ == "__main__":  # pragma: no cover - manual run
    test_engine_scaling()
