"""Figure 11 — all heuristics on the CCSD traces across capacities mc..2mc."""

import pytest

from conftest import run_figure
from repro.experiments import figure11_ccsd_heuristics
from repro.experiments.aggregate import summaries_by_capacity


@pytest.mark.benchmark(group="figure11")
def test_figure11_ccsd_heuristics(benchmark, config):
    result = run_figure(benchmark, lambda cfg: figure11_ccsd_heuristics(cfg), config)
    summaries = summaries_by_capacity(result.records)
    tight = summaries[min(summaries)]
    relaxed = summaries[max(summaries)]
    # CCSD is far more sensitive to the memory capacity than HF: at mc the
    # ratios are well above 1.1 and they shrink substantially by 2 mc.
    assert max(summary.median for summary in tight.values()) > 1.10
    assert min(s.median for s in relaxed.values()) < min(s.median for s in tight.values())
    assert all(record.ratio_to_optimal >= 1.0 - 1e-9 for record in result.records)
