"""Figure 7 — every heuristic plus the windowed MILP (lp.k) on one HF trace."""

import pytest

from conftest import run_figure
from repro.experiments import figure07_milp_comparison


@pytest.mark.benchmark(group="figure07")
def test_figure07_milp_comparison(benchmark, config):
    result = run_figure(benchmark, lambda cfg: figure07_milp_comparison(cfg), config)
    ratios = [record.ratio_to_optimal for record in result.records]
    assert all(ratio >= 1.0 - 1e-9 for ratio in ratios)
    # The lp.k heuristics are present alongside the fourteen polynomial ones;
    # as in the paper they do not dominate them on average (the comparison per
    # capacity is printed above and recorded in EXPERIMENTS.md).
    lp_records = [r for r in result.records if r.heuristic.startswith("lp.")]
    other_records = [r for r in result.records if not r.heuristic.startswith("lp.")]
    assert lp_records and other_records
    lp_mean = sum(r.ratio_to_optimal for r in lp_records) / len(lp_records)
    other_mean = sum(r.ratio_to_optimal for r in other_records) / len(other_records)
    assert other_mean <= lp_mean * 1.10
